#!/usr/bin/env python
"""The conflict service end to end: boot, query, overload, drain.

A compiler pipeline asking thousands of repeated-pattern questions
should not pay a Python interpreter per question.  This example runs a
:class:`~repro.service.ConflictService` inside the process (exactly what
``repro serve`` runs behind a port), then walks the daemon's life:

* single-pair checks that warm the verdict cache — the second identical
  question answers from cache in one loopback round-trip;
* a whole-catalogue matrix and an interference-free schedule;
* a per-request deadline degrading one answer to ``unknown`` instead of
  stalling a worker;
* a graceful drain that finishes admitted work and persists verdicts.

Run:  PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import ConflictService, ServiceClient, ServiceConfig

#: The reporting reads and maintenance updates of a bookstore pipeline,
#: as wire specs — the same JSON any HTTP client would send.
CATALOGUE = {
    "titles": {"op": "read", "xpath": "bib/book/title"},
    "stock": {"op": "read", "xpath": "//quantity"},
    "queue": {"op": "read", "xpath": "//book/restock"},
    "restock": {"op": "insert", "xpath": "//book", "xml": "<restock/>"},
    "purge": {"op": "delete", "xpath": "bib/book"},
}


def main() -> None:
    snapshot = Path(tempfile.mkdtemp()) / "verdicts.json"
    service = ConflictService(
        ServiceConfig(port=0, workers=4, cache_path=str(snapshot))
    )
    service.start_background()
    print(f"service up on 127.0.0.1:{service.port}")

    with ServiceClient(port=service.port) as client:
        # One pair, twice: the second answer comes from the verdict cache.
        for attempt in ("cold", "warm"):
            start = time.perf_counter()
            report = client.check(CATALOGUE["titles"], CATALOGUE["purge"])
            elapsed = (time.perf_counter() - start) * 1000
            print(
                f"  check[{attempt}]: {report['verdict']:<12} "
                f"method={report['method']:<16} {elapsed:6.2f} ms"
            )

        # The whole catalogue: every pair, then parallel phases.
        matrix = client.matrix(CATALOGUE)
        print(f"  matrix: {matrix['stats']}")
        schedule = client.schedule(CATALOGUE)
        for index, batch in enumerate(schedule["batches"], start=1):
            print(f"  phase {index}: {', '.join(batch)}")

        # A deadline of 0ms cannot decide anything non-trivial — the
        # answer degrades to `unknown` with a reason; HTTP 200, and the
        # pair stays uncached so a real budget can decide it later.
        degraded = client.check(
            {"op": "read", "xpath": "site//item//keyword"},
            {"op": "delete", "xpath": "site//item"},
            deadline_ms=0,
        )
        print(
            f"  0ms deadline: verdict={degraded['verdict']} "
            f"reason={degraded['reason']}"
        )

        counters = client.metrics()["counters"]
        print(
            "  metrics: "
            f"{counters.get('service.admitted_total', 0)} admitted, "
            f"{counters.get('service.verdict_cache_hits', 0)} cache hit(s)"
        )

    service.drain()  # finishes admitted work, writes the final snapshot
    print(f"drained; verdicts persisted to {snapshot}")
    print("a restarted service would boot warm from that snapshot")


if __name__ == "__main__":
    main()
