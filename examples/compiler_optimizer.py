#!/usr/bin/env python
"""The paper's motivating application: a compiler pass over update programs.

Section 1 argues conflict detection enables classic compiler moves on
XML-processing programs — statement reordering and common-subexpression
elimination of reads.  This example runs the full pipeline on the paper's
own pidgin program:

  parse -> dependence analysis -> read-CSE -> validated by interpretation.

Run:  python examples/compiler_optimizer.py
"""

from __future__ import annotations

from repro.lang import (
    dependence_graph,
    find_redundant_reads,
    optimize,
    parse_program,
    run_program,
)

SOURCE = """
# Inventory program (the paper's Section 1 fragment, extended).
x = <doc><B/><A/></doc>
y = read $x//A          # cheap scan
insert $x/B, <C/>       # the update under scrutiny
z = read $x//C          # MUST observe the insert
u = read $x//A          # recomputes y -- eliminable?
w = read $x//D          # unrelated to everything
delete $x//D
v = read $x//A          # still equal to y? (delete //D cannot touch //A)
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("source program:")
    for index, statement in enumerate(program):
        print(f"  [{index}] {statement}")

    # ------------------------------------------------------------------
    # Dependence analysis
    # ------------------------------------------------------------------
    report = dependence_graph(program)
    print("\nmay-conflict edges (beyond the defining assignment):")
    for edge in report.edges:
        if edge.reason == "definition":
            continue
        print(
            f"  [{edge.earlier}] <-> [{edge.later}]  ({edge.reason}) "
            f"on ${edge.variable}"
        )

    print("\nreordering facts a compiler may use:")
    print("  read //A [1] vs insert [2]:",
          "blocked" if report.conflicts_between(1, 2) else "freely reorderable")
    print("  insert [2] vs read //C [3]:",
          "blocked" if report.conflicts_between(2, 3) else "freely reorderable")

    # ------------------------------------------------------------------
    # Read CSE
    # ------------------------------------------------------------------
    redundant = find_redundant_reads(report)
    print("\nredundant reads:")
    for r in redundant:
        print(f"  [{r.duplicate}] duplicates [{r.original}]")

    result = optimize(program)
    print("\noptimized program:")
    for statement in result.program:
        print(f"  {statement}")
    print("aliases:", result.aliases)

    # ------------------------------------------------------------------
    # Soundness: interpret both versions and compare
    # ------------------------------------------------------------------
    original = run_program(program)
    optimized = run_program(result.program)
    for dropped, kept in result.aliases.items():
        assert original.reads[dropped] == optimized.reads[kept], dropped
    for name in optimized.reads:
        assert original.reads[name] == optimized.reads[name], name
    assert original.trees["x"].equivalent(optimized.trees["x"])
    print("\ninterpretation check passed: the optimized program computes "
          "the same reads and the same final document.")


if __name__ == "__main__":
    main()
