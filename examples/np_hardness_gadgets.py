#!/usr/bin/env python
"""The NP-hardness reductions, made tangible (Theorems 4 and 6).

Conflict detection for branching patterns is NP-complete because XPath
*non-containment* hides inside it.  This example builds the paper's
Figure 7/8 gadgets for a concrete pattern pair, shows the assembled
conflict witness, and demonstrates using the conflict engine as a
containment oracle.

Run:  python examples/np_hardness_gadgets.py
"""

from __future__ import annotations

from repro import ConflictKind, is_witness, parse_xpath, to_xpath
from repro.conflicts.general import decide_conflict
from repro.conflicts.reductions import (
    read_delete_gadget,
    read_delete_witness_from_noncontainment,
    read_insert_gadget,
    read_insert_witness_from_noncontainment,
)
from repro.conflicts.semantics import Verdict
from repro.patterns.containment import contains, non_containment_witness


def main() -> None:
    # A non-contained pair: a//b matches deeper 'b's than a/b allows.
    p = parse_xpath("a//b")
    q = parse_xpath("a/b")
    print(f"p  = {to_xpath(p)}")
    print(f"p' = {to_xpath(q)}")
    print(f"p ⊆ p'? {contains(p, q)}")

    separator = non_containment_witness(p, q)
    print("\nseparating tree (satisfies p, not p'):")
    for line in separator.sketch().splitlines():
        print("   ", line)

    # ------------------------------------------------------------------
    # Figure 7: read-insert gadget
    # ------------------------------------------------------------------
    read, insert, labels = read_insert_gadget(p, q)
    print("\nFigure 7 gadget:")
    print(f"  q_R = {to_xpath(read.pattern)}")
    print(f"  q_I = {to_xpath(insert.pattern)}")
    print(f"  X   = <{labels.gamma}/>")

    witness = read_insert_witness_from_noncontainment(separator, q.model(), labels)
    print("\nassembled Figure 7d witness:")
    for line in witness.sketch().splitlines():
        print("   ", line)
    assert is_witness(witness, read, insert, ConflictKind.NODE)
    print("verified: the read changes when the insert runs first.")

    # ------------------------------------------------------------------
    # Figure 8: read-delete gadget
    # ------------------------------------------------------------------
    read_d, delete, labels_d = read_delete_gadget(p, q)
    witness_d = read_delete_witness_from_noncontainment(
        separator, q.model(), labels_d
    )
    print("\nFigure 8 gadget:")
    print(f"  q_R = {to_xpath(read_d.pattern)}")
    print(f"  q_D = {to_xpath(delete.pattern)}")
    assert is_witness(witness_d, read_d, delete, ConflictKind.NODE)
    print("verified: the read changes when the delete runs first.")

    # ------------------------------------------------------------------
    # Using the conflict engine as a containment oracle
    # ------------------------------------------------------------------
    print("\nconflict engine as containment oracle:")
    for pair in (("a/b", "a//b"), ("a//b", "a/b"), ("a/*", "a/b")):
        pp, qq = parse_xpath(pair[0]), parse_xpath(pair[1])
        read_g, insert_g, _ = read_insert_gadget(pp, qq)
        verdict = decide_conflict(read_g, insert_g, exhaustive_cap=5).verdict
        oracle = contains(pp, qq)
        inferred = (
            "p ⊄ p'" if verdict is Verdict.CONFLICT
            else "p ⊆ p'" if verdict is Verdict.NO_CONFLICT
            else "undecided at this budget"
        )
        print(f"  {pair[0]:>6} vs {pair[1]:<6}: gadget says {inferred:<24} "
              f"(exact oracle: {'⊆' if oracle else '⊄'})")


if __name__ == "__main__":
    main()
