#!/usr/bin/env python
"""Maintained query views over a mutating document (Lemma 1's remark).

Lemma 1's proof assumes evaluation state that is *maintained* as the
document changes.  This example runs a small "live inventory dashboard":
three XPath views over a bookstore are kept up to date by
:class:`IncrementalEvaluator` while a stream of updates (sales, restocks,
discontinuations) hits the document — with every view re-checked against
from-scratch evaluation at the end.

Run:  python examples/incremental_views.py
"""

from __future__ import annotations

import random
import time

from repro.patterns.embedding import evaluate
from repro.patterns.incremental import IncrementalEvaluator
from repro.patterns.xpath import parse_xpath
from repro.xml.random_trees import bookstore
from repro.xml.tree import build_tree

VIEWS = {
    "quantities": "//quantity",
    "restock queue": "bib/book[.//restock]",
    "titles": "bib/book/title",
}


def main() -> None:
    doc = bookstore(150, seed=42)
    print(f"document: {doc.size} nodes")

    # Show the initial state of every view (from-scratch evaluation).
    for name, path in VIEWS.items():
        print(f"  view {name!r}: {len(evaluate(parse_xpath(path), doc))} nodes")

    # Each evaluator owns its tree; we track one view incrementally
    # through a stream of updates and validate it continuously.
    view_name, view_path = "restock queue", VIEWS["restock queue"]
    tree = doc.copy()
    live = IncrementalEvaluator(parse_xpath(view_path), tree)
    rng = random.Random(7)

    print(f"\nmaintaining view {view_name!r} ({view_path}) over 60 updates:")
    books = [n for n in tree.nodes() if tree.label(n) == "book"]
    start = time.perf_counter()
    for step in range(60):
        book = rng.choice(books)
        if book not in tree:
            continue
        if rng.random() < 0.7:
            live.insert_subtree(book, build_tree("restock"))
        else:
            markers = [
                c for c in tree.children(book) if tree.label(c) == "restock"
            ]
            if markers:
                live.delete_subtree(markers[0])
        if step % 20 == 19:
            print(f"  after {step + 1} updates: {len(live.results)} books queued")
    elapsed = time.perf_counter() - start
    print(f"60 updates + reads in {elapsed * 1000:.1f} ms")

    expected = evaluate(parse_xpath(view_path), tree)
    assert live.results == expected
    print("final view re-checked against from-scratch evaluation: OK")


if __name__ == "__main__":
    main()
