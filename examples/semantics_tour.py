#!/usr/bin/env python
"""A tour of the three conflict semantics (Section 3 + Figure 3).

The paper defines *node*, *tree*, and *value* conflicts and shows they
genuinely differ.  This example reconstructs the separating scenarios:

* an insert below a selected node — node-silent, tree-loud;
* the Figure 3 delete of a duplicated subtree — reference-loud,
  value-silent;
* witness minimization (Lemmas 9-11): a bloated witness shrunk to the
  Lemma 11 bound.

Run:  python examples/semantics_tour.py
"""

from __future__ import annotations

from repro import (
    ConflictKind,
    Delete,
    Insert,
    Read,
    build_tree,
    is_witness,
    minimize_witness,
)
from repro.conflicts.general import witness_size_bound
from repro.conflicts.linear import detect_read_insert_linear


def show(title: str, tree) -> None:  # type: ignore[no-untyped-def]
    print(f"\n{title}")
    for line in tree.sketch().splitlines():
        print("   ", line)


def main() -> None:
    # ------------------------------------------------------------------
    # Node vs tree conflicts (Section 3's root-read example)
    # ------------------------------------------------------------------
    t = build_tree(("a", "B"))
    read = Read("a")
    insert = Insert("a/B", "<x/>")
    show("document:", t)
    print("\nread 'a' vs insert under a/B:")
    for kind in (ConflictKind.NODE, ConflictKind.TREE, ConflictKind.VALUE):
        hit = is_witness(t, read, insert, kind)
        print(f"  {kind.value:>5} semantics: {'conflict' if hit else 'no conflict'}")
    print("  -> the root node survives (node-silent) but its subtree is")
    print("     modified (tree/value-loud).")

    # ------------------------------------------------------------------
    # Reference vs value conflicts (Figure 3)
    # ------------------------------------------------------------------
    w = build_tree(("r", ("d", ("g", "x")), ("g", "x")))
    read = Read("r//g")
    delete = Delete("r/d")
    show("Figure 3 document (two isomorphic 'g' subtrees):", w)
    print("\nread 'r//g' vs delete 'r/d':")
    for kind in (ConflictKind.NODE, ConflictKind.TREE, ConflictKind.VALUE):
        hit = is_witness(w, read, delete, kind)
        print(f"  {kind.value:>5} semantics: {'conflict' if hit else 'no conflict'}")
    print("  -> the deleted 'g' node is *referenced* by the read (node")
    print("     conflict) but its value survives in the isomorphic twin")
    print("     (no value conflict).")

    # ------------------------------------------------------------------
    # Witness construction and minimization
    # ------------------------------------------------------------------
    read = Read("a//c")
    insert = Insert("a/b", "<c/>")
    report = detect_read_insert_linear(read, insert)
    show("constructed conflict witness for read a//c vs insert a/b <c/>:",
         report.witness)

    bloated = report.witness.copy()
    for node in list(bloated.nodes()):
        bloated.add_child(node, "noise")
    show("the same witness, bloated with noise:", bloated)

    small = minimize_witness(bloated, read, insert)
    show("after marking + reparenting + pruning (Lemmas 9-11):", small)
    bound = witness_size_bound(read, insert)
    print(f"\nLemma 11 bound |R|*|I|*(k+1) = {bound}; "
          f"minimized witness has {small.size} nodes.")
    assert small.size <= bound


if __name__ == "__main__":
    main()
