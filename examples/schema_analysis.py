#!/usr/bin/env python
"""Schema-aware conflict analysis (the paper's Section 6 open problem).

A DTD restricts which documents can exist — and therefore which conflicts
can actually materialize.  This example shows the three-way interplay:

1. validate documents against a DTD;
2. conflicts that exist in general but are *silenced* by the schema
   (no valid document realizes the witness shape);
3. conflicts that persist, with a schema-valid witness;
4. the revalidation question: which updates take valid documents out of
   the schema?

Run:  python examples/schema_analysis.py
"""

from __future__ import annotations

from repro import ConflictDetector, Delete, Insert, Read, Verdict
from repro.schema import (
    DTD,
    breaks_validity,
    decide_conflict_under_schema,
    enumerate_valid_trees,
    random_valid_tree,
    validate,
)

BOOKSTORE_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, publisher?, quantity)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
"""


def main() -> None:
    dtd = DTD.parse(BOOKSTORE_DTD)
    print("schema:", dtd)

    # ------------------------------------------------------------------
    # 1. Validation
    # ------------------------------------------------------------------
    sample = random_valid_tree(dtd, seed=7)
    print(f"\na sampled valid document ({sample.size} nodes):")
    for line in sample.sketch().splitlines()[:8]:
        print("   ", line)

    from repro import build_tree

    broken = build_tree(("bib", ("book", ("quantity", "#text:3"))))
    print("\nviolations in <bib><book><quantity>3</quantity></book></bib>:")
    for violation in validate(broken, dtd):
        print("   ", violation)

    # ------------------------------------------------------------------
    # 2. The schema prunes the universe of documents
    # ------------------------------------------------------------------
    valid_count = sum(1 for _ in enumerate_valid_trees(dtd, 10))
    print(f"\nvalid documents with <= 10 nodes: {valid_count} "
          f"(of millions of unconstrained trees)")

    # ------------------------------------------------------------------
    # 3. Silenced vs persisting conflicts
    # ------------------------------------------------------------------
    detector = ConflictDetector()
    delete_books = Delete("bib/book")
    queries = {
        "bib/book/book (nested books)": Read("bib/book/book"),
        "bib/book/name (name outside publisher)": Read("bib/book/name"),
        "//quantity": Read("//quantity"),
        "//publisher/name": Read("//publisher/name"),
    }
    print("\nread vs `delete bib/book`:")
    print(f"{'read':<42}{'unconstrained':>15}{'under schema':>15}")
    for name, read in queries.items():
        plain = detector.read_delete(read, delete_books).verdict
        constrained = decide_conflict_under_schema(
            read, delete_books, dtd, max_size=8
        ).verdict
        print(f"{name:<42}{plain.value:>15}{constrained.value:>15}")
    print("(the schema silences conflicts whose witnesses it forbids;")
    print(" 'unknown' = no valid witness up to the search bound)")

    # ------------------------------------------------------------------
    # 4. Revalidation: which updates break the schema?
    # ------------------------------------------------------------------
    from repro import build_tree as _bt

    doc = _bt(
        (
            "bib",
            ("book", "title", ("quantity", "#text:3")),
            ("book", "title", ("publisher", "name"), ("quantity", "#text:9")),
        )
    )
    assert not validate(doc, dtd)
    updates = {
        "insert publisher under book": Insert(
            "bib/book", "<publisher><name/></publisher>"
        ),
        "insert second title": Insert("bib/book", "<title/>"),
        "delete a book": Delete("bib/book"),
        "delete a title": Delete("bib/book/title"),
    }
    print(f"\nrevalidation on a valid {doc.size}-node document:")
    for name, update in updates.items():
        try:
            result = breaks_validity(update, doc, dtd)
        except ValueError:
            continue
        effect = "breaks validity" if result else "stays valid"
        fired = bool(update.apply(doc).points)
        print(f"  {name:<32} -> {effect}{'' if fired else ' (no-op here)'}")


if __name__ == "__main__":
    main()
