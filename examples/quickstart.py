#!/usr/bin/env python
"""Quickstart: detect conflicts between XML reads and updates.

Walks through the library's public API on the examples from Section 1 of
*Conflicting XML Updates* (Raghavachari & Shmueli, EDBT 2006):

1. parse a document and evaluate XPath-fragment patterns on it;
2. apply insert/delete operations;
3. ask the ConflictDetector whether a read and an update can ever
   interfere — on *any* document, not just this one — and inspect the
   witness document it constructs when they can.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConflictDetector,
    Delete,
    Insert,
    Read,
    Verdict,
    evaluate,
    parse,
    parse_xpath,
    serialize,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Documents and patterns
    # ------------------------------------------------------------------
    doc = parse(
        "<bib>"
        "<book><title>TCP/IP Illustrated</title><quantity>3</quantity></book>"
        "<book><title>Data on the Web</title><quantity>50</quantity></book>"
        "</bib>"
    )
    low_stock = parse_xpath("bib/book[.//quantity < 10]")
    print("document:", serialize(doc))
    print("low-stock books:", sorted(evaluate(low_stock, doc)))

    # ------------------------------------------------------------------
    # 2. Updates (the paper's motivating insert)
    # ------------------------------------------------------------------
    restock = Insert("bib/book[.//quantity < 10]", "<restock/>")
    result = restock.apply(doc)
    print("\nafter restock insert:")
    print(serialize(result.tree, indent=2))
    print("insertion points:", sorted(result.points))

    # ------------------------------------------------------------------
    # 3. Static conflict detection (the paper's contribution)
    # ------------------------------------------------------------------
    detector = ConflictDetector()

    # The pidgin program from the paper:
    #     y = read $x//A
    #     insert $x/B, <C/>
    #     z = read $x//C
    insert = Insert("*/B", "<C/>")
    for path in ("*//A", "*//C", "*//D"):
        report = detector.read_insert(Read(path), insert)
        print(f"\nread {path!r}  vs  insert B <C/>:", report.verdict.value)
        if report.verdict is Verdict.CONFLICT:
            print("  witness document (read result changes when the insert")
            print("  runs first):")
            for line in report.witness.sketch().splitlines():
                print("   ", line)

    # Deletes work the same way.
    report = detector.read_delete(Read("*//quantity"), Delete("*/book"))
    print("\nread *//quantity  vs  delete */book:", report.verdict.value)

    # No-conflict verdicts license compiler optimizations: the read can be
    # hoisted above the update, merged with other traversals, or cached.
    safe = detector.read_insert(Read("*//A"), insert)
    assert safe.verdict is Verdict.NO_CONFLICT
    print("\n'*//A' cannot be affected by the insert on any document —")
    print("a compiler may reorder or cache that read freely.")


if __name__ == "__main__":
    main()
