#!/usr/bin/env python
"""Figure 1 end to end: inventory maintenance on a bookstore document.

The paper's running example is a ``bib`` catalogue where books whose
quantity has fallen below 10 get a ``<restock/>`` marker.  This example
scales that scenario up to a realistic catalogue and shows how conflict
analysis answers operational questions *statically* — before touching any
document:

* Can the restock pass run concurrently with the reporting queries?
* Which maintenance operations must be ordered with respect to each other?

Run:  python examples/bookstore_restock.py
"""

from __future__ import annotations

from repro import ConflictDetector, Delete, Insert, Read, Verdict, evaluate, parse_xpath
from repro.xml.random_trees import bookstore

#: The reporting queries the store runs continuously.
REPORTS = {
    "all titles": "bib/book/title",
    "stock levels": "//quantity",
    "restock queue": "//book/restock",
    "publishers": "bib/book/publisher/name",
}

#: The maintenance operations that mutate the catalogue.
MAINTENANCE = {
    "restock marker": Insert("//book[.//quantity < 10]", "<restock/>"),
    "drop discontinued": Delete("bib/book[.//quantity < 1]"),
    "strip markers": Delete("//book/restock"),
}


def main() -> None:
    catalogue = bookstore(500, low_stock_fraction=0.25, seed=2026)
    print(f"catalogue: {catalogue.size} nodes, "
          f"{len(evaluate(parse_xpath('bib/book'), catalogue))} books")

    low = evaluate(parse_xpath("//book[.//quantity < 10]"), catalogue)
    print(f"low-stock books: {len(low)}")

    # Apply the restock pass and confirm its effect.
    result = MAINTENANCE["restock marker"].apply(catalogue)
    print(f"restock markers inserted: {len(result.affected)}")

    # ------------------------------------------------------------------
    # Static schedule analysis: which report/maintenance pairs commute?
    # ------------------------------------------------------------------
    # Value tests are stripped by the detector (sound over-approximation),
    # so 'no conflict' verdicts hold for every possible catalogue state.
    detector = ConflictDetector()
    print("\nmay-conflict matrix (rows: reports, columns: maintenance):")
    header = " " * 18 + "".join(f"{name[:16]:>18}" for name in MAINTENANCE)
    print(header)
    for report_name, path in REPORTS.items():
        row = [f"{report_name[:16]:<18}"]
        for op in MAINTENANCE.values():
            verdict = detector.read_update(Read(path), op).verdict
            mark = {
                Verdict.CONFLICT: "conflict",
                Verdict.NO_CONFLICT: "-",
                Verdict.UNKNOWN: "?",
            }[verdict]
            row.append(f"{mark:>18}")
        print("".join(row))

    # Update-update ordering constraints.
    print("\nmaintenance ordering constraints:")
    names = list(MAINTENANCE)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            verdict = detector.update_update(
                MAINTENANCE[first], MAINTENANCE[second]
            ).verdict
            if verdict is Verdict.CONFLICT:
                print(f"  {first!r} and {second!r} do NOT commute")
            elif verdict is Verdict.UNKNOWN:
                print(f"  {first!r} and {second!r}: order conservatively")
            else:
                print(f"  {first!r} and {second!r} commute")

    # A concrete takeaway the matrix supports:
    safe = detector.read_update(Read(REPORTS["publishers"]), MAINTENANCE["restock marker"])
    assert safe.verdict is Verdict.NO_CONFLICT
    print("\nthe publishers report can run concurrently with restocking —")
    print("no document can make them interfere.")

    # ------------------------------------------------------------------
    # A parallel execution plan for the whole catalogue of operations
    # ------------------------------------------------------------------
    from repro import AnalysisConfig, analyze

    catalogue = {name: Read(path) for name, path in REPORTS.items()}
    catalogue.update(MAINTENANCE)
    batches = analyze(
        catalogue,
        mode="schedule",
        config=AnalysisConfig(detector=detector.config),
    )
    print("\nparallel execution plan (each batch is interference-free):")
    for index, batch in enumerate(batches, start=1):
        print(f"  phase {index}: {', '.join(batch)}")


if __name__ == "__main__":
    main()
