#!/usr/bin/env python
"""Three replicas, one document, a custom merge resolver.

Three editors hold replicas of a tiny product catalogue and edit
concurrently: one restocks (inserts a fresh ``<item>`` under the hot
section), one prunes (deletes ``doc/hot/item``), one works in a private
section nobody else touches.  Sync rounds classify every concurrent pair
through the paper's conflict engine:

* the private edits come back *unproven* — no commutativity witness, so
  both sides apply in canonical stamp order and nothing is lost;
* the restock/prune pair is a *certified conflict* (inserting at
  ``doc/hot`` creates matches for the concurrent delete's pattern — the
  engine exhibits a witness), so it goes to the resolver.

Instead of a built-in winner-picker, this demo installs a **custom merge
resolver** for the delete-vs-update case (the couchbase-lite spec's
hardest shape): drop both sides and replace them with a single audit
marker, so the session converges on a document that *records* the
disagreement instead of silently picking a side.  Any other certified
conflict falls back to last-writer-wins.

Run:  PYTHONPATH=src python examples/replication_demo.py
"""

from __future__ import annotations

from repro import ReplicationSession, serialize
from repro.replication import ConflictPair, last_writer_wins

DOC = "<doc><hot><item><sku>0</sku></item></hot><p0/><p1/><p2/></doc>"


def merge_or_lww(conflict: ConflictPair):
    """Delete-vs-update pairs merge into an audit marker; others LWW."""
    if conflict.is_delete_vs_update:
        deleter = conflict.deleter.origin
        updater = conflict.updater.origin
        return {
            "op": "insert",
            "xpath": "doc/hot",
            "xml": f"<disputed deleter='r{deleter}' updater='r{updater}'/>",
        }
    return last_writer_wins(conflict)


def main() -> None:
    session = ReplicationSession(3, DOC, resolver=merge_or_lww)

    # Concurrent edits before anyone syncs: all pairwise concurrent.
    session.edit(0, {"op": "insert", "xpath": "doc/hot",
                     "xml": "<item><sku>1</sku></item>"})   # restock
    session.edit(1, {"op": "delete", "xpath": "doc/hot/item"})  # prune
    session.edit(2, {"op": "insert", "xpath": "doc/p2",
                     "xml": "<note/>"})                      # private

    rounds = session.quiesce()
    assert session.converged(), "replicas diverged?!"

    print(f"converged in {rounds} gossip round(s)\n")
    for rep in session.replicas:
        print(f"replica {rep.rid}: {serialize(rep.tree)}")

    counters = session.registry.snapshot()["counters"]
    classified = sum(
        v for k, v in counters.items()
        if k.startswith("replication.pairs_classified")
    )
    conflicting = sum(
        v for k, v in counters.items()
        if k.startswith("replication.pairs_conflicting")
    )
    merged = counters.get("replication.resolutions{outcome=merged}", 0)
    print(
        f"\npairs: {classified} classified, {conflicting} certified "
        f"conflicting, {merged} merged by the custom resolver"
    )
    for rep_zero_decision in session.replicas[0].decisions.values():
        print(
            f"decision {rep_zero_decision.pair}: "
            f"{rep_zero_decision.outcome} via {rep_zero_decision.resolver}"
        )


if __name__ == "__main__":
    main()
