"""Tests for the schema subsystem (DTDs, validation, schema-aware conflicts)."""

from __future__ import annotations

import pytest

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.operations.ops import Delete, Insert, Read
from repro.schema.dtd import DTD, DTDSyntaxError, Occurrence, UNBOUNDED
from repro.schema.generator import (
    SchemaGenerationError,
    enumerate_valid_trees,
    random_valid_tree,
)
from repro.schema.conflicts import (
    breaks_validity,
    decide_conflict_under_schema,
    find_schema_witness,
)
from repro.schema.validator import is_valid, validate
from repro.xml.tree import build_tree

BOOKSTORE_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, publisher?, quantity)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
"""


@pytest.fixture
def bookstore_dtd() -> DTD:
    return DTD.parse(BOOKSTORE_DTD)


class TestOccurrence:
    def test_bounds(self):
        assert Occurrence(1, 1).allows(1)
        assert not Occurrence(1, 1).allows(0)
        assert not Occurrence(1, 1).allows(2)
        assert Occurrence(0, UNBOUNDED).allows(100)

    @pytest.mark.parametrize(
        "occ,text",
        [
            (Occurrence(1, 1), "1"),
            (Occurrence(0, 1), "?"),
            (Occurrence(0, UNBOUNDED), "*"),
            (Occurrence(1, UNBOUNDED), "+"),
            (Occurrence(2, 3), "2..3"),
        ],
    )
    def test_str(self, occ, text):
        assert str(occ) == text


class TestDTDParse:
    def test_bookstore_parses(self, bookstore_dtd):
        assert bookstore_dtd.root == "bib"
        assert bookstore_dtd.labels() == {
            "bib", "book", "title", "publisher", "name", "quantity",
        }

    def test_sequence_model(self, bookstore_dtd):
        book = bookstore_dtd.declaration("book")
        assert book.children["title"] == Occurrence(1, 1)
        assert book.children["publisher"] == Occurrence(0, 1)
        assert book.children["quantity"] == Occurrence(1, 1)

    def test_star_model(self, bookstore_dtd):
        bib = bookstore_dtd.declaration("bib")
        assert bib.children["book"] == Occurrence(0, UNBOUNDED)

    def test_pcdata_sets_text_flag(self, bookstore_dtd):
        assert bookstore_dtd.declaration("title").allows_text

    def test_empty_and_any(self):
        dtd = DTD.parse("<!ELEMENT a EMPTY><!ELEMENT b ANY>", root="a")
        assert dtd.declaration("a").children == {}
        assert dtd.declaration("b").any_content

    def test_choice_group(self):
        dtd = DTD.parse("<!ELEMENT a (b | c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        decl = dtd.declaration("a")
        assert decl.min_total == 1
        assert decl.children["b"].min == 0

    def test_repeated_label_in_sequence(self):
        dtd = DTD.parse("<!ELEMENT a (b, b)><!ELEMENT b EMPTY>")
        assert dtd.declaration("a").children["b"] == Occurrence(2, 2)

    def test_mixed_content(self):
        dtd = DTD.parse("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>")
        decl = dtd.declaration("a")
        assert decl.allows_text
        assert decl.children["b"].max is UNBOUNDED

    def test_missing_declarations_rejected(self):
        with pytest.raises(DTDSyntaxError):
            DTD.parse("not a dtd")

    def test_undeclared_root_rejected(self):
        with pytest.raises(DTDSyntaxError):
            DTD.parse("<!ELEMENT a EMPTY>", root="zzz")

    def test_programmatic_construction(self):
        dtd = DTD("r").element("r", {"x": "*"}).element("x", text=True)
        assert dtd.declaration("r").children["x"].max is UNBOUNDED


class TestValidator:
    def test_valid_document(self, bookstore_dtd):
        doc = build_tree(
            ("bib", ("book", ("title", "#text:T"), ("quantity", "#text:5")))
        )
        assert is_valid(doc, bookstore_dtd)

    def test_wrong_root(self, bookstore_dtd):
        doc = build_tree("book")
        assert any("root" in str(v) for v in validate(doc, bookstore_dtd))

    def test_missing_required_child(self, bookstore_dtd):
        doc = build_tree(("bib", ("book", ("quantity", "#text:5"))))
        violations = validate(doc, bookstore_dtd)
        assert any("title" in str(v) for v in violations)

    def test_excess_child(self, bookstore_dtd):
        doc = build_tree(
            (
                "bib",
                (
                    "book",
                    ("title", "#text:a"),
                    ("title", "#text:b"),
                    ("quantity", "#text:1"),
                ),
            )
        )
        violations = validate(doc, bookstore_dtd)
        assert any("occurs 2" in str(v) for v in violations)

    def test_undeclared_child(self, bookstore_dtd):
        doc = build_tree(
            ("bib", ("book", ("title", "#text:a"), ("quantity", "#text:1"), "pirate"))
        )
        assert any("not allowed" in str(v) for v in validate(doc, bookstore_dtd))

    def test_text_where_forbidden(self, bookstore_dtd):
        doc = build_tree(("bib", "#text:hello"))
        assert any("text" in str(v) for v in validate(doc, bookstore_dtd))

    def test_undeclared_element_must_be_leaf(self):
        dtd = DTD.parse("<!ELEMENT a ANY>")
        doc = build_tree(("a", ("mystery", "deep")))
        assert not is_valid(doc, dtd)

    def test_any_content_accepts_everything(self):
        dtd = DTD.parse("<!ELEMENT a ANY><!ELEMENT b EMPTY>")
        doc = build_tree(("a", "b", "b", "#text:x"))
        assert is_valid(doc, dtd)

    def test_choice_minimum(self):
        dtd = DTD.parse("<!ELEMENT a (b | c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        assert not is_valid(build_tree("a"), dtd)
        assert is_valid(build_tree(("a", "b")), dtd)


class TestGenerator:
    def test_random_valid_trees_are_valid(self, bookstore_dtd):
        for seed in range(20):
            tree = random_valid_tree(bookstore_dtd, seed=seed)
            assert is_valid(tree, bookstore_dtd), f"seed {seed}"

    def test_deterministic(self, bookstore_dtd):
        a = random_valid_tree(bookstore_dtd, seed=5)
        b = random_valid_tree(bookstore_dtd, seed=5)
        assert a.equivalent(b)

    def test_unsatisfiable_depth_raises(self):
        # a requires b requires a requires ... never bottoms out.
        dtd = DTD.parse("<!ELEMENT a (b)><!ELEMENT b (a)>")
        with pytest.raises(SchemaGenerationError):
            random_valid_tree(dtd, seed=0, max_depth=4)

    def test_enumeration_is_valid_and_deduplicated(self, bookstore_dtd):
        from repro.xml.isomorphism import canonical_form

        forms = set()
        for tree in enumerate_valid_trees(bookstore_dtd, 6):
            assert is_valid(tree, bookstore_dtd)
            form = canonical_form(tree)
            assert form not in forms
            forms.add(form)

    def test_enumeration_matches_filter_semantics(self):
        dtd = DTD.parse("<!ELEMENT a (b*)><!ELEMENT b EMPTY>")
        trees = list(enumerate_valid_trees(dtd, 4))
        # valid trees: a, a(b), a(b,b), a(b,b,b) -> 4 classes.
        assert len(trees) == 4


class TestSchemaConflicts:
    def test_schema_silences_structural_conflict(self, bookstore_dtd):
        """Nested books are impossible under the DTD, so the conflict that
        exists unconstrained vanishes under the schema."""
        read = Read("bib/book/book")
        delete = Delete("bib/book")
        assert ConflictDetector().read_delete(read, delete).verdict is Verdict.CONFLICT
        report = decide_conflict_under_schema(read, delete, bookstore_dtd, max_size=7)
        assert report.verdict is Verdict.UNKNOWN  # no valid witness found

    def test_conflict_persists_under_schema(self, bookstore_dtd):
        read = Read("//quantity")
        delete = Delete("bib/book")
        report = decide_conflict_under_schema(read, delete, bookstore_dtd, max_size=7)
        assert report.verdict is Verdict.CONFLICT
        assert is_valid(report.witness, bookstore_dtd)
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    def test_insert_conflict_under_schema(self, bookstore_dtd):
        read = Read("//publisher/name")
        insert = Insert("bib/book", "<publisher><name/></publisher>")
        report = decide_conflict_under_schema(read, insert, bookstore_dtd, max_size=6)
        assert report.verdict is Verdict.CONFLICT
        assert is_valid(report.witness, bookstore_dtd)

    def test_find_schema_witness_none_for_disjoint(self, bookstore_dtd):
        read = Read("bib/ghost")
        delete = Delete("bib/book")
        assert (
            find_schema_witness(read, delete, bookstore_dtd, max_size=5) is None
        )

    def test_tree_semantics_under_schema(self, bookstore_dtd):
        read = Read("bib/book")
        insert = Insert("bib/book/title", "<x/>")
        report = decide_conflict_under_schema(
            read, insert, bookstore_dtd, ConflictKind.TREE, max_size=5
        )
        assert report.verdict is Verdict.CONFLICT


class TestBreaksValidity:
    def test_delete_required_child_breaks(self, bookstore_dtd):
        tree = random_valid_tree(bookstore_dtd, seed=3)
        if not any(tree.label(n) == "title" for n in tree.nodes()):
            pytest.skip("sample has no title")
        assert breaks_validity(Delete("bib/book/title"), tree, bookstore_dtd)

    def test_harmless_update_keeps_validity(self, bookstore_dtd):
        tree = build_tree(
            ("bib", ("book", ("title", "#text:T"), ("quantity", "#text:3")))
        )
        insert = Insert("bib/book", "<publisher><name/></publisher>")
        assert not breaks_validity(insert, tree, bookstore_dtd)

    def test_requires_valid_input(self, bookstore_dtd):
        with pytest.raises(ValueError):
            breaks_validity(Delete("bib/book"), build_tree("oops"), bookstore_dtd)
