"""End-to-end integration: static verdicts vs actual execution.

The ultimate semantic check of the whole stack: whenever the detector
*proves* two operations compatible, executing them in either order on real
documents must be indistinguishable — for read/update pairs the read
result is identical, for update/update pairs the resulting documents are
isomorphic.  Any violation anywhere in the stack (pattern evaluation,
operation semantics, matching, detection) would surface here.

Also fuzzes the XML parser: arbitrary text must either parse or raise
``XMLParseError`` — never crash differently — and parse/serialize must be
a round trip on whatever parses.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.semantics import Verdict
from repro.errors import XMLParseError
from repro.operations.ops import Insert, Read
from repro.workloads.generators import (
    random_delete,
    random_insert,
    random_linear_pattern,
    random_read,
)
from repro.xml.isomorphism import isomorphic
from repro.xml.parser import parse
from repro.xml.random_trees import auction_site, bookstore, random_tree
from repro.xml.serializer import serialize

DETECTOR = ConflictDetector(exhaustive_cap=4)

DOCUMENTS = [
    random_tree(12, ("a", "b", "c"), seed=1),
    random_tree(25, ("a", "b", "c", "d"), seed=2),
    bookstore(8, seed=3),
    auction_site(items=4, people=2, seed=4),
]


class TestNoConflictMeansNoEffect:
    """NO_CONFLICT is a universal statement; execution must honor it."""

    @pytest.mark.parametrize("seed", range(40))
    def test_read_update_pairs(self, seed):
        rng = random.Random(seed)
        read = random_read(rng.randint(1, 4), ("a", "b", "c"), seed=rng)
        if rng.random() < 0.5:
            update = random_insert(
                rng.randint(1, 3), alphabet=("a", "b", "c"), seed=rng, linear=True
            )
        else:
            update = random_delete(
                rng.randint(2, 3), ("a", "b", "c"), seed=rng, linear=True
            )
        report = DETECTOR.read_update(read, update)
        if report.verdict is not Verdict.NO_CONFLICT:
            return
        for doc in DOCUMENTS:
            before = read.apply(doc)
            after = read.apply(update.apply(doc).tree)
            assert before == after, (
                f"seed {seed}: detector said NO_CONFLICT but execution "
                f"differs on a {doc.size}-node document"
            )

    @pytest.mark.parametrize("seed", range(25))
    def test_update_update_pairs(self, seed):
        rng = random.Random(seed + 900)
        first = random_insert(
            rng.randint(1, 2), alphabet=("a", "b"), seed=rng, linear=True
        )
        second = random_delete(rng.randint(2, 3), ("a", "b"), seed=rng, linear=True)
        report = DETECTOR.update_update(first, second)
        if report.verdict is not Verdict.NO_CONFLICT:
            return
        for doc in DOCUMENTS:
            order_a = second.apply(first.apply(doc).tree).tree
            order_b = first.apply(second.apply(doc).tree).tree
            assert isomorphic(order_a, order_b), f"seed {seed}"


class TestConflictsHaveRealWitnesses:
    """CONFLICT verdicts must come with executable evidence."""

    @pytest.mark.parametrize("seed", range(40))
    def test_witness_executes(self, seed):
        rng = random.Random(seed + 5_000)
        read = random_read(rng.randint(2, 4), ("a", "b"), seed=rng)
        update = random_insert(
            rng.randint(1, 2), alphabet=("a", "b"), seed=rng, linear=True
        )
        report = DETECTOR.read_update(read, update)
        if report.verdict is not Verdict.CONFLICT or report.witness is None:
            return
        before = read.apply(report.witness)
        after = read.apply(update.apply(report.witness).tree)
        assert before != after, f"seed {seed}: witness does not demonstrate"


class TestProgramPipeline:
    """Parse -> analyze -> optimize -> hoist -> interpret, end to end."""

    @pytest.mark.parametrize("seed", range(8))
    def test_full_pipeline(self, seed):
        from repro.lang.analysis import hoist_reads, optimize
        from repro.lang.interp import run_program
        from repro.lang.parser import parse_program
        from repro.workloads.generators import random_program

        program = random_program(7, variables=2, seed=seed)
        reparsed = parse_program(str(program))
        assert len(reparsed) == len(program)
        baseline = run_program(program)
        optimized = optimize(program)
        hoisted = hoist_reads(optimized.program)
        final = run_program(hoisted.program)
        for name in final.reads:
            assert baseline.reads[name] == final.reads[name], (
                f"seed {seed}: pipeline changed read {name}"
            )
        for name in baseline.trees:
            assert baseline.trees[name].equivalent(final.trees[name])


class TestParserFuzz:
    @given(st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        try:
            tree = parse(text)
        except XMLParseError:
            return
        tree.validate()
        assert isomorphic(tree, parse(serialize(tree)))

    @given(
        st.recursive(
            st.sampled_from(["<a/>", "<b/>", "<c>x</c>"]),
            lambda inner: st.lists(inner, min_size=1, max_size=3).map(
                lambda parts: f"<r>{''.join(parts)}</r>"
            ),
            max_leaves=8,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_generated_xml_round_trips(self, text):
        tree = parse(text)
        assert isomorphic(tree, parse(serialize(tree)))


class TestScheduleExecution:
    def test_batch_execution_order_invariance(self):
        """Execute a proved-compatible batch in every order; results match."""
        import itertools

        from repro.conflicts.schedule import conflict_matrix

        operations = {
            "mark": Insert("bib/book", "<restock/>"),
            "note": Insert("bib/book/title", "<checked/>"),
            "audit": Read("//quantity"),
        }
        matrix = conflict_matrix(operations, DETECTOR)
        compatible = all(
            not matrix.may_conflict(a, b)
            for a, b in itertools.combinations(operations, 2)
        )
        if not compatible:
            pytest.skip("detector could not prove full compatibility")
        doc = bookstore(6, seed=11)
        outcomes = []
        for order in itertools.permutations(["mark", "note"]):
            tree = doc.copy()
            for name in order:
                operations[name].apply_in_place(tree)  # type: ignore[union-attr]
            outcomes.append(tree)
        assert isomorphic(outcomes[0], outcomes[1])
