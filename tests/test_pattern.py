"""Unit tests for tree patterns (:mod:`repro.patterns.pattern`)."""

from __future__ import annotations

import pytest

from repro.errors import NotLinearError, PatternError
from repro.patterns.embedding import embeds
from repro.patterns.pattern import (
    WILDCARD,
    Axis,
    TreePattern,
    ValueTest,
    fresh_label,
)
from repro.patterns.xpath import parse_xpath


class TestConstruction:
    def test_single_node(self):
        p = TreePattern("a")
        assert p.size == 1
        assert p.root == p.output
        assert p.axis(p.root) is None

    def test_add_child_records_axis(self):
        p = TreePattern("a")
        b = p.add_child(p.root, "b", Axis.CHILD)
        c = p.add_child(b, "c", Axis.DESCENDANT)
        assert p.axis(b) is Axis.CHILD
        assert p.axis(c) is Axis.DESCENDANT
        assert p.parent(c) == b

    def test_set_output(self):
        p = TreePattern("a")
        b = p.add_child(p.root, "b", Axis.CHILD)
        p.set_output(b)
        assert p.output == b

    def test_labels_exclude_wildcard(self):
        p = parse_xpath("a/*/b")
        assert p.labels() == {"a", "b"}

    def test_unknown_node_raises(self):
        p = TreePattern("a")
        with pytest.raises(PatternError):
            p.label(42)


class TestLinearity:
    def test_linear_pattern(self):
        assert parse_xpath("a//b/c").is_linear

    def test_branching_not_linear(self):
        assert not parse_xpath("a[b]/c").is_linear

    def test_internal_output_not_linear(self):
        p = parse_xpath("a/b/c")
        spine = p.spine()
        p.set_output(spine[1])  # output above the leaf
        assert not p.is_linear

    def test_require_linear_raises(self):
        with pytest.raises(NotLinearError):
            parse_xpath("a[b]/c").require_linear("read")

    def test_single_node_is_linear(self):
        assert TreePattern("a").is_linear


class TestStarLength:
    @pytest.mark.parametrize(
        "xpath,expected",
        [
            ("a/b/c", 0),
            ("*", 1),
            ("a/*/b", 1),
            ("a/*/*/b", 2),
            ("a/*//*/b", 1),  # descendant edge breaks the chain
            ("*/*", 2),
            ("a[*/*][*]/b", 2),
        ],
    )
    def test_star_length(self, xpath, expected):
        assert parse_xpath(xpath).star_length() == expected

    def test_star_length_chain_through_branches(self):
        # root * with two children: a chain of 2 *s and a single label.
        p = TreePattern(WILDCARD)
        s1 = p.add_child(p.root, WILDCARD, Axis.CHILD)
        p.add_child(p.root, "a", Axis.CHILD)
        s2 = p.add_child(s1, WILDCARD, Axis.CHILD)
        p.set_output(s2)
        assert p.star_length() == 3


class TestSeqAndSubpattern:
    def test_seq_extracts_path(self):
        p = parse_xpath("a/b//c/d")
        spine = p.spine()
        seq = p.seq(spine[0], spine[2])
        assert seq.size == 3
        assert seq.is_linear
        assert seq.label(seq.output) == "c"

    def test_seq_preserves_axes(self):
        p = parse_xpath("a//b")
        seq = p.trunk()
        leaf = seq.output
        assert seq.axis(leaf) is Axis.DESCENDANT

    def test_seq_rejects_non_ancestor(self):
        p = parse_xpath("a[b]/c")
        b = next(
            n for n in p.nodes() if p.label(n) == "b"
        )
        c = next(n for n in p.nodes() if p.label(n) == "c")
        with pytest.raises(PatternError):
            p.seq(b, c)

    def test_trunk_of_branching_pattern(self):
        p = parse_xpath("a[x][.//y]/b[z]")
        trunk = p.trunk()
        assert trunk.is_linear
        assert trunk.size == 2
        assert trunk.label(trunk.root) == "a"
        assert trunk.label(trunk.output) == "b"

    def test_subpattern(self):
        p = parse_xpath("a[b/c]/d")
        b = next(n for n in p.nodes() if p.label(n) == "b")
        sub = p.subpattern(b)
        assert sub.size == 2
        assert sub.label(sub.root) == "b"

    def test_subpattern_with_output(self):
        p = parse_xpath("a[b/c]/d")
        b = next(n for n in p.nodes() if p.label(n) == "b")
        c = next(n for n in p.nodes() if p.label(n) == "c")
        sub = p.subpattern(b, output=c)
        assert sub.label(sub.output) == "c"


class TestModel:
    @pytest.mark.parametrize(
        "xpath",
        ["a", "a/b", "a//b", "a[.//c]/b[d][*//f]", "*//*", "a[*][b//c]/d"],
    )
    def test_pattern_embeds_into_its_model(self, xpath):
        p = parse_xpath(xpath)
        assert embeds(p, p.model()), f"{xpath} must embed into its model"

    def test_model_wildcard_label_fresh_by_default(self):
        p = parse_xpath("a/*")
        model = p.model()
        labels = model.labels()
        assert "a" in labels
        assert WILDCARD not in labels

    def test_model_with_mapping(self):
        p = parse_xpath("a/b//c")
        model, mapping = p.model_with_mapping()
        assert set(mapping) == set(p.nodes())
        for pnode, tnode in mapping.items():
            if not p.is_wildcard(pnode):
                assert model.label(tnode) == p.label(pnode)


class TestTransformations:
    def test_copy_independent(self):
        p = parse_xpath("a/b")
        q = p.copy()
        q.add_child(q.root, "x", Axis.CHILD)
        assert p.size == 2 and q.size == 3

    def test_strip_value_tests(self):
        p = parse_xpath("a/b[c < 5]")
        assert p.has_value_tests()
        stripped = p.strip_value_tests()
        assert not stripped.has_value_tests()
        assert stripped.size == p.size

    def test_graft(self):
        host = TreePattern("a")
        guest = parse_xpath("x/y")
        mapping = host.graft(host.root, guest, Axis.DESCENDANT)
        assert host.size == 3
        assert host.axis(mapping[guest.root]) is Axis.DESCENDANT

    def test_equality_ignores_sibling_order(self):
        p = parse_xpath("a[b][c]")
        q = parse_xpath("a[c][b]")
        assert p == q
        assert hash(p) == hash(q)

    def test_equality_respects_output(self):
        p = parse_xpath("a/b")
        q = parse_xpath("a/b")
        q.set_output(q.root)
        assert p != q

    def test_equality_respects_axis(self):
        assert parse_xpath("a/b") != parse_xpath("a//b")


class TestValueTest:
    def test_ops(self):
        assert ValueTest("<", 10).holds(5)
        assert not ValueTest("<", 10).holds(15)
        assert ValueTest(">=", 3).holds(3)
        assert ValueTest("!=", 1).holds(2)
        assert ValueTest("=", 2).holds(2)

    def test_unknown_op_rejected(self):
        with pytest.raises(PatternError):
            ValueTest("~", 1)

    def test_str_formats_integers(self):
        assert str(ValueTest("<", 10.0)) == "< 10"


class TestFreshLabel:
    def test_avoids_collisions(self):
        label = fresh_label({"zeta", "zeta0", "zeta1"})
        assert label not in {"zeta", "zeta0", "zeta1"}

    def test_uses_stem_when_free(self):
        assert fresh_label(set(), stem="alpha") == "alpha"
