"""Executable versions of every figure in the paper (F1–F8 in DESIGN.md).

The paper is a theory paper: its figures are worked examples and proof
gadgets rather than measurement plots.  Each test here reconstructs a
figure programmatically and asserts the behavior the surrounding text
claims for it, making the figures part of the regression suite.
"""

from __future__ import annotations

from repro.conflicts.linear import (
    detect_read_delete_linear,
    detect_read_insert_linear,
)
from repro.conflicts.reductions import (
    read_delete_gadget,
    read_delete_witness_from_noncontainment,
    read_insert_gadget,
    read_insert_witness_from_noncontainment,
)
from repro.conflicts.semantics import (
    ConflictKind,
    Verdict,
    is_node_conflict_witness,
    is_value_conflict_witness,
    is_witness,
)
from repro.conflicts.witness_min import reparent
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.containment import contains, non_containment_witness
from repro.patterns.embedding import enumerate_embeddings, evaluate
from repro.patterns.xpath import parse_xpath
from repro.xml.tree import XMLTree, build_tree


class TestFigure1:
    """Figure 1 + the Section 1 insert: restock low-stock books."""

    def test_insert_restock(self, figure1_tree):
        insert = Insert("bib/book[.//quantity < 10]", "<restock/>")
        result = insert.apply(figure1_tree)
        assert len(result.points) == 1
        (low_stock_book,) = result.points
        child_labels = {
            result.tree.label(c) for c in result.tree.children(low_stock_book)
        }
        assert "restock" in child_labels

    def test_descendant_axis_version(self, figure1_tree):
        # //book[...] with the implicit wildcard root behaves identically
        # on this document.
        a = Insert("//book[.//quantity < 10]", "<restock/>").apply(figure1_tree)
        b = Insert("bib/book[.//quantity < 10]", "<restock/>").apply(figure1_tree)
        assert a.points == b.points


class TestFigure2:
    """Figure 2: pattern a[.//c]/b[d][*//f] embeds into the shown tree."""

    PATTERN = "a[.//c]/b[d][*//f]"

    def test_evaluation_selects_b(self, figure2_tree):
        result = evaluate(parse_xpath(self.PATTERN), figure2_tree)
        assert len(result) == 1
        assert figure2_tree.label(result.pop()) == "b"

    def test_embedding_exists_and_is_unique(self, figure2_tree):
        embeddings = list(
            enumerate_embeddings(parse_xpath(self.PATTERN), figure2_tree)
        )
        assert len(embeddings) == 1

    def test_tree_is_model_of_pattern(self):
        """Section 2.3 points out the figure's tree is a model for p."""
        p = parse_xpath(self.PATTERN)
        model = p.model()
        assert evaluate(p, model)


class TestFigure3:
    """Figure 3: a delete conflicting under reference but not value semantics."""

    def _setup(self):
        # Root with a δ child whose γ subtree duplicates a sibling γ subtree.
        w = build_tree(
            ("root", ("delta", ("gamma", "leaf")), ("gamma", "leaf"))
        )
        read = Read("root//gamma")
        delete = Delete("root/delta")
        return w, read, delete

    def test_node_conflict_under_reference_semantics(self):
        w, read, delete = self._setup()
        assert is_node_conflict_witness(w, read, delete)

    def test_no_conflict_under_value_semantics(self):
        w, read, delete = self._setup()
        assert not is_value_conflict_witness(w, read, delete)


class TestFigure4:
    """Figure 4: structure of read-insert conflicts (cut edge)."""

    def test_node_conflict_structure(self):
        # R = a//v reaching into X, I inserts X below a matched point.
        read = Read("a//v")
        insert = Insert("a/b", "<x><v/></x>")
        report = detect_read_insert_linear(read, insert)
        assert report.verdict is Verdict.CONFLICT
        witness = report.witness
        assert witness is not None
        # The witness has the figure's shape: the read result appears only
        # after insertion.
        assert not evaluate(read.pattern, witness)
        after = insert.apply(witness).tree
        assert evaluate(read.pattern, after)

    def test_tree_conflict_structure(self):
        # Part (b): v' above the insertion point; subtree modified.
        read = Read("a/b")
        insert = Insert("a/b/c", "<x/>")
        report = detect_read_insert_linear(read, insert, ConflictKind.TREE)
        assert report.verdict is Verdict.CONFLICT


class TestFigure5:
    """Figure 5: structure of read-delete node conflicts."""

    def test_conflict_structure(self):
        read = Read("a//v")
        delete = Delete("a/b")
        report = detect_read_delete_linear(read, delete)
        assert report.verdict is Verdict.CONFLICT
        witness = report.witness
        assert witness is not None
        before = evaluate(read.pattern, witness)
        after_tree = delete.apply(witness).tree
        after = evaluate(read.pattern, after_tree)
        assert before - after, "some read result must be deleted"


class TestFigure6:
    """Figure 6: the reparent operation's shape and Lemma 9 guarantee."""

    def test_reparent_shape(self):
        # A chain a - m*8 - v; reparent v w.r.t. the root with k=2.
        t = XMLTree("a")
        node = t.root
        for _ in range(8):
            node = t.add_child(node, "m")
        v = t.add_child(node, "v")
        out = reparent(t, t.root, v, star_length=2, alpha="alpha")
        path_labels = [out.label(n) for n in out.path_from_root(v)]
        assert path_labels == ["a", "alpha", "alpha", "alpha", "v"]

    def test_lemma9_containment(self):
        t = XMLTree("a")
        node = t.root
        for _ in range(8):
            node = t.add_child(node, "m")
        v = t.add_child(node, "v")
        pattern = parse_xpath("a//v")
        out = reparent(t, t.root, v, star_length=pattern.star_length(), alpha="Z")
        new_results = evaluate(pattern, out)
        old_results = evaluate(pattern, t)
        assert new_results & set(t.nodes()) <= old_results


class TestFigure7:
    """Figure 7: the read-insert NP-hardness gadget, both directions."""

    def test_noncontained_pair_conflicts(self):
        p, q = parse_xpath("a//b"), parse_xpath("a/b")
        assert not contains(p, q)
        read, insert, labels = read_insert_gadget(p, q)
        t_p = non_containment_witness(p, q)
        witness = read_insert_witness_from_noncontainment(t_p, q.model(), labels)
        assert is_witness(witness, read, insert, ConflictKind.NODE)
        # And the figure's specifics: R is empty before, selects the root after.
        assert evaluate(read.pattern, witness) == set()
        after = insert.apply(witness).tree
        assert evaluate(read.pattern, after) == {witness.root}

    def test_contained_pair_gadget_silent(self):
        from repro.conflicts.general import find_witness_exhaustive

        p, q = parse_xpath("a/b"), parse_xpath("a//b")
        assert contains(p, q)
        read, insert, _ = read_insert_gadget(p, q)
        assert find_witness_exhaustive(read, insert, max_size=5) is None


class TestFigure8:
    """Figure 8: the read-delete NP-hardness gadget."""

    def test_noncontained_pair_conflicts(self):
        p, q = parse_xpath("a//b"), parse_xpath("a/b")
        read, delete, labels = read_delete_gadget(p, q)
        t_p = non_containment_witness(p, q)
        witness = read_delete_witness_from_noncontainment(t_p, q.model(), labels)
        assert is_witness(witness, read, delete, ConflictKind.NODE)
        # Figure's specifics: R selects the root before, nothing after.
        assert evaluate(read.pattern, witness) == {witness.root}
        after = delete.apply(witness).tree
        assert evaluate(read.pattern, after) == set()

    def test_contained_pair_gadget_silent(self):
        from repro.conflicts.general import find_witness_exhaustive

        p, q = parse_xpath("a/b"), parse_xpath("a//b")
        read, delete, _ = read_delete_gadget(p, q)
        assert find_witness_exhaustive(read, delete, max_size=5) is None
