"""Coverage sweep: small behaviors not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.lang.ast import DeleteStmt, InsertStmt, ReadStmt
from repro.lang.parser import parse_program
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.pattern import Axis, TreePattern
from repro.patterns.xpath import parse_xpath
from repro.xml.serializer import serialize
from repro.xml.tree import XMLTree, build_tree


class TestSketches:
    def test_pattern_sketch_marks_output_and_axes(self):
        p = parse_xpath("a[.//b]/c")
        sketch = p.sketch()
        assert "<== output" in sketch
        assert "// b" in sketch

    def test_pattern_sketch_shows_value_test(self):
        p = parse_xpath("a[b < 5]")
        assert "< 5" in p.sketch()

    def test_tree_sketch_ids(self):
        t = build_tree(("a", "b"))
        assert "#0" in t.sketch()


class TestSerializerCorners:
    def test_attribute_node_rendered_standalone(self):
        t = XMLTree("@weird=1")
        out = serialize(t)
        assert out.startswith("<") and out.endswith("/>")

    def test_attr_with_children_rendered_as_element(self):
        t = XMLTree("a")
        holder = t.add_child(t.root, "@x=1")
        t.add_child(holder, "y")
        out = serialize(t)
        assert "y" in out  # information preserved, not folded to attribute

    def test_pretty_print_nested(self):
        t = build_tree(("a", ("b", "c"), "d"))
        out = serialize(t, indent=4)
        assert out.count("\n") >= 4


class TestStatementRendering:
    def test_each_statement_kind_renders(self):
        program = parse_program(
            "x = <a/>\n"
            "y = read $x//b\n"
            "insert $x/b, <c/>\n"
            "delete $x//c\n"
        )
        texts = [str(s) for s in program]
        assert texts[1] == "y = read $x//b"
        assert texts[2] == "insert $x/b, <c/>"
        assert texts[3] == "delete $x//c"

    def test_statement_dataclasses_expose_fields(self):
        program = parse_program("y = read $x//b")
        read = program.statements[0]
        assert isinstance(read, ReadStmt)
        assert (read.target, read.source) == ("y", "x")

    def test_whole_document_path_renders_empty(self):
        program = parse_program("x = <a/>\ny = read $x")
        assert str(program.statements[1]) == "y = read $x"


class TestCliCorners:
    def test_commute_delete_first(self):
        code = main(
            ["commute", "--delete1", "a/b/c", "--insert2", "a/b",
             "--xml2", "<c/>"]
        )
        assert code == 1  # the §6 insert-enables-delete conflict

    def test_eval_missing_document_args_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["eval", "--xpath", "a"])

    def test_analyze_stdin(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("x = <a/>\ny = read $x//b\n"))
        assert main(["analyze", "-"]) == 0


class TestOperationReprs:
    def test_insert_repr_contains_both_parts(self):
        text = repr(Insert("a/b", "<c/>"))
        assert "a/b" in text and "<c/>" in text

    def test_delete_repr(self):
        assert "a/b" in repr(Delete("a/b"))


class TestPatternCorners:
    def test_pattern_repr_is_xpath(self):
        assert "a//b" in repr(parse_xpath("a//b"))

    def test_graft_preserves_value_tests(self):
        from repro.patterns.pattern import ValueTest

        host = TreePattern("a")
        guest = TreePattern("q")
        guest.set_value_test(guest.root, ValueTest("<", 5))
        mapping = host.graft(host.root, guest, Axis.CHILD)
        grafted = mapping[guest.root]
        assert host.value_test(grafted) is not None

    def test_axis_str(self):
        assert str(Axis.CHILD) == "/"
        assert str(Axis.DESCENDANT) == "//"

    def test_depth_helper(self):
        p = parse_xpath("a/b/c")
        assert p.depth(p.spine()[2]) == 2


class TestTreeCorners:
    def test_degree(self):
        t = build_tree(("a", "b", "c"))
        assert t.degree(t.root) == 2

    def test_len_and_contains(self):
        t = build_tree(("a", "b"))
        assert len(t) == 2

    def test_path_labels_root(self):
        t = build_tree("solo")
        assert t.path_labels(t.root) == ["solo"]


class TestReadEdge:
    def test_read_on_whole_document_pattern(self):
        t = build_tree(("a", "b"))
        result = Read(parse_xpath("*")).apply(t)
        assert result == {t.root}
