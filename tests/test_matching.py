"""Unit tests for weak/strong matching of linear patterns (Definition 7).

Cross-validates three independent implementations:

* the NFA-intersection decision (the paper's construction),
* the dynamic-programming matcher (:func:`match_dp`),
* a brute-force check on explicitly enumerated chain trees.
"""

from __future__ import annotations

import random

import pytest

from repro.automata.matching import (
    linear_pattern_nfa,
    match_dp,
    match_strongly,
    match_weakly,
    matching_alphabet,
    matching_word,
)
from repro.errors import NotLinearError
from repro.patterns.embedding import evaluate
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import random_linear_pattern
from repro.xml.tree import XMLTree


def _chain(labels: list[str]) -> XMLTree:
    tree = XMLTree(labels[0])
    node = tree.root
    for label in labels[1:]:
        node = tree.add_child(node, label)
    return tree


def _bruteforce_match(left, right, weak: bool, max_len: int = 6) -> bool:
    """Ground truth: try every chain over the joint alphabet up to max_len."""
    import itertools

    alphabet = matching_alphabet(left, right)
    for length in range(1, max_len + 1):
        for labels in itertools.product(alphabet, repeat=length):
            chain = _chain(list(labels))
            left_hits = evaluate(left.copy(), chain)
            right_hits = evaluate(right.copy(), chain)
            for lnode in left_hits:
                for rnode in right_hits:
                    if lnode == rnode:
                        return True
                    if weak and chain.is_ancestor(rnode, lnode):
                        return True
    return False


class TestKnownCases:
    @pytest.mark.parametrize(
        "l,r,strong,weak",
        [
            ("a", "a", True, True),
            ("a", "b", False, False),
            ("a", "*", True, True),
            ("a/b", "a/b", True, True),
            ("a/b", "a//b", True, True),
            ("a/b", "a/c", False, False),
            ("a/b/c", "a/b", False, True),   # c strictly below b
            ("a/b", "a/b/c", False, False),  # left output above right's
            ("a//c", "a/b", False, True),
            ("a/*", "a/b", True, True),
            ("a//b", "a//c", False, True),   # chain a,c,b: b below c
            ("x//y", "x/*/y", True, True),
        ],
    )
    def test_cases(self, l, r, strong, weak):
        left, right = parse_xpath(l), parse_xpath(r)
        assert match_strongly(left, right) is strong, f"strong({l},{r})"
        assert match_weakly(left, right) is weak, f"weak({l},{r})"

    def test_descendant_below_c(self):
        # a//b vs a//c: b can sit below a c (chain a,c,b) -> weak holds.
        left, right = parse_xpath("a//b"), parse_xpath("a//c")
        assert match_weakly(left, right)
        assert not match_strongly(left, right)

    def test_branching_rejected(self):
        with pytest.raises(NotLinearError):
            match_strongly(parse_xpath("a[b]/c"), parse_xpath("a"))


class TestMatchingWord:
    def test_word_realizes_strong_match(self):
        left, right = parse_xpath("a//b"), parse_xpath("a/*/b")
        word = matching_word(left, right, weak=False)
        assert word is not None
        chain = _chain(word)
        left_out = evaluate(left, chain)
        right_out = evaluate(right, chain)
        assert left_out & right_out, "outputs must coincide on the chain"

    def test_word_realizes_weak_match(self):
        left, right = parse_xpath("a//c"), parse_xpath("a/b")
        word = matching_word(left, right, weak=True)
        assert word is not None
        chain = _chain(word)
        left_out = evaluate(left, chain)
        right_out = evaluate(right, chain)
        ok = any(
            l == r or chain.is_ancestor(r, l)
            for l in left_out
            for r in right_out
        )
        assert ok

    def test_no_word_when_unmatched(self):
        assert matching_word(parse_xpath("a"), parse_xpath("b"), weak=True) is None

    def test_word_is_shortest(self):
        left, right = parse_xpath("a/*/b"), parse_xpath("a//b")
        word = matching_word(left, right, weak=False)
        assert word is not None and len(word) == 3


class TestNFAConstruction:
    def test_pattern_nfa_accepts_spine_labels(self):
        p = parse_xpath("a/b/c")
        nfa = linear_pattern_nfa(p, ("a", "b", "c"))
        assert nfa.accepts(["a", "b", "c"])
        assert not nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a", "c", "b"])

    def test_descendant_allows_gaps(self):
        p = parse_xpath("a//b")
        nfa = linear_pattern_nfa(p, ("a", "b", "z"))
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["a", "z", "z", "b"])
        assert not nfa.accepts(["a"])

    def test_wildcard_accepts_anything(self):
        p = parse_xpath("*/b")
        nfa = linear_pattern_nfa(p, ("a", "b"))
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["b", "b"])


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(60))
    def test_nfa_vs_dp(self, seed):
        rng = random.Random(seed)
        left = random_linear_pattern(rng.randint(1, 4), ("a", "b"), seed=rng)
        right = random_linear_pattern(rng.randint(1, 4), ("a", "b"), seed=rng)
        for weak in (False, True):
            nfa_answer = matching_word(left, right, weak=weak) is not None
            dp_answer = match_dp(left, right, weak=weak)
            assert nfa_answer == dp_answer, (
                f"seed {seed} weak={weak}: NFA={nfa_answer} DP={dp_answer}"
            )

    @pytest.mark.parametrize("seed", range(25))
    def test_nfa_vs_bruteforce(self, seed):
        rng = random.Random(seed + 10_000)
        left = random_linear_pattern(rng.randint(1, 3), ("a", "b"), seed=rng)
        right = random_linear_pattern(rng.randint(1, 3), ("a", "b"), seed=rng)
        for weak in (False, True):
            fast = matching_word(left, right, weak=weak) is not None
            slow = _bruteforce_match(left, right, weak, max_len=6)
            assert fast == slow, f"seed {seed} weak={weak}"
