"""Differential oracle suite for the compiled decision path.

The compile-once subsystem (:mod:`repro.compile`) must be semantically
invisible: interning, automaton reuse, and memoized matching may change
*when* work happens but never *what* is decided.  This suite pins that down
with seeded randomized differential tests:

* **PTIME vs brute force** — the linear read-delete and read-insert
  detectors (running through a shared, warm :class:`PatternCompiler`) are
  cross-checked against the embedding-semantics oracle: a reported witness
  must pass the Lemma 1 check, and a NO_CONFLICT verdict must survive
  exhaustive witness search up to a cap that is conclusive for these
  instance sizes.  At least 200 seeded cases per update semantics, cycling
  through node/tree/value conflict kinds.
* **Compiled vs uncached** — every case is also decided with the compiler
  disabled (the eager-NFA reference path) and by the decision-only DP
  detectors; all paths must agree.
* **NFA vs DFA** — the lazily determinized :class:`LazyDFA` must accept
  exactly the language of its source NFA, for both the strong automaton and
  its weak (any-suffix) closure, and :func:`joint_shortest_word` must agree
  with the eager NFA product on emptiness and shortest-word length.

Seeds are deterministic.  CI shifts the whole suite into disjoint regions
of the input space via the ``REPRO_DIFF_SEED_BASE`` environment variable
(see the ``differential`` job in ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.automata.dfa import LazyDFA, joint_shortest_word
from repro.automata.matching import (
    linear_pattern_nfa,
    match_dp,
    matching_alphabet,
)
from repro.compile.compiler import PatternCompiler
from repro.conflicts.general import find_witness_exhaustive, witness_size_bound
from repro.conflicts.linear import (
    detect_read_delete_linear,
    detect_read_insert_linear,
)
from repro.conflicts.linear_dp import (
    detect_read_delete_linear_dp,
    detect_read_insert_linear_dp,
)
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.workloads.generators import (
    random_delete,
    random_insert,
    random_linear_pattern,
    random_read,
)

SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED_BASE", "0"))
CASES = 200
ALPHABET = ("a", "b")
SEARCH_CAP = 4
KINDS = (ConflictKind.NODE, ConflictKind.TREE, ConflictKind.VALUE)

# One warm compiler per kernel for the whole module: repeated patterns
# across the seed range exercise real cache hits, which is exactly the
# path under test.  The bitset kernel is the production default; the sets
# kernel is the reference oracle it must match byte-for-byte.
COMPILED = PatternCompiler(kernel="bitset")
UNCACHED = PatternCompiler(enabled=False, kernel="bitset")
COMPILED_SETS = PatternCompiler(kernel="sets")
UNCACHED_SETS = PatternCompiler(enabled=False, kernel="sets")


def _case_rng(offset: int, seed: int) -> random.Random:
    return random.Random(1_000_003 * SEED_BASE + offset + seed)


def _read_delete_case(seed: int):
    rng = _case_rng(0, seed)
    read = random_read(
        rng.randint(1, 3), ALPHABET, linear=True, seed=rng, p_wildcard=0.25
    )
    delete = random_delete(
        rng.randint(2, 3), ALPHABET, linear=True, seed=rng, p_wildcard=0.2
    )
    return read, delete


def _read_insert_case(seed: int):
    rng = _case_rng(10_000, seed)
    read = random_read(
        rng.randint(1, 3), ALPHABET, linear=True, seed=rng, p_wildcard=0.25
    )
    insert = random_insert(
        rng.randint(1, 2),
        subtree_size=rng.randint(1, 2),
        alphabet=ALPHABET,
        linear=True,
        seed=rng,
        p_wildcard=0.2,
    )
    return read, insert


def _check_against_oracle(report, read, update, kind, seed):
    if report.verdict is Verdict.CONFLICT:
        assert is_witness(report.witness, read, update, kind), (
            f"seed {seed} ({kind.value}): reported witness fails the "
            f"Lemma 1 check"
        )
    else:
        cap = min(SEARCH_CAP, witness_size_bound(read, update))
        witness = find_witness_exhaustive(read, update, kind, max_size=cap)
        assert witness is None, (
            f"seed {seed} ({kind.value}): compiled path says no conflict "
            f"but brute force found a witness:\n{witness.sketch()}"
        )


class TestReadDeleteDifferential:
    @pytest.mark.parametrize("seed", range(CASES))
    def test_compiled_path_vs_bruteforce_oracle(self, seed):
        read, delete = _read_delete_case(seed)
        kind = KINDS[seed % len(KINDS)]
        report = detect_read_delete_linear(read, delete, kind, compiler=COMPILED)
        _check_against_oracle(report, read, delete, kind, seed)

    @pytest.mark.parametrize("seed", range(CASES))
    def test_compiled_uncached_and_dp_paths_agree(self, seed):
        read, delete = _read_delete_case(seed)
        for kind in KINDS:
            cached = detect_read_delete_linear(
                read, delete, kind, compiler=COMPILED
            )
            raw = detect_read_delete_linear(
                read, delete, kind, compiler=UNCACHED
            )
            assert cached.verdict is raw.verdict, (
                f"seed {seed} ({kind.value}): compiled={cached.verdict} "
                f"uncached={raw.verdict}"
            )
            if cached.verdict is Verdict.CONFLICT:
                assert is_witness(cached.witness, read, delete, kind)
                assert is_witness(raw.witness, read, delete, kind)
        node = detect_read_delete_linear(
            read, delete, ConflictKind.NODE, compiler=COMPILED
        )
        assert detect_read_delete_linear_dp(read, delete, compiler=COMPILED) is (
            node.verdict is Verdict.CONFLICT
        ), f"seed {seed}: DP decision disagrees with compiled detector"


class TestReadInsertDifferential:
    @pytest.mark.parametrize("seed", range(CASES))
    def test_compiled_path_vs_bruteforce_oracle(self, seed):
        read, insert = _read_insert_case(seed)
        kind = KINDS[seed % len(KINDS)]
        report = detect_read_insert_linear(read, insert, kind, compiler=COMPILED)
        _check_against_oracle(report, read, insert, kind, seed)

    @pytest.mark.parametrize("seed", range(CASES))
    def test_compiled_uncached_and_dp_paths_agree(self, seed):
        read, insert = _read_insert_case(seed)
        for kind in KINDS:
            cached = detect_read_insert_linear(
                read, insert, kind, compiler=COMPILED
            )
            raw = detect_read_insert_linear(
                read, insert, kind, compiler=UNCACHED
            )
            assert cached.verdict is raw.verdict, (
                f"seed {seed} ({kind.value}): compiled={cached.verdict} "
                f"uncached={raw.verdict}"
            )
            if cached.verdict is Verdict.CONFLICT:
                assert is_witness(cached.witness, read, insert, kind)
                assert is_witness(raw.witness, read, insert, kind)
        node = detect_read_insert_linear(
            read, insert, ConflictKind.NODE, compiler=COMPILED
        )
        assert detect_read_insert_linear_dp(read, insert, compiler=COMPILED) is (
            node.verdict is Verdict.CONFLICT
        ), f"seed {seed}: DP decision disagrees with compiled detector"


def _report_fingerprint(report):
    """Everything two kernels must agree on, byte for byte."""
    from repro.xml.isomorphism import canonical_form

    witness = (
        canonical_form(report.witness) if report.witness is not None else None
    )
    return (report.verdict, witness, report.method, report.reason)


class TestKernelDifferential:
    """3-way agreement: bitset kernel vs sets kernel vs brute force.

    The kernel is a speed knob, never a semantics knob: all four compiler
    configurations (compiled/uncached x bitset/sets) must produce the
    same verdict, the same canonical witness tree, the same method tag,
    and the same (absent) degradation reason — and the answer must
    survive the embedding-semantics brute-force oracle.
    """

    ALL_COMPILERS = (
        ("bitset", COMPILED),
        ("bitset-uncached", UNCACHED),
        ("sets", COMPILED_SETS),
        ("sets-uncached", UNCACHED_SETS),
    )

    @pytest.mark.parametrize("seed", range(CASES))
    def test_read_delete_three_way(self, seed):
        read, delete = _read_delete_case(seed)
        for kind in KINDS:
            reports = {
                name: detect_read_delete_linear(
                    read, delete, kind, compiler=comp
                )
                for name, comp in self.ALL_COMPILERS
            }
            prints = {
                name: _report_fingerprint(r) for name, r in reports.items()
            }
            assert len(set(prints.values())) == 1, (
                f"seed {seed} ({kind.value}): kernels disagree: {prints}"
            )
        kind = KINDS[seed % len(KINDS)]
        _check_against_oracle(
            detect_read_delete_linear(read, delete, kind, compiler=COMPILED),
            read,
            delete,
            kind,
            seed,
        )

    @pytest.mark.parametrize("seed", range(CASES))
    def test_read_insert_three_way(self, seed):
        read, insert = _read_insert_case(seed)
        for kind in KINDS:
            reports = {
                name: detect_read_insert_linear(
                    read, insert, kind, compiler=comp
                )
                for name, comp in self.ALL_COMPILERS
            }
            prints = {
                name: _report_fingerprint(r) for name, r in reports.items()
            }
            assert len(set(prints.values())) == 1, (
                f"seed {seed} ({kind.value}): kernels disagree: {prints}"
            )
        kind = KINDS[seed % len(KINDS)]
        _check_against_oracle(
            detect_read_insert_linear(read, insert, kind, compiler=COMPILED),
            read,
            insert,
            kind,
            seed,
        )

    @pytest.mark.parametrize("seed", range(100))
    def test_matching_word_identical_across_kernels(self, seed):
        rng = _case_rng(900_000, seed)
        left = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        right = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        for weak in (False, True):
            words = {
                name: comp.matching_word(left, right, weak=weak)
                for name, comp in self.ALL_COMPILERS
            }
            assert len({tuple(w) if w else w for w in words.values()}) == 1, (
                f"seed {seed} (weak={weak}): witness words differ: {words}"
            )


class TestMatchingEquivalence:
    """NFA-vs-DFA properties over random linear patterns."""

    @pytest.mark.parametrize("seed", range(100))
    def test_lazy_dfa_accepts_same_language_as_nfa(self, seed):
        rng = _case_rng(600_000, seed)
        pattern = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        other = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        alphabet = matching_alphabet(pattern, other)
        strong = linear_pattern_nfa(pattern, alphabet)
        for nfa in (strong, strong.with_any_suffix()):
            dfa = LazyDFA(nfa)
            for _ in range(40):
                word = [
                    rng.choice(alphabet) for _ in range(rng.randint(0, 7))
                ]
                assert nfa.accepts(word) == dfa.accepts(word), (
                    f"seed {seed}: NFA/DFA disagree on {word!r}"
                )

    @pytest.mark.parametrize("seed", range(100))
    def test_joint_shortest_word_agrees_with_nfa_product(self, seed):
        rng = _case_rng(700_000, seed)
        left = random_linear_pattern(
            rng.randint(1, 4), ALPHABET, p_wildcard=0.3, seed=rng
        )
        right = random_linear_pattern(
            rng.randint(1, 4), ALPHABET, p_wildcard=0.3, seed=rng
        )
        weak = rng.random() < 0.5
        alphabet = matching_alphabet(left, right)
        left_nfa = linear_pattern_nfa(left, alphabet)
        right_nfa = linear_pattern_nfa(right, alphabet)
        if weak:
            right_nfa = right_nfa.with_any_suffix()
        reference = left_nfa.intersect(right_nfa).shortest_accepted_word()
        got = joint_shortest_word(LazyDFA(left_nfa), LazyDFA(right_nfa))
        if reference is None:
            assert got is None, f"seed {seed}: DFA product found {got!r}"
        else:
            assert got is not None, f"seed {seed}: DFA product missed a word"
            assert len(got) == len(reference)
            assert left_nfa.accepts(got) and right_nfa.accepts(got)

    @pytest.mark.parametrize("seed", range(100))
    def test_compiled_matching_agrees_with_dp(self, seed):
        rng = _case_rng(800_000, seed)
        left = random_linear_pattern(
            rng.randint(1, 4), ALPHABET, p_wildcard=0.3, seed=rng
        )
        right = random_linear_pattern(
            rng.randint(1, 4), ALPHABET, p_wildcard=0.3, seed=rng
        )
        for weak in (False, True):
            word = COMPILED.matching_word(left, right, weak=weak)
            assert (word is not None) == match_dp(left, right, weak=weak), (
                f"seed {seed}: compiled matching_word disagrees with DP "
                f"(weak={weak})"
            )
