"""Kernel-differential battery for the bit-parallel automata kernel.

:mod:`repro.automata.bitkernel` re-represents NFA subsets as machine
integers; correctness rests on the bitset step being *exactly* the set
step.  This battery pins that down from four directions:

* **Mask-table soundness** — ``MaskTable.from_pattern`` agrees with
  ``from_nfa(linear_pattern_nfa(...))`` on every symbol, and a hypothesis
  property over *random* NFAs checks ``BitsetAutomaton.step`` against
  subset simulation symbol by symbol.
* **Decision agreement** — emptiness and joint-shortest-word of the
  bitset loops equal the eager NFA product, including the exact
  (length, lex)-least witness word.
* **Metamorphic invariants** — relabeling NFA states and swapping
  operand order never flip a verdict.
* **Boundary + transport** — automata spanning the 63/64/65-state
  machine-word boundaries, payload/pickle round-trips, artifact
  shipping into spawn pool workers, and the ``DetectorConfig.kernel``
  knob itself.

Seeds honor ``REPRO_DIFF_SEED_BASE`` like ``tests/test_differential.py``
so CI can shift the whole battery into disjoint input regions.
"""

from __future__ import annotations

import os
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Budget, budget_scope
from repro.automata.bitkernel import (
    BitsetAutomaton,
    MaskTable,
    bitset_matching_profile,
    intersection_nonempty,
    joint_shortest_word_bits,
    match_bits,
    matching_word_bits,
    spine_spec,
)
from repro.automata.matching import linear_pattern_nfa, matching_alphabet
from repro.automata.nfa import NFA
from repro.compile.compiler import (
    KERNELS,
    PatternCompiler,
    compiler_for_config,
)
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.linear_dp import matching_profile
from repro.conflicts.semantics import Verdict
from repro.errors import BudgetExceeded
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.xpath import parse_xpath
from repro.resilience import faults
from repro.workloads.generators import random_linear_pattern

SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED_BASE", "0"))
ALPHABET = ("a", "b")


def _rng(offset: int, seed: int) -> random.Random:
    return random.Random(1_000_003 * SEED_BASE + offset + seed)


def _random_nfa(rng: random.Random, states: int, alphabet) -> NFA:
    nfa = NFA(alphabet)
    for index in range(states):
        nfa.add_state(
            start=(index == 0), accepting=(rng.random() < 0.3 or index == states - 1)
        )
    for source in range(states):
        for symbol in alphabet:
            for target in range(states):
                if rng.random() < 0.25:
                    nfa.add_transition(source, symbol, target)
    return nfa


# ----------------------------------------------------------------------
# Mask-table construction
# ----------------------------------------------------------------------


class TestMaskConstruction:
    @pytest.mark.parametrize("seed", range(60))
    def test_from_pattern_equals_from_nfa(self, seed):
        """The NFA-free builder mirrors linear_pattern_nfa state by state."""
        rng = _rng(0, seed)
        pattern = random_linear_pattern(
            rng.randint(1, 6), ALPHABET, p_wildcard=0.3, seed=rng
        )
        other = random_linear_pattern(
            rng.randint(1, 3), ALPHABET, p_wildcard=0.3, seed=rng
        )
        alphabet = matching_alphabet(pattern, other)
        direct = MaskTable.from_pattern(pattern)
        via_nfa = MaskTable.from_nfa(linear_pattern_nfa(pattern, alphabet))
        assert direct.size == via_nfa.size
        assert direct.start == via_nfa.start
        assert direct.accepting == via_nfa.accepting
        for symbol in alphabet:
            assert direct.rows(symbol) == via_nfa.rows(symbol), (
                f"seed {seed}: rows differ on {symbol!r}"
            )

    @pytest.mark.parametrize("seed", range(30))
    def test_with_any_suffix_matches_nfa_weak_closure(self, seed):
        rng = _rng(5_000, seed)
        pattern = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        alphabet = matching_alphabet(pattern, pattern)
        table = MaskTable.from_pattern(pattern).with_any_suffix()
        nfa = linear_pattern_nfa(pattern, alphabet).with_any_suffix()
        auto = BitsetAutomaton(table)
        for _ in range(40):
            word = [rng.choice(alphabet) for _ in range(rng.randint(0, 7))]
            assert auto.accepts(word) == nfa.accepts(word), (
                f"seed {seed}: weak closure disagrees on {word!r}"
            )

    def test_rows_falls_back_to_any_rows_for_unknown_label(self):
        table = MaskTable.from_pattern(parse_xpath("a//b"))
        assert table.rows("zzz") == table.any_rows


# ----------------------------------------------------------------------
# Bitset step == set step (hypothesis, arbitrary NFAs)
# ----------------------------------------------------------------------


class TestStepSoundness:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_bitset_step_equals_set_step(self, data):
        rng = random.Random(data.draw(st.integers(0, 2**32), label="seed"))
        states = data.draw(st.integers(1, 12), label="states")
        nfa = _random_nfa(rng, states, ALPHABET)
        auto = BitsetAutomaton(MaskTable.from_nfa(nfa))
        subset = data.draw(
            st.integers(1, (1 << states) - 1), label="subset"
        )
        for symbol in ALPHABET:
            expected = 0
            for state in range(states):
                if subset >> state & 1:
                    for target in nfa.successors(state, symbol):
                        expected |= 1 << target
            assert auto.step(subset, symbol) == expected

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_acceptance_equals_subset_simulation(self, data):
        rng = random.Random(data.draw(st.integers(0, 2**32), label="seed"))
        nfa = _random_nfa(rng, data.draw(st.integers(1, 10)), ALPHABET)
        auto = BitsetAutomaton(MaskTable.from_nfa(nfa))
        word = data.draw(
            st.lists(st.sampled_from(ALPHABET), max_size=8), label="word"
        )
        assert auto.accepts(word) == nfa.accepts(word)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_emptiness_and_shortest_word_agree_with_nfa_product(self, data):
        """Product emptiness + canonical word vs the eager NFA reference."""
        rng = random.Random(data.draw(st.integers(0, 2**32), label="seed"))
        left = _random_nfa(rng, rng.randint(1, 7), ALPHABET)
        right = _random_nfa(rng, rng.randint(1, 7), ALPHABET)
        reference = left.intersect(right).shortest_accepted_word()
        left_auto = BitsetAutomaton(MaskTable.from_nfa(left))
        right_auto = BitsetAutomaton(MaskTable.from_nfa(right))
        word = joint_shortest_word_bits(left_auto, right_auto, ALPHABET)
        assert word == reference
        assert intersection_nonempty(left_auto, right_auto, ALPHABET) == (
            reference is not None
        )


# ----------------------------------------------------------------------
# Metamorphic invariants
# ----------------------------------------------------------------------


class TestMetamorphic:
    @pytest.mark.parametrize("seed", range(40))
    def test_state_relabeling_never_flips_a_verdict(self, seed):
        """Permuting NFA state numbers permutes bits but not the language."""
        rng = _rng(20_000, seed)
        states = rng.randint(2, 8)
        base = _random_nfa(rng, states, ALPHABET)
        perm = list(range(states))
        rng.shuffle(perm)
        relabeled = NFA(ALPHABET)
        for index in range(states):
            relabeled.add_state()
        relabeled.start = perm[base.start]
        relabeled.accepting = {perm[s] for s in base.accepting}
        for source in range(states):
            for symbol in ALPHABET:
                for target in base.successors(source, symbol):
                    relabeled.add_transition(perm[source], symbol, perm[target])
        other = _random_nfa(rng, rng.randint(1, 6), ALPHABET)
        other_auto = BitsetAutomaton(MaskTable.from_nfa(other))
        for nfa in (base, relabeled):
            auto = BitsetAutomaton(MaskTable.from_nfa(nfa))
            verdict = intersection_nonempty(auto, other_auto, ALPHABET)
            word = joint_shortest_word_bits(auto, other_auto, ALPHABET)
            if nfa is base:
                base_verdict, base_word = verdict, word
        assert verdict == base_verdict, f"seed {seed}: relabeling flipped verdict"
        assert word == base_word, f"seed {seed}: relabeling changed the word"

    @pytest.mark.parametrize("seed", range(40))
    def test_operand_order_never_flips_a_verdict(self, seed):
        rng = _rng(30_000, seed)
        left = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        right = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        # Strong matching is intersection of two exact languages — symmetric.
        assert match_bits(left, right, weak=False) == match_bits(
            right, left, weak=False
        ), f"seed {seed}: operand order flipped the strong verdict"
        word = matching_word_bits(left, right, weak=False)
        flipped = matching_word_bits(right, left, weak=False)
        assert word == flipped, f"seed {seed}: operand order changed the word"


# ----------------------------------------------------------------------
# Machine-word boundaries
# ----------------------------------------------------------------------


class TestWordBoundaries:
    """Python ints are unbounded, but 63/64/65 states is where a fixed-width
    implementation would break — pin exactness there."""

    @pytest.mark.parametrize("states", (63, 64, 65, 129))
    def test_long_chain_automaton(self, states):
        nfa = NFA(ALPHABET)
        for index in range(states):
            nfa.add_state(start=(index == 0), accepting=(index == states - 1))
        for index in range(states - 1):
            nfa.add_transition(index, "a", index + 1)
        # Descendant-style self-loop in the middle, spanning the boundary.
        nfa.add_any_transitions(states // 2, states // 2)
        auto = BitsetAutomaton(MaskTable.from_nfa(nfa))
        accepted = ["a"] * (states - 1)
        assert auto.accepts(accepted)
        assert not auto.accepts(accepted[:-1])
        assert auto.accepts(["a"] * (states // 2) + ["b"] * 3 + ["a"] * (states - 1 - states // 2))
        word = joint_shortest_word_bits(auto, auto, ALPHABET)
        assert word == accepted

    @pytest.mark.parametrize("spine", (32, 33, 40))
    def test_long_pattern_spans_word_boundary(self, spine):
        # The root edge costs one state, every descendant step two:
        # 32 spine nodes put the strong table exactly on the 64-bit
        # boundary and its weak closure one past it (65 states).
        pattern = parse_xpath("//".join("a" * spine))
        table = MaskTable.from_pattern(pattern)
        assert table.size == 2 * spine
        assert table.with_any_suffix().size == 2 * spine + 1
        other = parse_xpath("/".join("a" * spine))
        word = matching_word_bits(pattern, other, weak=False)
        assert word == ["a"] * spine
        assert match_bits(pattern, other, weak=True)


# ----------------------------------------------------------------------
# Matching profile (the (i, j) DP)
# ----------------------------------------------------------------------


class TestBitsetProfile:
    @pytest.mark.parametrize("seed", range(120))
    def test_profile_equals_reference_dp(self, seed):
        rng = _rng(40_000, seed)
        trunk = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        read = random_linear_pattern(
            rng.randint(1, 5), ALPHABET, p_wildcard=0.3, seed=rng
        )
        expected = matching_profile(trunk, read)
        got = bitset_matching_profile(spine_spec(trunk), spine_spec(read))
        assert got == expected, f"seed {seed}: profiles differ"


# ----------------------------------------------------------------------
# Transport: payloads, pickle, pool workers
# ----------------------------------------------------------------------


class TestTransport:
    def test_payload_round_trip(self):
        table = MaskTable.from_pattern(parse_xpath("a//b/*/c"))
        clone = MaskTable.from_payload(table.to_payload())
        assert clone == table
        assert hash(clone) == hash(table)

    def test_payload_pickles(self):
        table = MaskTable.from_pattern(parse_xpath("a//b/*/c"))
        revived = MaskTable.from_payload(
            pickle.loads(pickle.dumps(table.to_payload()))
        )
        assert revived == table

    def test_artifact_carries_mask_payload(self):
        comp = PatternCompiler()
        artifact = comp.artifact(Read("a//b/c"))
        assert artifact.mask_payload is not None
        assert MaskTable.from_payload(artifact.mask_payload) == (
            MaskTable.from_pattern(parse_xpath("a//b/c"))
        )

    def test_sets_kernel_artifacts_have_no_mask_payload(self):
        comp = PatternCompiler(kernel="sets")
        assert comp.artifact(Read("a//b/c")).mask_payload is None

    def test_seed_adopts_shipped_masks(self):
        source = PatternCompiler()
        artifact = pickle.loads(pickle.dumps(source.artifact(Read("a//b/c"))))
        target = PatternCompiler()
        target.seed(artifact)
        built_before = target.stats()
        # The seeded automaton answers without rebuilding its table.
        word = target.matching_word(
            parse_xpath("a//b/c"), parse_xpath("a/b/c"), weak=False
        )
        assert word == ["a", "b", "c"]

    def test_seed_rejects_wrong_sized_payload(self):
        source = PatternCompiler()
        artifact = source.artifact(Read("a//b/c"))
        bogus = MaskTable.from_pattern(parse_xpath("x/y")).to_payload()
        mangled = pickle.loads(pickle.dumps(artifact))
        object.__setattr__(mangled, "mask_payload", bogus)
        target = PatternCompiler()
        target.seed(mangled)  # must not adopt, must not raise
        word = target.matching_word(
            parse_xpath("a//b/c"), parse_xpath("a/b/c"), weak=False
        )
        assert word == ["a", "b", "c"]

    def test_spawn_pool_round_trip(self, monkeypatch):
        """Artifacts (and their mask payloads) ship into spawn workers."""
        from repro.conflicts.batch import BatchAnalyzer, reference_matrix

        catalogue = {
            "titles": Read("bib/book/title"),
            "purge": Delete("bib/book[author]"),
            "trim": Delete("bib//title"),
            "restock": Insert("bib/book", "<note>x</note>"),
        }
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        analyzer = BatchAnalyzer(jobs=2)
        matrix = analyzer.analyze(catalogue)
        if analyzer.metrics()["counters"].get("batch.pool_failures"):
            pytest.skip("process pool unavailable in this environment")
        reference = reference_matrix(catalogue)
        for first in catalogue:
            for second in catalogue:
                assert matrix.verdict(first, second) is reference.verdict(
                    first, second
                ), f"spawn pool disagrees on ({first}, {second})"


# ----------------------------------------------------------------------
# The kernel knob
# ----------------------------------------------------------------------


class TestKernelKnob:
    def test_known_kernels(self):
        assert KERNELS == ("bitset", "sets")

    def test_compiler_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            PatternCompiler(kernel="quantum")

    def test_detector_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            DetectorConfig(kernel="quantum")

    def test_detector_config_round_trips_kernel(self):
        detector = ConflictDetector(config=DetectorConfig(kernel="sets"))
        assert detector.kernel == "sets"
        assert detector.config.kernel == "sets"

    def test_kernel_excluded_from_fingerprint(self):
        # The kernel is a speed knob with differential-enforced identical
        # semantics, so caches built under different kernels may share.
        assert (
            DetectorConfig(kernel="sets").fingerprint()
            == DetectorConfig(kernel="bitset").fingerprint()
        )

    def test_explicit_compiler_wins_over_kernel_arg(self):
        comp = PatternCompiler(kernel="sets")
        detector = ConflictDetector(compiler=comp)
        assert detector.kernel == "sets"

    def test_compiler_for_config_sets_kernel_is_private(self):
        comp = compiler_for_config(True, 256, kernel="sets")
        assert comp.kernel == "sets"
        from repro.compile.compiler import global_compiler

        assert comp is not global_compiler()

    def test_compiler_for_config_bitset_default_is_global(self):
        from repro.compile.compiler import global_compiler

        assert compiler_for_config(True, None) is global_compiler()

    def test_cli_kernel_flag(self, capsys):
        from repro.cli import main as cli_main

        argv = ["check", "--read", "*//C", "--insert", "*/B", "--xml", "<C/>"]
        assert cli_main(argv + ["--kernel", "bitset"]) == 1
        assert cli_main(argv + ["--kernel", "sets"]) == 1
        capsys.readouterr()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_disabled_compiler_honors_kernel(self, kernel):
        comp = compiler_for_config(False, None, kernel=kernel)
        assert comp.kernel == kernel
        assert not comp.enabled


# ----------------------------------------------------------------------
# Kernel x resilience
# ----------------------------------------------------------------------


class TestKernelResilience:
    """Armed budgets and injected faults behave identically per kernel."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        faults.uninstall()
        yield
        faults.uninstall()

    PAIR = (Read("a[b]/c"), Delete("a/c"))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_step_limit_degrades_identically(self, kernel):
        detector = ConflictDetector(max_steps=1, kernel=kernel)
        report = detector.read_delete(*self.PAIR)
        assert report.verdict is Verdict.UNKNOWN
        assert report.reason == "step_limit"
        assert report.degraded
        assert report.method == "budget"

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_deadline_degrades_identically(self, kernel):
        detector = ConflictDetector(deadline_s=0.0, kernel=kernel)
        report = detector.read_delete(*self.PAIR)
        assert report.verdict is Verdict.UNKNOWN
        assert report.reason == "timeout"

    def test_bitwise_loops_hit_checkpoints(self):
        """The kernel's own loops trip an armed step budget (they do not
        run uninterruptible)."""
        with budget_scope(Budget(max_steps=2)):
            with pytest.raises(BudgetExceeded) as info:
                matching_word_bits(
                    parse_xpath("a//b//c"),
                    parse_xpath("*//*//*"),
                    weak=True,
                )
        assert "bitkernel" in str(info.value)

    def test_profile_loop_hits_checkpoints(self):
        spec = spine_spec(parse_xpath("a//b//c//d"))
        with budget_scope(Budget(max_steps=1)):
            with pytest.raises(BudgetExceeded) as info:
                bitset_matching_profile(spec, spec)
        assert "bitkernel.profile" in str(info.value)

    def test_mask_build_hits_checkpoints(self):
        with budget_scope(Budget(max_steps=1)):
            with pytest.raises(BudgetExceeded) as info:
                MaskTable.from_pattern(parse_xpath("a/b/c/d/e"))
        assert "bitkernel.mask_build" in str(info.value)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_slow_decide_fault_fires_identically(self, kernel):
        """A ``slow_decide`` stall past the chunk timeout quarantines the
        poisoned pairs with reason ``timeout`` under both kernels, and
        every healthy pair still matches the serial reference."""
        from repro.conflicts.batch import BatchAnalyzer, reference_matrix

        ops = {
            "titles": Read("bib/book/title"),
            "prices": Read("bib//price"),
            "names": Read("bib/book/author/name"),
            "trim": Delete("bib//title"),
            "poison": Delete("bib/poisonlabel/entry"),
        }
        reference = reference_matrix(ops)
        faults.install(
            faults.FaultInjector.parse(
                "slow_decide:1:only=poisonlabel:delay=2.0"
            )
        )
        analyzer = BatchAnalyzer(
            DetectorConfig(kernel=kernel),
            jobs=2,
            retries=0,
            chunk_timeout_s=0.75,
            retry_backoff_s=0.001,
        )
        matrix = analyzer.analyze(ops)
        if analyzer.metrics()["counters"].get("batch.pool_failures"):
            pytest.skip("process pool unavailable in this environment")
        degraded = matrix.degraded_pairs()
        assert degraded, f"kernel={kernel}: slow_decide did not fire"
        for first, second, reason in degraded:
            assert "poison" in (first, second)
            assert reason == "timeout"
        for (a, b), verdict in reference.verdicts.items():
            if "poison" not in (a, b):
                assert matrix.verdicts[(a, b)] is verdict, (
                    f"kernel={kernel}: healthy pair ({a}, {b}) diverged"
                )
