"""Execute the library's docstring examples (guards against docstring rot)."""

from __future__ import annotations

import doctest

import pytest

import repro.patterns.pattern
import repro.patterns.xpath
import repro.xml.isomorphism
import repro.xml.tree

MODULES = [
    repro.xml.tree,
    repro.xml.isomorphism,
    repro.patterns.pattern,
    repro.patterns.xpath,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tried = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert tried > 0, f"{module.__name__} should contain doctest examples"
    assert failures == 0, f"{failures} doctest failure(s) in {module.__name__}"
