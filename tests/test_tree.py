"""Unit tests for the XML tree substrate (:mod:`repro.xml.tree`)."""

from __future__ import annotations

import pytest

from repro.errors import NodeNotFoundError, TreeStructureError
from repro.xml.tree import XMLTree, build_tree


class TestConstruction:
    def test_single_node_tree(self):
        t = XMLTree("a")
        assert t.size == 1
        assert t.label(t.root) == "a"
        assert t.parent(t.root) is None
        assert t.children(t.root) == ()
        assert t.is_leaf(t.root)

    def test_add_child_returns_fresh_ids(self):
        t = XMLTree("a")
        b = t.add_child(t.root, "b")
        c = t.add_child(t.root, "c")
        assert b != c
        assert t.size == 3
        assert t.parent(b) == t.root
        assert set(t.children(t.root)) == {b, c}

    def test_build_tree_nested_spec(self):
        t = build_tree(("a", "b", ("c", "d", "e")))
        assert t.size == 5
        assert t.label(t.root) == "a"
        labels = sorted(t.label(c) for c in t.children(t.root))
        assert labels == ["b", "c"]

    def test_build_tree_bare_label(self):
        t = build_tree("solo")
        assert t.size == 1
        assert t.label(t.root) == "solo"

    def test_build_tree_rejects_bad_spec(self):
        with pytest.raises(TreeStructureError):
            build_tree((1, "a"))
        with pytest.raises(TreeStructureError):
            build_tree(("a", (2,)))

    def test_unknown_node_raises(self):
        t = XMLTree("a")
        with pytest.raises(NodeNotFoundError):
            t.label(99)
        with pytest.raises(NodeNotFoundError):
            t.children(99)


class TestTraversal:
    def test_preorder_visits_all_once(self):
        t = build_tree(("a", ("b", "c"), ("d", "e", "f")))
        seen = list(t.preorder())
        assert len(seen) == t.size
        assert len(set(seen)) == t.size
        assert seen[0] == t.root

    def test_postorder_children_before_parents(self):
        t = build_tree(("a", ("b", "c"), "d"))
        order = {node: i for i, node in enumerate(t.postorder())}
        for parent, child in t.edges():
            assert order[child] < order[parent]

    def test_descendants_and_ancestors(self):
        t = build_tree(("a", ("b", ("c", "d"))))
        b = t.children(t.root)[0]
        c = t.children(b)[0]
        d = t.children(c)[0]
        assert set(t.descendants(b)) == {c, d}
        assert set(t.descendants(b, include_self=True)) == {b, c, d}
        assert list(t.ancestors(d)) == [c, b, t.root]

    def test_is_ancestor_is_proper(self):
        t = build_tree(("a", ("b", "c")))
        b = t.children(t.root)[0]
        c = t.children(b)[0]
        assert t.is_ancestor(t.root, c)
        assert t.is_ancestor(b, c)
        assert not t.is_ancestor(c, b)
        assert not t.is_ancestor(b, b), "ancestorship must be proper"

    def test_depth_and_height(self):
        t = build_tree(("a", ("b", ("c", "d")), "e"))
        b = t.children(t.root)[0]
        c = t.children(b)[0]
        d = t.children(c)[0]
        assert t.depth(t.root) == 0
        assert t.depth(d) == 3
        assert t.height() == 3

    def test_path_from_root(self):
        t = build_tree(("a", ("b", "c")))
        b = t.children(t.root)[0]
        c = t.children(b)[0]
        assert t.path_from_root(c) == [t.root, b, c]
        assert t.path_labels(c) == ["a", "b", "c"]

    def test_edges_match_parent_child(self):
        t = build_tree(("a", ("b", "c"), "d"))
        edges = set(t.edges())
        assert len(edges) == t.size - 1
        for parent, child in edges:
            assert t.parent(child) == parent


class TestMutation:
    def test_graft_copies_with_fresh_ids(self):
        host = build_tree(("a", "b"))
        guest = build_tree(("x", "y"))
        mapping = host.graft(host.root, guest)
        assert host.size == 4
        assert set(mapping) == set(guest.nodes())
        assert all(node in host for node in mapping.values())
        # Fresh ids: disjoint from the guest's own ids as a tree object.
        grafted_root = mapping[guest.root]
        assert host.label(grafted_root) == "x"
        assert host.parent(grafted_root) == host.root

    def test_graft_twice_gives_disjoint_copies(self):
        host = XMLTree("a")
        guest = build_tree(("x", "y"))
        m1 = host.graft(host.root, guest)
        m2 = host.graft(host.root, guest)
        assert set(m1.values()) & set(m2.values()) == set()
        assert host.size == 5

    def test_delete_subtree(self):
        t = build_tree(("a", ("b", "c", "d"), "e"))
        b = t.children(t.root)[0]
        removed = t.delete_subtree(b)
        assert len(removed) == 3
        assert t.size == 2
        assert b not in t
        t.validate()

    def test_delete_root_rejected(self):
        t = build_tree(("a", "b"))
        with pytest.raises(TreeStructureError):
            t.delete_subtree(t.root)

    def test_move_subtree(self):
        t = build_tree(("a", ("b", "c"), "d"))
        b = t.children(t.root)[0]
        d = t.children(t.root)[1]
        t.move_subtree(b, d)
        assert t.parent(b) == d
        t.validate()

    def test_move_under_descendant_rejected(self):
        t = build_tree(("a", ("b", "c")))
        b = t.children(t.root)[0]
        c = t.children(b)[0]
        with pytest.raises(TreeStructureError):
            t.move_subtree(b, c)
        with pytest.raises(TreeStructureError):
            t.move_subtree(b, b)

    def test_move_root_rejected(self):
        t = build_tree(("a", "b"))
        b = t.children(t.root)[0]
        with pytest.raises(TreeStructureError):
            t.move_subtree(t.root, b)

    def test_relabel(self):
        t = XMLTree("a")
        t.relabel(t.root, "z")
        assert t.label(t.root) == "z"


class TestCopying:
    def test_copy_preserves_ids_and_is_independent(self):
        t = build_tree(("a", ("b", "c")))
        clone = t.copy()
        assert set(clone.nodes()) == set(t.nodes())
        assert clone.equivalent(t)
        clone.add_child(clone.root, "new")
        assert clone.size == t.size + 1
        assert t.size == 3

    def test_copy_then_mutate_original_does_not_leak(self):
        t = build_tree(("a", ("b", "c")))
        clone = t.copy()
        b = t.children(t.root)[0]
        t.delete_subtree(b)
        assert clone.size == 3
        clone.validate()

    def test_subtree_renumbers(self):
        t = build_tree(("a", ("b", "c", "d")))
        b = t.children(t.root)[0]
        sub = t.subtree(b)
        assert sub.size == 3
        assert sub.label(sub.root) == "b"
        sub.validate()

    def test_subtree_preserving_ids(self):
        t = build_tree(("a", ("b", "c", "d")))
        b = t.children(t.root)[0]
        sub = t.subtree_preserving_ids(b)
        assert sub.root == b
        assert set(sub.nodes()) == set(t.descendants(b, include_self=True))
        sub.validate()


class TestEquivalence:
    def test_equivalent_definition2(self):
        t = build_tree(("a", "b"))
        assert t.equivalent(t.copy())

    def test_equivalent_rejects_label_change(self):
        t = build_tree(("a", "b"))
        other = t.copy()
        other.relabel(other.children(other.root)[0], "z")
        assert not t.equivalent(other)

    def test_equivalent_rejects_extra_node(self):
        t = build_tree(("a", "b"))
        other = t.copy()
        other.add_child(other.root, "b")
        assert not t.equivalent(other)

    def test_structure_returns_node_and_edge_sets(self):
        t = build_tree(("a", "b"))
        nodes, edges = t.structure()
        assert nodes == set(t.nodes())
        assert edges == set(t.edges())


class TestValidate:
    def test_validate_accepts_wellformed(self):
        build_tree(("a", ("b", "c"), "d")).validate()

    def test_labels_and_contains(self):
        t = build_tree(("a", "b", "b"))
        assert t.labels() == {"a", "b"}
        assert t.root in t
        assert 999 not in t

    def test_sketch_contains_labels(self):
        t = build_tree(("a", "b"))
        sketch = t.sketch()
        assert "a" in sketch and "b" in sketch
