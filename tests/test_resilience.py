"""Tests for the resilience layer: budgets, quarantine, fault injection.

Covers the four legs of ``repro.resilience``:

* cooperative :class:`Budget` semantics and their thread-local scoping;
* detector degradation to ``UNKNOWN`` with a machine-readable reason
  (and the invariant that degraded verdicts are never cached);
* the batch engine's chunk hardening — injected worker crashes drive the
  retry / split / quarantine machinery while every healthy pair still
  matches the serial reference matrix, and in-worker deadline budgets
  degrade pairs without hanging the pool;
* durable verdict-cache snapshots: fsync'd atomic saves and salvage of
  corrupt files (with ``.bak`` preservation and a typed warning).
"""

from __future__ import annotations

import json
import os
import time
import warnings

import pytest

from repro import Budget, BudgetExceeded, budget_scope, current_budget
from repro.conflicts.batch import (
    BatchAnalyzer,
    VerdictCache,
    _preferred_context,
    reference_matrix,
)
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.schedule import conflict_matrix, parallel_schedule
from repro.conflicts.semantics import Verdict
from repro.errors import (
    CacheCorrupt,
    CacheCorruptWarning,
    ConflictEngineError,
    InjectedFault,
)
from repro.operations.ops import Delete, Insert, Read
from repro.resilience import faults
from repro.resilience.budget import checkpoint


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends with no installed fault injector."""
    faults.uninstall()
    yield
    faults.uninstall()


def small_catalogue() -> dict:
    return {
        "titles": Read("bib/book/title"),
        "prices": Read("bib//price"),
        "purge": Delete("bib/book[author]"),
        "restock": Insert("bib/book", "<note>x</note>"),
        "trim": Delete("bib//title"),
    }


def poison_catalogue() -> dict:
    """A catalogue whose ``poison`` operation carries a distinctive label.

    Canonical pair keys embed the operands' pattern forms, so a fault
    rule with ``only=poisonlabel`` fires exactly for the poison pairs.
    """
    ops = small_catalogue()
    ops["poison"] = Delete("bib/poisonlabel/entry")
    return ops


class TestBudget:
    def test_step_limit_trips_after_allowance(self):
        budget = Budget(max_steps=3)
        for _ in range(3):
            budget.check()
        with pytest.raises(BudgetExceeded) as info:
            budget.check("unit.loop")
        assert info.value.reason == "step_limit"
        assert info.value.steps == 4
        assert "unit.loop" in str(info.value)

    def test_deadline_trips(self):
        budget = Budget(deadline_s=0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded) as info:
            budget.check()
        assert info.value.reason == "timeout"
        assert info.value.elapsed_s > 0.0

    def test_exceeded_is_non_raising(self):
        budget = Budget(max_steps=0)
        assert budget.exceeded() is None
        budget.steps = 1
        assert budget.exceeded() == "step_limit"
        assert Budget(deadline_s=3600).exceeded() is None

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        for _ in range(10_000):
            budget.check()
        assert budget.exceeded() is None
        assert budget.remaining_s() is None

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            Budget(deadline_s=-1.0)
        with pytest.raises(ValueError):
            Budget(max_steps=-1)

    def test_scope_arms_and_restores(self):
        assert current_budget() is None
        outer = Budget(max_steps=100)
        with budget_scope(outer):
            assert current_budget() is outer
            inner = Budget(max_steps=5)
            with budget_scope(inner):
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_none_scope_shadows_outer_budget(self):
        # A query configured without limits must not inherit a caller's
        # tighter budget.
        with budget_scope(Budget(max_steps=0)):
            with budget_scope(None):
                for _ in range(10):
                    checkpoint()  # would raise if the outer budget leaked

    def test_checkpoint_charges_current_budget(self):
        with budget_scope(Budget(max_steps=2)):
            checkpoint("a")
            checkpoint("b")
            with pytest.raises(BudgetExceeded):
                checkpoint("c")

    def test_checkpoint_without_budget_is_noop(self):
        checkpoint("nothing.armed")


class TestDetectorDegradation:
    def test_step_limit_degrades_to_unknown(self):
        detector = ConflictDetector(max_steps=1)
        report = detector.read_delete(Read("a[b]/c"), Delete("a/c"))
        assert report.verdict is Verdict.UNKNOWN
        assert report.reason == "step_limit"
        assert report.degraded
        assert report.method == "budget"

    def test_deadline_degrades_to_unknown(self):
        detector = ConflictDetector(deadline_s=0.0)
        report = detector.read_delete(Read("a[b]/c"), Delete("a/c"))
        assert report.verdict is Verdict.UNKNOWN
        assert report.reason == "timeout"

    def test_update_update_degrades(self):
        detector = ConflictDetector(max_steps=1)
        report = detector.update_update(
            Insert("a/b", "<c/>"), Delete("a/b")
        )
        assert report.verdict is Verdict.UNKNOWN
        assert report.reason == "step_limit"

    def test_unbudgeted_detector_never_degrades(self):
        detector = ConflictDetector()
        report = detector.read_delete(Read("a[b]/c"), Delete("a/c"))
        assert report.reason is None
        assert not report.degraded

    def test_degraded_verdicts_are_not_cached(self):
        detector = ConflictDetector(max_steps=1)
        report = detector.read_delete(Read("a[b]/c"), Delete("a/c"))
        assert report.degraded
        assert list(detector.cached_entries()) == []
        # ... and therefore never leak into a shared verdict cache.
        cache = VerdictCache()
        assert cache.absorb_detector(detector) == 0

    def test_budget_excluded_from_fingerprint(self):
        # Degraded verdicts are never cached, so budget knobs must not
        # split the cache key space.
        assert (
            DetectorConfig(max_steps=1, deadline_s=0.5).fingerprint()
            == DetectorConfig().fingerprint()
        )

    def test_budget_counter_incremented(self):
        detector = ConflictDetector(max_steps=1)
        detector.read_delete(Read("a[b]/c"), Delete("a/c"))
        counters = detector.metrics()["counters"]
        assert counters.get("conflict.budget_exceeded{reason=step_limit}") == 1

    def test_config_round_trips_budget_knobs(self):
        config = DetectorConfig(deadline_s=2.5, max_steps=777)
        detector = ConflictDetector(config=config)
        assert detector.config.deadline_s == 2.5
        assert detector.config.max_steps == 777


class TestFaultRules:
    def test_parse_grammar(self):
        injector = faults.FaultInjector.parse(
            "worker_crash:0.25:only=poison:first,"
            "slow_decide:delay=0.2,cache_corrupt:1:mode=truncate"
        )
        crash = injector.rule("worker_crash")
        assert crash.rate == 0.25
        assert crash.only == "poison"
        assert crash.first_attempt_only
        slow = injector.rule("slow_decide")
        assert slow.rate == 1.0 and slow.delay_s == 0.2
        corrupt = injector.rule("cache_corrupt")
        assert corrupt.mode == "truncate"

    def test_parse_rejects_unknown_fault(self):
        with pytest.raises(ConflictEngineError):
            faults.FaultInjector.parse("segfault_everything")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ConflictEngineError):
            faults.FaultInjector.parse("worker_crash:1.5")

    def test_parse_rejects_unknown_option(self):
        with pytest.raises(ConflictEngineError):
            faults.FaultInjector.parse("worker_crash:1:explode")

    def test_spec_round_trips(self):
        spec = "cache_corrupt:mode=truncate,slow_decide:0.5:delay=0.2,worker_crash:0.25:only=poison:first"
        injector = faults.FaultInjector.parse(spec, seed=7)
        again = faults.FaultInjector.parse(injector.spec(), seed=7)
        assert again.spec() == injector.spec()
        for name in faults.KNOWN_FAULTS:
            assert again.rule(name) == injector.rule(name)

    def test_match_is_deterministic(self):
        a = faults.FaultInjector.parse("worker_crash:0.5", seed=42)
        b = faults.FaultInjector.parse("worker_crash:0.5", seed=42)
        keys = [f"pair-{i}" for i in range(64)]
        decisions_a = [a.match("worker_crash", k) is not None for k in keys]
        decisions_b = [b.match("worker_crash", k) is not None for k in keys]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)
        # A different seed gives a different (but equally deterministic) draw.
        c = faults.FaultInjector.parse("worker_crash:0.5", seed=43)
        assert decisions_a != [
            c.match("worker_crash", k) is not None for k in keys
        ]

    def test_salt_makes_retries_independent(self):
        injector = faults.FaultInjector.parse("worker_crash:1:first")
        assert injector.match("worker_crash", "k", salt=0) is not None
        assert injector.match("worker_crash", "k", salt=1) is None

    def test_only_filter(self):
        injector = faults.FaultInjector.parse("worker_crash:1:only=poison")
        assert injector.match("worker_crash", "has-poison-inside") is not None
        assert injector.match("worker_crash", "healthy") is None

    def test_cluster_rules_parse_and_round_trip(self):
        spec = (
            "probe_flap:0.5:only=shard1,"
            "shard_hang:1:only=shard2|gen0:delay=1.5,"
            "shard_kill:1:only=shard0|gen0|matrix"
        )
        injector = faults.FaultInjector.parse(spec, seed=3)
        kill = injector.rule("shard_kill")
        assert kill.only == "shard0|gen0|matrix"
        hang = injector.rule("shard_hang")
        assert hang.only == "shard2|gen0" and hang.delay_s == 1.5
        flap = injector.rule("probe_flap")
        assert flap.rate == 0.5
        again = faults.FaultInjector.parse(injector.spec(), seed=3)
        for name in ("probe_flap", "shard_hang", "shard_kill"):
            assert again.rule(name) == injector.rule(name)

    def test_shard_kill_targets_one_generation(self):
        injector = faults.FaultInjector.parse(
            "shard_kill:1:only=shard1|gen0"
        )
        assert injector.match(
            "shard_kill", "shard1|gen0|check|a/b|c/d"
        ) is not None
        # The restarted incarnation (gen1) no longer matches: the drill
        # converges instead of crash-looping the replacement shard.
        assert injector.match("shard_kill", "shard1|gen1|check|a/b|c/d") is None
        assert injector.match("shard_kill", "shard0|gen0|check|a/b|c/d") is None

    def test_shard_hang_injection_sleeps_without_killing(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr("time.sleep", slept.append)
        faults.install(faults.FaultInjector.parse("shard_hang:1:delay=9.5"))
        try:
            faults.inject_shard_fault("shard0|gen0|check|x")
        finally:
            faults.uninstall()
        assert slept == [9.5]

    def test_env_loading(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "slow_decide:0.5:delay=0.01")
        monkeypatch.setenv(faults.ENV_SEED, "99")
        faults.uninstall()  # force a re-read of the patched environment
        injector = faults.current()
        assert injector is not None
        assert injector.seed == 99
        assert injector.rule("slow_decide").delay_s == 0.01

    def test_no_env_means_no_injector(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_SPEC, raising=False)
        faults.uninstall()
        assert faults.current() is None
        assert faults.match("worker_crash", "anything") is None

    def test_inject_worker_fault_raises(self):
        faults.install(faults.FaultInjector.parse("worker_crash"))
        with pytest.raises(InjectedFault):
            faults.inject_worker_fault("any-key")


class TestBatchHardening:
    def test_poison_pair_quarantined_others_exact(self):
        """The issue's acceptance scenario, deterministic end to end.

        A seeded injector crashes every attempt at pairs involving the
        poison operation; the batch run must quarantine exactly those
        pairs as ``UNKNOWN`` with reason ``worker_crash`` and agree with
        the fault-free serial reference on every other pair.
        """
        ops = poison_catalogue()
        reference = reference_matrix(ops)
        faults.install(
            faults.FaultInjector.parse("worker_crash:1:only=poisonlabel", seed=5)
        )
        # Index off: the static index would (correctly) discharge some
        # poison pairs before they ever reach a worker, which is exactly
        # what tests/test_index.py pins; here we want every poison pair
        # to hit the crashing pool.
        analyzer = BatchAnalyzer(
            jobs=2, retries=1, retry_backoff_s=0.001, index=False, containment=False
        )
        matrix = analyzer.analyze(ops)
        degraded = matrix.degraded_pairs()
        assert degraded, "poison pairs should have been quarantined"
        for first, second, reason in degraded:
            assert "poison" in (first, second)
            assert reason == "worker_crash"
        assert {("poison" in (a, b)) for a, b, _ in degraded} == {True}
        for (a, b), verdict in reference.verdicts.items():
            if "poison" in (a, b):
                assert matrix.verdicts[(a, b)] is Verdict.UNKNOWN
                assert matrix.reason(a, b) == "worker_crash"
            else:
                assert matrix.verdicts[(a, b)] is verdict
                assert matrix.reason(a, b) is None
        quarantine = analyzer.quarantine
        assert all(entry["reason"] == "worker_crash" for entry in quarantine)
        assert {(e["first"], e["second"]) for e in quarantine} == {
            (a, b) for (a, b) in matrix.reasons
        }
        counters = analyzer.metrics()["counters"]
        assert counters.get("batch.chunk_crashes", 0) > 0

    def test_first_attempt_crash_converges_to_reference(self):
        """Retry salting: a crash on attempt 0 only, so retries succeed
        and the final matrix is byte-for-byte the fault-free answer."""
        ops = small_catalogue()
        reference = reference_matrix(ops)
        faults.install(faults.FaultInjector.parse("worker_crash:1:first"))
        analyzer = BatchAnalyzer(jobs=2, retries=2, retry_backoff_s=0.001)
        matrix = analyzer.analyze(ops)
        assert matrix.reasons == {}
        assert analyzer.quarantine == []
        for key, verdict in reference.verdicts.items():
            assert matrix.verdicts[key] is verdict
        counters = analyzer.metrics()["counters"]
        assert counters.get("batch.chunk_crashes", 0) > 0

    def test_worker_deadline_degrades_without_hanging(self):
        """In-worker ``Budget(deadline_s=0)`` trips every non-trivial
        decision; the pool must drain promptly with reason ``timeout``."""
        ops = small_catalogue()
        config = DetectorConfig(deadline_s=0.0)
        analyzer = BatchAnalyzer(config, jobs=2)
        start = time.monotonic()
        matrix = analyzer.analyze(ops)
        assert time.monotonic() - start < 60
        degraded = matrix.degraded_pairs()
        assert degraded
        assert all(reason == "timeout" for _, _, reason in degraded)
        # The read-read pair is decided trivially, before any budget.
        assert matrix.verdict("titles", "prices") is Verdict.NO_CONFLICT
        assert matrix.reason("titles", "prices") is None

    def test_wedged_chunk_times_out_and_pool_recovers(self):
        """``slow_decide`` past ``chunk_timeout_s``: the pool is rebuilt,
        the stalled pairs are quarantined with reason ``timeout``, and
        unaffected pairs still decide correctly.

        The healthy operations are all *linear*, so their decisions run
        the PTIME path in milliseconds — well inside the chunk timeout —
        and only the injected stall can trip it.
        """
        ops = {
            "titles": Read("bib/book/title"),
            "prices": Read("bib//price"),
            "names": Read("bib/book/author/name"),
            "trim": Delete("bib//title"),
            "poison": Delete("bib/poisonlabel/entry"),
        }
        reference = reference_matrix(ops)
        faults.install(
            faults.FaultInjector.parse(
                "slow_decide:1:only=poisonlabel:delay=2.0"
            )
        )
        analyzer = BatchAnalyzer(
            jobs=2, retries=0, chunk_timeout_s=0.75, retry_backoff_s=0.001
        )
        matrix = analyzer.analyze(ops)
        degraded = matrix.degraded_pairs()
        assert degraded
        for first, second, reason in degraded:
            assert "poison" in (first, second)
            assert reason == "timeout"
        for (a, b), verdict in reference.verdicts.items():
            if "poison" not in (a, b):
                assert matrix.verdicts[(a, b)] is verdict
        counters = analyzer.metrics()["counters"]
        assert counters.get("batch.chunk_timeouts", 0) > 0

    def test_degraded_verdicts_not_written_to_cache(self):
        ops = poison_catalogue()
        faults.install(
            faults.FaultInjector.parse("worker_crash:1:only=poisonlabel")
        )
        analyzer = BatchAnalyzer(jobs=2, retries=0, retry_backoff_s=0.001)
        matrix = analyzer.analyze(ops)
        assert matrix.reasons
        fingerprint = analyzer.config.fingerprint()
        for (a, b) in matrix.reasons:
            key = VerdictCache.pair_key(
                fingerprint, analyzer._canon[a], analyzer._canon[b]
            )
            assert analyzer.cache.get(key) is None
        # A healthy re-run (shared cache) decides the quarantined pairs.
        faults.uninstall()
        healthy = BatchAnalyzer(jobs=1, cache=analyzer.cache)
        again = healthy.analyze(ops)
        assert again.reasons == {}
        reference = reference_matrix(ops)
        for key, verdict in reference.verdicts.items():
            assert again.verdicts[key] is verdict

    def test_serial_path_records_reasons_too(self):
        ops = small_catalogue()
        analyzer = BatchAnalyzer(DetectorConfig(max_steps=1), jobs=1)
        matrix = analyzer.analyze(ops)
        degraded = matrix.degraded_pairs()
        assert degraded
        assert all(reason == "step_limit" for _, _, reason in degraded)
        assert analyzer.quarantine

    def test_negative_retries_rejected(self):
        with pytest.raises(ConflictEngineError):
            BatchAnalyzer(retries=-1)

    def test_remove_op_purges_quarantine(self):
        ops = poison_catalogue()
        faults.install(
            faults.FaultInjector.parse("worker_crash:1:only=poisonlabel")
        )
        analyzer = BatchAnalyzer(jobs=2, retries=0, retry_backoff_s=0.001)
        analyzer.analyze(ops)
        assert analyzer.quarantine
        faults.uninstall()
        matrix = analyzer.remove_op("poison")
        assert analyzer.quarantine == []
        assert matrix.reasons == {}


class TestStartMethodOverride:
    def test_spawn_regression(self, monkeypatch):
        """Force ``spawn`` workers: verdicts must match the serial
        reference with zero pool failures (operands rebuilt from their
        transported canonical strings, not inherited via fork)."""
        if "spawn" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        ops = small_catalogue()
        reference = reference_matrix(ops)
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert _preferred_context().get_start_method() == "spawn"
        analyzer = BatchAnalyzer(jobs=2)
        matrix = analyzer.analyze(ops)
        counters = analyzer.metrics()["counters"]
        assert counters.get("batch.pool_failures", 0) == 0
        for key, verdict in reference.verdicts.items():
            assert matrix.verdicts[key] is verdict

    def test_unavailable_method_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "threads-of-destiny")
        with pytest.raises(ConflictEngineError):
            _preferred_context()


class TestCacheDurability:
    def _populated_cache(self) -> VerdictCache:
        analyzer = BatchAnalyzer(jobs=1)
        analyzer.analyze(small_catalogue())
        assert len(analyzer.cache) > 2
        return analyzer.cache

    def test_save_is_atomic_and_loads_back(self, tmp_path):
        cache = self._populated_cache()
        path = tmp_path / "verdicts.json"
        cache.save(path)
        assert not (tmp_path / "verdicts.json.tmp").exists()
        loaded = VerdictCache.load(path)
        assert len(loaded) == len(cache)
        assert loaded.export() == cache.export()

    def test_truncated_snapshot_salvages_prefix(self, tmp_path):
        cache = self._populated_cache()
        path = tmp_path / "verdicts.json"
        cache.save(path)
        text = path.read_text()
        path.write_text(text[: int(len(text) * 0.7)])
        with pytest.warns(CacheCorruptWarning):
            salvaged = VerdictCache.load(path)
        assert 0 < len(salvaged) < len(cache)
        # The salvaged entries are a subset of the originals.
        original = {json.dumps(e, sort_keys=True) for e in cache.export()}
        for entry in salvaged.export():
            assert json.dumps(entry, sort_keys=True) in original
        assert (tmp_path / "verdicts.json.bak").read_text() == path.read_text()

    def test_garbage_suffix_salvages_everything(self, tmp_path):
        cache = self._populated_cache()
        path = tmp_path / "verdicts.json"
        cache.save(path)
        path.write_text(path.read_text() + "\x00not-json{{{")
        with pytest.warns(CacheCorruptWarning):
            salvaged = VerdictCache.load(path)
        assert len(salvaged) == len(cache)

    def test_strict_load_raises_typed_error(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text('{"version": 1, "entries": [{"conf')
        with pytest.raises(CacheCorrupt):
            VerdictCache.load(path, strict=True)
        assert not (tmp_path / "verdicts.json.bak").exists()

    def test_unsupported_version_is_error_even_when_corrupt(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text('{"version": 2, "entries": [{"conf')
        with pytest.raises(ConflictEngineError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                VerdictCache.load(path)

    def test_unsalvageable_snapshot_yields_empty_cache(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text("complete garbage, no structure at all")
        with pytest.warns(CacheCorruptWarning):
            salvaged = VerdictCache.load(path)
        assert len(salvaged) == 0

    def test_injected_cache_corrupt_roundtrip(self, tmp_path):
        """The CI fault: every save corrupted (garbage mode), every load
        salvages all entries, so warm-start workflows stay correct."""
        cache = self._populated_cache()
        path = tmp_path / "verdicts.json"
        faults.install(faults.FaultInjector.parse("cache_corrupt"))
        cache.save(path)
        faults.uninstall()
        with pytest.warns(CacheCorruptWarning):
            loaded = VerdictCache.load(path)
        assert len(loaded) == len(cache)

    def test_injected_truncate_mode_loses_tail(self, tmp_path):
        cache = self._populated_cache()
        path = tmp_path / "verdicts.json"
        faults.install(
            faults.FaultInjector.parse("cache_corrupt:1:mode=truncate")
        )
        cache.save(path)
        faults.uninstall()
        with pytest.warns(CacheCorruptWarning):
            loaded = VerdictCache.load(path)
        assert len(loaded) < len(cache)


class TestUnknownPropagation:
    def test_reason_flows_through_matrix_api(self):
        matrix = conflict_matrix(
            small_catalogue(), ConflictDetector(max_steps=1)
        )
        assert matrix.counts()["unknown"] >= len(matrix.reasons) > 0
        payload = matrix.to_dict()
        assert payload["stats"]["degraded"] == len(matrix.reasons)
        by_pair = {
            (entry["first"], entry["second"]): entry
            for entry in payload["verdicts"]
        }
        for pair, reason in matrix.reasons.items():
            assert by_pair[pair]["verdict"] == "unknown"
            assert by_pair[pair]["reason"] == reason
        decided = [e for e in payload["verdicts"] if e["reason"] is None]
        assert decided, "healthy verdicts should carry reason=None"

    def test_degraded_pairs_schedule_conservatively(self):
        ops = small_catalogue()
        batches = parallel_schedule(ops, ConflictDetector(max_steps=1))
        placed = {name for batch in batches for name in batch}
        assert placed == set(ops)
        # Degraded (UNKNOWN) pairs must never share a batch.
        matrix = conflict_matrix(ops, ConflictDetector(max_steps=1))
        for batch in batches:
            for i, a in enumerate(batch):
                for b in batch[i + 1:]:
                    assert matrix.verdict(a, b) is Verdict.NO_CONFLICT

    def test_matrix_reason_is_symmetric(self):
        matrix = conflict_matrix(
            small_catalogue(), ConflictDetector(max_steps=1)
        )
        (a, b), reason = next(iter(matrix.reasons.items()))
        assert matrix.reason(a, b) == reason
        assert matrix.reason(b, a) == reason
        assert matrix.reason(a, a) is None


class TestCLIResilience:
    def _write_catalogue(self, tmp_path) -> str:
        path = tmp_path / "ops.json"
        path.write_text(
            json.dumps(
                {
                    "titles": {"op": "read", "xpath": "bib/book/title"},
                    "purge": {"op": "delete", "xpath": "bib/book[author]"},
                    "restock": {
                        "op": "insert",
                        "xpath": "bib/book",
                        "xml": "<note/>",
                    },
                }
            )
        )
        return str(path)

    def test_check_degraded_exit_code(self, capsys):
        from repro.cli import main

        code = main(
            ["check", "--read", "a[b]/c", "--delete", "a/c", "--max-steps", "1"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "degraded: step_limit" in out

    def test_check_json_reason_field(self, capsys):
        from repro.cli import main

        code = main(
            [
                "check", "--read", "a[b]/c", "--delete", "a/c",
                "--timeout", "0", "--json",
            ]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unknown"
        assert payload["reason"] == "timeout"

    def test_check_healthy_reason_is_null(self, capsys):
        from repro.cli import main

        code = main(["check", "--read", "a/b", "--delete", "a/b", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["reason"] is None

    def test_matrix_degraded_exit_and_json(self, tmp_path, capsys):
        from repro.cli import main

        ops = self._write_catalogue(tmp_path)
        code = main(["matrix", "--ops", ops, "--max-steps", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 3
        assert payload["stats"]["degraded"] > 0
        assert payload["quarantine"]
        assert all(
            entry["reason"] == "step_limit" for entry in payload["quarantine"]
        )
        degraded = [e for e in payload["verdicts"] if e["reason"] is not None]
        assert degraded
        assert all(e["verdict"] == "unknown" for e in degraded)

    def test_matrix_conflict_beats_degraded_exit(self, tmp_path, capsys):
        from repro.cli import main

        ops = self._write_catalogue(tmp_path)
        # Without budgets the catalogue has a real conflict -> exit 1.
        assert main(["matrix", "--ops", ops]) == 1
        capsys.readouterr()

    def test_schedule_degraded_exit(self, tmp_path, capsys):
        from repro.cli import main

        ops = self._write_catalogue(tmp_path)
        code = main(
            ["schedule", "--ops", ops, "--max-steps", "1", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 3
        assert payload["stats"]["degraded"] > 0
        assert payload["quarantine"]

    def test_schedule_healthy_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        ops = self._write_catalogue(tmp_path)
        assert main(["schedule", "--ops", ops]) == 0
        capsys.readouterr()

    def test_matrix_retries_flag_accepted(self, tmp_path, capsys):
        from repro.cli import main

        ops = self._write_catalogue(tmp_path)
        assert main(["matrix", "--ops", ops, "--retries", "0"]) == 1
        capsys.readouterr()
