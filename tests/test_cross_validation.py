"""Integration: cross-validate the PTIME algorithms against exhaustive search.

This is the strongest correctness evidence in the suite: on randomized
small instances, Theorem 1/2's polynomial algorithms must agree with the
ground truth obtained by enumerating every candidate witness up to a bound
that is conclusive for these instance sizes (via Lemma 11).

Two one-sided checks apply at every instance:

* PTIME says CONFLICT  -> its constructed witness passes the Lemma 1 check
  (verified inside the algorithm, re-verified here);
* PTIME says NO_CONFLICT -> exhaustive search up to the Lemma 11 bound
  (capped for tractability; instances are sized so the cap >= bound where
  feasible, otherwise the exhaustive search is still a strong refutation
  attempt) finds no witness.
"""

from __future__ import annotations

import random

import pytest

from repro.conflicts.general import find_witness_exhaustive, witness_size_bound
from repro.conflicts.linear import (
    detect_read_delete_linear,
    detect_read_insert_linear,
)
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.operations.ops import Delete, Insert, Read
from repro.workloads.generators import random_linear_pattern
from repro.xml.random_trees import random_tree

ALPHABET = ("a", "b")
SEARCH_CAP = 5


def _random_read(rng: random.Random) -> Read:
    return Read(
        random_linear_pattern(
            rng.randint(1, 3), ALPHABET, p_wildcard=0.25, p_descendant=0.4, seed=rng
        )
    )


def _random_insert(rng: random.Random) -> Insert:
    pattern = random_linear_pattern(
        rng.randint(1, 2), ALPHABET, p_wildcard=0.2, p_descendant=0.3, seed=rng
    )
    subtree = random_tree(rng.randint(1, 2), ALPHABET, seed=rng)
    return Insert(pattern, subtree)


def _random_delete(rng: random.Random) -> Delete:
    pattern = random_linear_pattern(
        rng.randint(2, 3), ALPHABET, p_wildcard=0.2, p_descendant=0.3, seed=rng
    )
    return Delete(pattern)


class TestReadInsertAgreement:
    @pytest.mark.parametrize("seed", range(60))
    def test_ptime_vs_exhaustive(self, seed):
        rng = random.Random(seed)
        read = _random_read(rng)
        insert = _random_insert(rng)
        report = detect_read_insert_linear(read, insert, ConflictKind.NODE)
        cap = min(SEARCH_CAP, witness_size_bound(read, insert))
        witness = find_witness_exhaustive(
            read, insert, ConflictKind.NODE, max_size=cap
        )
        if report.verdict is Verdict.CONFLICT:
            assert is_witness(report.witness, read, insert, ConflictKind.NODE), (
                f"seed {seed}: reported witness fails Lemma 1 check"
            )
        else:
            assert witness is None, (
                f"seed {seed}: PTIME says no conflict but search found a "
                f"witness:\n{witness.sketch()}"
            )

    @pytest.mark.parametrize("seed", range(40))
    def test_exhaustive_conflicts_are_detected(self, seed):
        """If a small witness exists, PTIME must say CONFLICT."""
        rng = random.Random(seed + 7_000)
        read = _random_read(rng)
        insert = _random_insert(rng)
        witness = find_witness_exhaustive(
            read, insert, ConflictKind.NODE, max_size=4
        )
        if witness is not None:
            report = detect_read_insert_linear(read, insert, ConflictKind.NODE)
            assert report.verdict is Verdict.CONFLICT, (
                f"seed {seed}: witness exists but PTIME says no conflict:\n"
                f"{witness.sketch()}"
            )


class TestReadDeleteAgreement:
    @pytest.mark.parametrize("seed", range(60))
    def test_ptime_vs_exhaustive(self, seed):
        rng = random.Random(seed + 100_000)
        read = _random_read(rng)
        delete = _random_delete(rng)
        report = detect_read_delete_linear(read, delete, ConflictKind.NODE)
        cap = min(SEARCH_CAP, witness_size_bound(read, delete))
        witness = find_witness_exhaustive(
            read, delete, ConflictKind.NODE, max_size=cap
        )
        if report.verdict is Verdict.CONFLICT:
            assert is_witness(report.witness, read, delete, ConflictKind.NODE)
        else:
            assert witness is None, (
                f"seed {seed}: PTIME says no conflict but search found a "
                f"witness:\n{witness.sketch()}"
            )

    @pytest.mark.parametrize("seed", range(40))
    def test_exhaustive_conflicts_are_detected(self, seed):
        rng = random.Random(seed + 170_000)
        read = _random_read(rng)
        delete = _random_delete(rng)
        witness = find_witness_exhaustive(
            read, delete, ConflictKind.NODE, max_size=4
        )
        if witness is not None:
            report = detect_read_delete_linear(read, delete, ConflictKind.NODE)
            assert report.verdict is Verdict.CONFLICT, (
                f"seed {seed}: witness exists but PTIME says no conflict:\n"
                f"{witness.sketch()}"
            )


class TestTreeSemanticsAgreement:
    @pytest.mark.parametrize("seed", range(30))
    def test_tree_kind_insert(self, seed):
        rng = random.Random(seed + 300_000)
        read = _random_read(rng)
        insert = _random_insert(rng)
        report = detect_read_insert_linear(read, insert, ConflictKind.TREE)
        witness = find_witness_exhaustive(
            read, insert, ConflictKind.TREE, max_size=4
        )
        if report.verdict is Verdict.NO_CONFLICT:
            assert witness is None, f"seed {seed}"
        elif witness is not None:
            assert report.verdict is Verdict.CONFLICT, f"seed {seed}"

    @pytest.mark.parametrize("seed", range(30))
    def test_tree_kind_delete(self, seed):
        rng = random.Random(seed + 400_000)
        read = _random_read(rng)
        delete = _random_delete(rng)
        report = detect_read_delete_linear(read, delete, ConflictKind.TREE)
        witness = find_witness_exhaustive(
            read, delete, ConflictKind.TREE, max_size=4
        )
        if report.verdict is Verdict.NO_CONFLICT:
            assert witness is None, f"seed {seed}"
        elif witness is not None:
            assert report.verdict is Verdict.CONFLICT, f"seed {seed}"


class TestValueSemanticsAgreement:
    @pytest.mark.parametrize("seed", range(20))
    def test_value_kind_delete(self, seed):
        """Value-conflict decisions vs exhaustive value-witness search."""
        rng = random.Random(seed + 500_000)
        read = _random_read(rng)
        delete = _random_delete(rng)
        report = detect_read_delete_linear(read, delete, ConflictKind.VALUE)
        witness = find_witness_exhaustive(
            read, delete, ConflictKind.VALUE, max_size=4
        )
        if report.verdict is Verdict.NO_CONFLICT:
            assert witness is None, f"seed {seed}"
        elif witness is not None:
            assert report.verdict is Verdict.CONFLICT, f"seed {seed}"
