"""Tests for the fault-tolerant sharded tier (:mod:`repro.cluster`).

The unit tests exercise the pure machinery — hash ring, retry policy,
health hysteresis, snapshot ownership, degraded answers — with no
processes.  The integration tests boot a real 3-shard cluster (real
``repro serve`` subprocesses behind a real router) and drive the full
supervise → kill → failover → restart → reabsorb loop, including the
deterministic ``shard_kill`` chaos drill from ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterConfig,
    ClusterRouter,
    HashRing,
    HealthProber,
    ShardHealth,
    ShardSupervisor,
    is_degraded,
)
from repro.conflicts.batch import VerdictCache
from repro.conflicts.detector import ConflictDetector
from repro.errors import CacheShardMismatch, ClusterError
from repro.operations.ops import Delete, Read
from repro.resilience import faults
from repro.service import ServiceClient
from repro.service.retry import RetryPolicy, parse_retry_after

CATALOGUE = {
    "titles": {"op": "read", "xpath": "bib/book/title"},
    "restock": {"op": "insert", "xpath": "bib/book", "xml": "<restock/>"},
    "purge": {"op": "delete", "xpath": "bib/book"},
}


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------


class TestHashRing:
    def test_routing_is_deterministic_across_instances(self):
        first = HashRing([0, 1, 2])
        second = HashRing([0, 1, 2])
        for i in range(50):
            assert first.route(f"key{i}") == second.route(f"key{i}")

    def test_route_order_covers_every_shard_once(self):
        ring = HashRing([0, 1, 2, 3])
        order = ring.route_order("some-key")
        assert sorted(order) == [0, 1, 2, 3]
        assert order[0] == ring.route("some-key")

    def test_removal_moves_only_the_dead_shards_keys(self):
        ring = HashRing([0, 1, 2])
        before = {f"k{i}": ring.route(f"k{i}") for i in range(200)}
        ring.remove(1)
        for key, owner in before.items():
            if owner != 1:
                assert ring.route(key) == owner

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing([0, 1, 2], replicas=64)
        counts = {0: 0, 1: 0, 2: 0}
        for i in range(900):
            counts[ring.route(f"key-{i}")] += 1
        assert min(counts.values()) > 120  # fair share would be 300

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing([0])
        ring.add(0)
        assert len(ring) == 1
        ring.remove(7)
        ring.remove(0)
        ring.remove(0)
        assert len(ring) == 0

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.route_order("k") == []
        with pytest.raises(ClusterError, match="empty"):
            ring.route("k")


# ----------------------------------------------------------------------
# Retry policy (satellite: capped jittered exponential backoff)
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base_s=0.1, multiplier=2.0, cap_s=0.5, jitter=0.0)
        assert policy.delay_s(0) == pytest.approx(0.1)
        assert policy.delay_s(1) == pytest.approx(0.2)
        assert policy.delay_s(2) == pytest.approx(0.4)
        assert policy.delay_s(3) == pytest.approx(0.5)  # capped
        assert policy.delay_s(9) == pytest.approx(0.5)

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(base_s=0.2, jitter=0.5)
        for _ in range(100):
            delay = policy.delay_s(0)
            assert 0.1 <= delay <= 0.2

    def test_retry_after_wins_over_backoff(self):
        policy = RetryPolicy(base_s=0.01, max_retry_after_s=5.0)
        assert policy.delay_s(0, retry_after_s=2.5) == pytest.approx(2.5)

    def test_retry_after_is_capped(self):
        policy = RetryPolicy(max_retry_after_s=3.0)
        assert policy.delay_s(0, retry_after_s=600.0) == pytest.approx(3.0)

    def test_parse_retry_after(self):
        assert parse_retry_after("2") == pytest.approx(2.0)
        assert parse_retry_after("1.5") == pytest.approx(1.5)
        assert parse_retry_after(None) is None
        assert parse_retry_after("soon") is None
        assert parse_retry_after("-3") is None

    def test_validation(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ServiceError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_sleep_uses_injected_sleeper(self):
        slept: list[float] = []
        policy = RetryPolicy(base_s=0.25, jitter=0.0)
        policy.sleep(1, sleep=slept.append)
        assert slept == [pytest.approx(0.5)]

    def test_client_busy_retries_default_off(self):
        # The historical contract: a plain ServiceClient surfaces 429
        # immediately; ClusterClient opts into busy retries.
        assert ServiceClient(port=1).busy_retries == 0
        assert ClusterClient(port=1).busy_retries == 3


# ----------------------------------------------------------------------
# Health hysteresis
# ----------------------------------------------------------------------


class TestShardHealth:
    def test_flips_unhealthy_after_k_consecutive_failures(self):
        health = ShardHealth(unhealthy_after=3, healthy_after=2)
        assert health.healthy
        assert not health.record_failure()
        assert not health.record_failure()
        assert health.record_failure()  # the flip
        assert not health.healthy
        assert not health.record_failure()  # already unhealthy

    def test_success_resets_the_failure_streak(self):
        health = ShardHealth(unhealthy_after=3, healthy_after=1)
        health.record_failure()
        health.record_failure()
        health.record_success()
        health.record_failure()
        health.record_failure()
        assert health.healthy  # streak restarted: only 2 consecutive

    def test_recovery_needs_m_consecutive_successes(self):
        health = ShardHealth(unhealthy_after=1, healthy_after=2)
        health.record_failure()
        assert not health.healthy
        assert not health.record_success()
        assert health.record_success()
        assert health.healthy

    def test_reset_restores_clean_health(self):
        health = ShardHealth(unhealthy_after=1, healthy_after=5)
        health.record_failure()
        health.reset()
        assert health.healthy
        assert health.consecutive_failures == 0


class TestProbeFlapHysteresis:
    def test_flapped_probes_evict_then_recovery(self, monkeypatch):
        health = {0: ShardHealth(3, 2), 1: ShardHealth(3, 2)}
        prober = HealthProber(
            lambda: {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 1)},
            health,
            interval_s=0.1,
            timeout_s=0.1,
        )
        monkeypatch.setattr(prober, "_probe_once", lambda host, port: True)
        faults.install(faults.FaultInjector.parse("probe_flap:1:only=shard1"))
        try:
            for _ in range(3):
                prober.probe_round()
            assert health[0].healthy
            assert not health[1].healthy
        finally:
            faults.uninstall()
        prober.probe_round()
        assert not health[1].healthy  # one success is not enough
        prober.probe_round()
        assert health[1].healthy


# ----------------------------------------------------------------------
# Supervisor state machine (no processes)
# ----------------------------------------------------------------------


class TestCrashLoopBreaker:
    def make_supervisor(self, **overrides) -> ShardSupervisor:
        overrides.setdefault("shards", 1)
        overrides.setdefault("restart_backoff_base_s", 0.05)
        overrides.setdefault("restart_backoff_jitter", 0.0)
        overrides.setdefault("crash_loop_threshold", 3)
        overrides.setdefault("crash_loop_window_s", 30.0)
        overrides.setdefault("circuit_reset_s", 10.0)
        return ShardSupervisor(ClusterConfig(**overrides))

    def test_backoff_grows_then_circuit_opens(self):
        supervisor = self.make_supervisor()
        handle = supervisor._handles[0]
        supervisor._record_crash(handle, exit_code=23)
        assert handle.state == "backoff"
        first_delay = handle.restart_at - time.monotonic()
        supervisor._record_crash(handle, exit_code=23)
        second_delay = handle.restart_at - time.monotonic()
        assert second_delay > first_delay
        supervisor._record_crash(handle, exit_code=23)
        assert handle.state == "open_circuit"
        assert handle.restart_at - time.monotonic() > 5.0

    def test_slow_crashes_never_trip_the_breaker(self):
        supervisor = self.make_supervisor(crash_loop_window_s=0.05)
        handle = supervisor._handles[0]
        for _ in range(5):
            supervisor._record_crash(handle, exit_code=1)
            time.sleep(0.06)  # each crash ages out of the window
        assert handle.state == "backoff"

    def test_uptime_past_window_resets_the_backoff_curve(self):
        supervisor = self.make_supervisor(crash_loop_threshold=10)
        handle = supervisor._handles[0]
        supervisor._record_crash(handle, exit_code=1)
        supervisor._record_crash(handle, exit_code=1)
        assert handle.backoff_attempt == 2
        handle.booted_at = time.monotonic() - 60.0  # outlived the window
        supervisor._record_crash(handle, exit_code=1)
        assert handle.backoff_attempt == 1  # reset, then this crash

    def test_all_shards_dead_on_boot_raises(self, monkeypatch):
        supervisor = self.make_supervisor(boot_timeout_s=5.0)
        monkeypatch.setattr(
            supervisor, "_shard_command", lambda handle: ["/bin/false"]
        )
        with pytest.raises(ClusterError, match="finished booting"):
            supervisor.start()


# ----------------------------------------------------------------------
# Per-shard snapshot ownership (satellite 2)
# ----------------------------------------------------------------------


class TestSnapshotOwnership:
    def test_shard_snapshot_path(self, tmp_path):
        base = tmp_path / "cache.json"
        assert VerdictCache.shard_snapshot_path(base, 2) == f"{base}.shard2"

    def seeded_cache(
        self, shard_id: int | None, xpath: str = "a/b/c"
    ) -> VerdictCache:
        cache = VerdictCache(shard_id=shard_id)
        cache.merge([{
            "config": ["test"],
            "a": ["Read", xpath, ""],
            "b": ["Delete", xpath.rsplit("/", 1)[0], ""],
            "verdict": "conflict",
        }])
        return cache

    def test_save_stamps_owner_and_load_restores_it(self, tmp_path):
        path = tmp_path / "cache.json.shard1"
        self.seeded_cache(1).save(path)
        loaded = VerdictCache.load(path)
        assert loaded.shard_id == 1
        assert len(loaded) == 1

    def test_cross_shard_overwrite_is_refused(self, tmp_path):
        path = tmp_path / "cache.json.shard1"
        self.seeded_cache(1).save(path)
        with pytest.raises(CacheShardMismatch, match="shard 1"):
            self.seeded_cache(2).save(path)
        # The refused save must not have clobbered the file.
        assert VerdictCache.load(path).shard_id == 1

    def test_merge_allows_cross_shard_consolidation(self, tmp_path):
        path = tmp_path / "merged.json"
        self.seeded_cache(1).save(path)
        self.seeded_cache(2, xpath="x/y/z").save(path, merge=True)
        assert len(VerdictCache.load(path)) == 2

    def test_legacy_unowned_snapshot_never_blocks(self, tmp_path):
        path = tmp_path / "cache.json"
        self.seeded_cache(None).save(path)  # pre-cluster snapshot: no owner
        self.seeded_cache(3).save(path)  # adoption is fine
        assert VerdictCache.load(path).shard_id == 3


# ----------------------------------------------------------------------
# Router without processes: keys, degraded answers, drain semantics
# ----------------------------------------------------------------------


class _DeadSupervisor:
    """A supervisor stub with no live shards (the all-dead cluster)."""

    def endpoints(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def stop(self, **kwargs) -> None:
        pass


def make_dead_router(**overrides) -> ClusterRouter:
    overrides.setdefault("shards", 3)
    return ClusterRouter(
        ClusterConfig(**overrides), supervisor=_DeadSupervisor()
    )


class TestRoutingKey:
    def test_check_key_ignores_knobs(self):
        base = {"first": CATALOGUE["titles"], "second": CATALOGUE["purge"]}
        with_knobs = dict(base, deadline_ms=50, budget=9)
        assert ClusterRouter.routing_key("/v1/check", base) == \
            ClusterRouter.routing_key("/v1/check", with_knobs)

    def test_catalogue_key_is_stable_under_dict_order(self):
        forward = {"ops": dict(CATALOGUE)}
        backward = {"ops": dict(reversed(list(CATALOGUE.items())))}
        assert ClusterRouter.routing_key("/v1/matrix", forward) == \
            ClusterRouter.routing_key("/v1/matrix", backward)

    def test_check_and_catalogue_keys_differ(self):
        payload = {"ops": CATALOGUE}
        assert ClusterRouter.routing_key("/v1/matrix", payload) != \
            ClusterRouter.routing_key("/v1/check", payload)


class TestDegradedAnswers:
    def post(self, router: ClusterRouter, route: str, payload: dict):
        status, body, headers = router.handle(
            route, json.dumps(payload).encode()
        )
        return status, json.loads(body), headers

    def test_check_degrades_to_unknown_not_5xx(self):
        router = make_dead_router()
        status, payload, headers = self.post(
            router,
            "/v1/check",
            {"first": CATALOGUE["titles"], "second": CATALOGUE["purge"]},
        )
        assert status == 200
        assert payload["verdict"] == "unknown"
        assert payload["method"] == "degraded"
        assert payload["reason"] == "no_live_shard"
        assert is_degraded(payload)
        assert headers["X-Request-Id"]

    def test_matrix_degrades_to_all_pairs_unknown(self):
        router = make_dead_router()
        status, payload, _ = self.post(
            router, "/v1/matrix", {"ops": CATALOGUE}
        )
        assert status == 200
        assert is_degraded(payload)
        assert payload["names"] == sorted(CATALOGUE)
        pairs = {(v["first"], v["second"]) for v in payload["verdicts"]}
        assert len(pairs) == 6  # 3 distinct + 3 self pairs
        assert all(v["verdict"] == "unknown" for v in payload["verdicts"])

    def test_schedule_degrades_to_fully_serial(self):
        router = make_dead_router()
        status, payload, _ = self.post(
            router, "/v1/schedule", {"ops": CATALOGUE}
        )
        assert status == 200
        assert is_degraded(payload)
        assert payload["batches"] == [[name] for name in sorted(CATALOGUE)]
        assert payload["stats"]["largest_batch"] == 1

    def test_degradations_are_counted(self):
        router = make_dead_router()
        self.post(router, "/v1/check",
                  {"first": CATALOGUE["titles"], "second": CATALOGUE["purge"]})
        counters = router.registry.snapshot()["counters"]
        assert counters['cluster.degraded_total{route=/v1/check}'] == 1

    def test_malformed_body_is_400(self):
        router = make_dead_router()
        status, body, _ = router.handle("/v1/check", b"not json")
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_draining_router_says_503(self):
        router = make_dead_router()
        router._draining = True
        status, body, headers = router.handle("/v1/check", b"{}")
        assert status == 503
        assert headers["Retry-After"]

    def test_health_reports_down_when_nothing_lives(self):
        router = make_dead_router()
        health = router.health()
        assert health["status"] == "down"
        assert health["live"] == 0
        assert health["total"] == 3


# ----------------------------------------------------------------------
# Integration: a real 3-shard cluster
# ----------------------------------------------------------------------


def make_cluster(**overrides) -> ClusterRouter:
    overrides.setdefault("shards", 3)
    overrides.setdefault("workers_per_shard", 1)
    overrides.setdefault("probe_interval_s", 0.2)
    overrides.setdefault("restart_backoff_base_s", 0.1)
    overrides.setdefault("restart_backoff_jitter", 0.0)
    router = ClusterRouter(ClusterConfig(port=0, **overrides))
    router.start_background()
    return router


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cache_base = tmp_path_factory.mktemp("cluster") / "cache.json"
    router = make_cluster(cache_path=str(cache_base))
    yield router
    router.drain()


@pytest.fixture
def cluster_client(cluster):
    with ClusterClient(port=cluster.port) as client:
        yield client


class TestClusterIntegration:
    def test_healthz_reports_every_shard_live(self, cluster, cluster_client):
        health = cluster_client.healthz()
        assert health["status"] == "ok"
        assert health["live"] == health["total"] == 3
        for view in health["shards"].values():
            assert view["state"] == "live"
            assert view["healthy"] is True

    def test_check_verdict_matches_direct_detector(self, cluster_client):
        result = cluster_client.check(CATALOGUE["titles"], CATALOGUE["purge"])
        direct = ConflictDetector().read_update(
            Read("bib/book/title"), Delete("bib/book")
        )
        assert result["verdict"] == direct.verdict.value
        assert not is_degraded(result)

    def test_same_question_lands_on_the_same_warm_shard(self, cluster_client):
        first = cluster_client.check(
            {"op": "read", "xpath": "warm/route/probe"},
            {"op": "delete", "xpath": "warm/route"},
        )
        second = cluster_client.check(
            {"op": "read", "xpath": "warm/route/probe"},
            {"op": "delete", "xpath": "warm/route"},
        )
        assert first["cached"] is False
        assert second["cached"] is True  # same shard's verdict cache hit

    def test_matrix_and_schedule_route_whole_catalogues(self, cluster_client):
        matrix = cluster_client.matrix(CATALOGUE)
        assert matrix["stats"]["operations"] == 3
        assert not is_degraded(matrix)
        schedule = cluster_client.schedule(CATALOGUE)
        assert sorted(
            name for batch in schedule["batches"] for name in batch
        ) == sorted(CATALOGUE)

    def test_sigkill_fails_over_and_shard_is_reabsorbed(
        self, cluster, cluster_client
    ):
        spec_read = {"op": "read", "xpath": "kill/drill/leaf"}
        spec_del = {"op": "delete", "xpath": "kill/drill"}
        key = ClusterRouter.routing_key(
            "/v1/check", {"first": spec_read, "second": spec_del}
        )
        owner = cluster.ring.route_order(key)[0]
        generation_before = cluster.supervisor.generation(owner)
        assert cluster.supervisor.kill(owner, hard=True)
        # The very next request for the dead shard's key must fail over
        # and still produce a real verdict, not an error or a hang.
        result = cluster_client.check(spec_read, spec_del)
        assert result["verdict"] == "conflict"
        assert not is_degraded(result)
        # The supervisor restarts the shard (a new generation) and the
        # router reabsorbs it.
        assert cluster.supervisor.wait_all_live(timeout_s=30.0)
        assert cluster.supervisor.generation(owner) == generation_before + 1
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if cluster_client.healthz()["live"] == 3:
                break
            time.sleep(0.1)
        assert cluster_client.healthz()["live"] == 3
        crashes = cluster.registry.snapshot()["counters"]
        assert crashes[f"cluster.shard_crashes_total{{shard={owner}}}"] >= 1

    def test_metrics_expose_cluster_counters(self, cluster, cluster_client):
        text = cluster_client.metrics_text()
        assert "cluster_requests_total" in text
        assert "cluster_forwards_total" in text
        snapshot = cluster_client.metrics()
        assert any(
            key.startswith("cluster.requests_total")
            for key in snapshot["counters"]
        )

    def test_router_http_surface(self, cluster):
        conn = http.client.HTTPConnection("127.0.0.1", cluster.port, timeout=10)
        try:
            for method, path, status in (
                ("GET", "/v1/check", 405),
                ("POST", "/healthz", 405),
                ("GET", "/nope", 404),
            ):
                body = b"{}" if method == "POST" else None
                conn.request(method, path, body=body)
                response = conn.getresponse()
                response.read()  # drain so the keep-alive conn is reusable
                assert response.status == status
        finally:
            conn.close()


# ----------------------------------------------------------------------
# The chaos drill: deterministic shard_kill mid-matrix (the acceptance
# scenario from ISSUE/docs).
# ----------------------------------------------------------------------


class TestChaosDrill:
    def test_shard_kill_drill_converges_verdict_identical(self, tmp_path):
        # Compute the owning shard *before* booting anything: the ring is
        # a pure function of (shards, replicas), so the drill can target
        # exactly the shard that will serve the matrix.
        key = ClusterRouter.routing_key("/v1/matrix", {"ops": CATALOGUE})
        owner = HashRing(range(3)).route_order(key)[0]
        spec = f"shard_kill:1:only=shard{owner}|gen0|matrix"
        router = make_cluster(
            cache_path=str(tmp_path / "cache.json"),
            shard_env={"REPRO_FAULTS": spec},
        )
        try:
            with ClusterClient(port=router.port) as client:
                # The owning shard os._exit(23)s mid-request; the router
                # must fail over and still return the real verdicts.
                matrix = client.matrix(CATALOGUE)
                assert not is_degraded(matrix)
                assert matrix["stats"]["operations"] == 3
                assert matrix["stats"]["conflict"] >= 1
                # The supervisor restarts the killed shard; generation 1
                # no longer matches the fault rule, so the drill converges:
                # the same request to the restarted owner now succeeds.
                assert router.supervisor.wait_all_live(timeout_s=30.0)
                assert router.supervisor.generation(owner) == 1
                again = client.matrix(CATALOGUE)
                assert again["stats"] == matrix["stats"]
                assert client.healthz()["live"] == 3
                counters = router.registry.snapshot()["counters"]
                assert (
                    counters[f"cluster.failovers_total{{shard={owner}}}"] >= 1
                )
        finally:
            router.drain()

    def test_drain_writes_per_shard_snapshots(self, tmp_path):
        base = tmp_path / "cache.json"
        router = make_cluster(shards=2, cache_path=str(base))
        try:
            with ClusterClient(port=router.port) as client:
                client.check(CATALOGUE["titles"], CATALOGUE["purge"])
        finally:
            router.drain()
        written = sorted(p.name for p in tmp_path.glob("cache.json.shard*"))
        assert written  # at least the serving shard snapshotted on drain
        for path in tmp_path.glob("cache.json.shard*"):
            shard_id = int(path.name.rsplit("shard", 1)[1])
            assert VerdictCache.load(path).shard_id == shard_id
