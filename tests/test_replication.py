"""Tests for the replication scenario engine (:mod:`repro.replication`).

Covers the log/decision layer, the resolver contract (including the
couchbase-lite edge cases: local-wins, remote-wins, delete-vs-update
merge, and a resolver that raises), session topology control, the
scenario DSL, the ``repro replay`` CLI, the service decision backend,
and the headline convergence properties:

* seeded random sessions converge under every built-in resolver
  (hypothesis, honoring ``REPRO_DIFF_SEED_BASE``);
* for ``last-writer-wins`` the outcome is invariant under sync order
  and under which replica initiates each sync (the resolver is a pure
  function of the pair);
* the acceptance scenario — 4 replicas, >= 20% certified-conflicting
  pairs — converges identically across two same-seed runs, both
  in-process and against a live service.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.conflicts.semantics import ConflictKind, Verdict
from repro.errors import ConvergenceError, ReplicationError, ScenarioError
from repro.replication import (
    BUILTIN_RESOLVERS,
    ConflictPair,
    Decision,
    InProcessBackend,
    LoggedOp,
    ReplicationSession,
    ServiceBackend,
    concurrent,
    last_writer_wins,
    load_scenario,
    merge_decisions,
    pair_key,
    resolver_by_name,
    run_scenario,
    scenario_from_dict,
    scenario_from_json,
)
from repro.workloads import random_replication_scenario
from repro.xml.isomorphism import canonical_form

SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED_BASE", "0"))

DOC = "<doc><hot><item>0</item></hot><p0/><p1/><p2/><p3/></doc>"
SMOKE_SCENARIO = os.path.join(
    os.path.dirname(__file__), "..", "examples", "scenarios",
    "replication_smoke.json",
)

#: A certified-conflicting pair: the parent insert creates matches for
#: the child delete's pattern (the engine exhibits a witness).
HOT_PARENT = {"op": "insert", "xpath": "doc/hot", "xml": "<item><u/></item>"}
HOT_CHILD = {"op": "delete", "xpath": "doc/hot/item"}
PRIVATE_0 = {"op": "insert", "xpath": "doc/p0", "xml": "<u/>"}
PRIVATE_2 = {"op": "insert", "xpath": "doc/p2", "xml": "<v/>"}


def make_session(resolver="last-writer-wins", replicas=4, **kwargs):
    return ReplicationSession(replicas, DOC, resolver=resolver, **kwargs)


def forms(session):
    return set(session.canonical_forms().values())


# ----------------------------------------------------------------------
# Log layer
# ----------------------------------------------------------------------

class TestLog:
    def test_edit_stamps_and_applies(self):
        session = make_session()
        logged = session.edit(1, PRIVATE_0)
        assert logged.op_id == "r1.1"
        assert logged.origin == 1 and logged.seq == 1 and logged.lamport == 1
        assert logged.vc == ((1, 1),)
        assert "p0" in canonical_form(session.replicas[1].tree)

    def test_causal_edits_are_not_concurrent(self):
        session = make_session()
        first = session.edit(0, PRIVATE_0)
        session.sync(0, 1)
        second = session.edit(1, PRIVATE_2)
        assert second.knows(first)
        assert not concurrent(first, second)

    def test_unsynced_edits_are_concurrent(self):
        session = make_session()
        first = session.edit(0, PRIVATE_0)
        second = session.edit(1, PRIVATE_2)
        assert concurrent(first, second)

    def test_pair_key_is_order_insensitive(self):
        session = make_session()
        a = session.edit(0, PRIVATE_0)
        b = session.edit(1, PRIVATE_2)
        assert pair_key(a, b) == pair_key(b, a) == ("r0.1", "r1.1")

    def test_merge_decisions_is_deterministic_and_symmetric(self):
        mine = Decision(("r0.1", "r1.1"), "local", ("r1.1",), (), 0, "local-wins")
        theirs = Decision(("r0.1", "r1.1"), "remote", ("r0.1",), (), 1, "local-wins")
        winner_ab = merge_decisions(mine, theirs)
        winner_ba = merge_decisions(theirs, mine)
        assert winner_ab == winner_ba == mine  # smaller decided_by wins

    def test_merge_decisions_buries_losing_replacements(self):
        replacement = LoggedOp(
            op_id="m0(r0.1,r1.1)", origin=-1, seq=0, lamport=1,
            vc=((0, 1), (1, 1)), spec=dict(PRIVATE_0),
        )
        keeper = Decision(("r0.1", "r1.1"), "local", ("r1.1",), (), 0, "local-wins")
        merger = Decision(
            ("r0.1", "r1.1"), "merged", ("r0.1", "r1.1"), (replacement,),
            1, "custom",
        )
        merged = merge_decisions(keeper, merger)
        assert merged.outcome == "local"
        assert "m0(r0.1,r1.1)" in merged.dropped  # orphaned replacement dies
        assert "r0.1" not in merged.dropped       # the kept side stays kept

    def test_round_trips_to_dict(self):
        session = make_session()
        logged = session.edit(0, PRIVATE_0)
        payload = logged.to_dict()
        assert payload["op_id"] == "r0.1" and payload["spec"]["op"] == "insert"
        decision = Decision(("a", "b"), "unresolved", ("a", "b"), (), 2, "x", "boom")
        assert decision.to_dict()["note"] == "boom"


# ----------------------------------------------------------------------
# Resolvers (SNIPPETS.md / couchbase-lite edge cases)
# ----------------------------------------------------------------------

def _conflict_pair(session_resolver="last-writer-wins"):
    """A real certified conflict captured via a probe resolver."""
    captured = []

    def probe(conflict):
        captured.append(conflict)
        return last_writer_wins(conflict)

    session = make_session(resolver=probe, replicas=2)
    session.edit(0, HOT_PARENT)
    session.edit(1, HOT_CHILD)
    session.sync(0, 1)
    assert captured, "expected the hot pair to certify as a conflict"
    return captured[0]


class TestResolvers:
    def test_resolver_by_name_and_aliases(self):
        assert resolver_by_name("local_wins") is BUILTIN_RESOLVERS["local-wins"]
        fn = lambda conflict: "local"  # noqa: E731
        assert resolver_by_name(fn) is fn
        with pytest.raises(ReplicationError, match="unknown resolver"):
            resolver_by_name("nope")

    def test_conflict_pair_exposes_delete_vs_update(self):
        conflict = _conflict_pair()
        assert conflict.verdict is Verdict.CONFLICT
        assert conflict.is_delete_vs_update
        assert conflict.deleter.kind == "delete"
        assert conflict.updater.kind == "insert"

    def test_local_wins_keeps_initiator_side(self):
        session = make_session(resolver="local-wins", replicas=2)
        local = session.edit(0, HOT_PARENT)
        remote = session.edit(1, HOT_CHILD)
        session.sync(0, 1)  # replica 0 initiates => its op is local
        decision = session.replicas[0].decisions[pair_key(local, remote)]
        assert decision.outcome == "local"
        assert decision.dropped == (remote.op_id,)
        assert session.converged()

    def test_remote_wins_keeps_incoming_side(self):
        session = make_session(resolver="remote-wins", replicas=2)
        local = session.edit(0, HOT_PARENT)
        session.edit(1, HOT_CHILD)
        session.sync(0, 1)
        decision = next(iter(session.replicas[0].decisions.values()))
        assert decision.outcome == "remote"
        assert decision.dropped == (local.op_id,)
        assert session.converged()

    def test_last_writer_wins_is_a_pure_function_of_the_pair(self):
        conflict = _conflict_pair()
        flipped = ConflictPair(
            local=conflict.remote,
            remote=conflict.local,
            verdict=conflict.verdict,
            kind=conflict.kind,
            local_replica=conflict.remote_replica,
            remote_replica=conflict.local_replica,
        )
        straight = last_writer_wins(conflict)
        mirrored = last_writer_wins(flipped)
        # Same winner op regardless of which side is "local".
        winner = conflict.local if straight == "local" else conflict.remote
        mirrored_winner = flipped.local if mirrored == "local" else flipped.remote
        assert winner.op_id == mirrored_winner.op_id

    def test_delete_vs_update_merge_resolver(self):
        def merge(conflict):
            assert conflict.is_delete_vs_update
            return {"op": "insert", "xpath": "doc/hot", "xml": "<disputed/>"}

        session = make_session(resolver=merge, replicas=3)
        session.edit(0, HOT_PARENT)
        session.edit(1, HOT_CHILD)
        session.quiesce()
        assert session.converged()
        decision = next(iter(session.replicas[2].decisions.values()))
        assert decision.outcome == "merged"
        assert len(decision.added) == 1
        assert decision.added[0].origin == -1
        for rid in range(3):
            assert "disputed" in canonical_form(session.replicas[rid].tree)

    def test_raising_resolver_degrades_to_unresolved(self):
        def broken(conflict):
            raise RuntimeError("resolver exploded")

        session = make_session(resolver=broken, replicas=3)
        a = session.edit(0, HOT_PARENT)
        b = session.edit(1, HOT_CHILD)
        session.quiesce()  # must not raise
        assert session.converged()  # and must not diverge silently
        unresolved = session.unresolved()
        assert [d.pair for d in unresolved] == [pair_key(a, b)]
        assert "resolver exploded" in unresolved[0].note
        # Both sides conservatively withheld from every replica's replay.
        for rep in session.replicas:
            live = {op.op_id for op in rep.live_ops()}
            assert a.op_id not in live and b.op_id not in live
        counters = session.registry.snapshot()["counters"]
        assert counters["replication.resolver_errors"] == 1

    def test_resolver_returning_garbage_degrades(self):
        session = make_session(resolver=lambda conflict: 42, replicas=2)
        session.edit(0, HOT_PARENT)
        session.edit(1, HOT_CHILD)
        session.sync(0, 1)
        assert session.converged()
        assert session.unresolved()


# ----------------------------------------------------------------------
# Session semantics and topology
# ----------------------------------------------------------------------

class TestSession:
    def test_rejects_read_ops_and_bad_replicas(self):
        session = make_session()
        with pytest.raises(ReplicationError, match="insert/delete"):
            session.edit(0, {"op": "read", "xpath": "doc/hot"})
        with pytest.raises(ReplicationError, match="no replica"):
            session.edit(9, PRIVATE_0)
        with pytest.raises(ReplicationError, match="at least one replica"):
            ReplicationSession(0, DOC)

    def test_unknown_policy_validation(self):
        with pytest.raises(ReplicationError, match="unknown_policy"):
            ReplicationSession(2, DOC, unknown_policy="maybe")

    def test_non_conflicting_edits_all_materialize(self):
        session = make_session(replicas=3)
        session.edit(0, PRIVATE_0)
        session.edit(2, PRIVATE_2)
        session.quiesce()
        assert session.converged()
        form = forms(session).pop()
        assert "u" in form and "v" in form  # both payloads survived
        assert session.lost_updates() == []

    def test_unknown_policy_conflict_routes_unproven_pairs(self):
        session = make_session(replicas=2, unknown_policy="conflict")
        session.edit(0, PRIVATE_0)
        session.edit(1, PRIVATE_2)
        session.sync(0, 1)
        assert session.converged()
        # The unproven private pair went to the resolver instead.
        assert session.replicas[0].decisions
        counters = session.registry.snapshot()["counters"]
        assert "replication.pairs_unproven" not in counters

    def test_partition_blocks_and_heal_restores(self):
        session = make_session(replicas=4)
        session.partition([[0, 1], [2, 3]])
        assert session.sync(0, 2).skipped == "partitioned"
        assert session.sync(0, 1).skipped is None
        session.heal()
        assert session.sync(0, 2).skipped is None
        with pytest.raises(ReplicationError, match="two partition groups"):
            session.partition([[0, 1], [1, 2]])

    def test_crash_blocks_edit_and_sync_until_recover(self):
        session = make_session()
        session.crash(1)
        with pytest.raises(ReplicationError, match="down"):
            session.edit(1, PRIVATE_0)
        assert session.sync(0, 1).skipped == "down"
        session.edit(0, PRIVATE_0)
        session.recover(1)
        session.quiesce()
        assert session.converged()
        assert "u" in canonical_form(session.replicas[1].tree)

    def test_independent_resolutions_converge_after_heal(self):
        # local-wins is asymmetric: under a partition, both islands can
        # rule on the same pair differently once they learn of it; the
        # deterministic decision merge must still converge everyone.
        session = make_session(resolver="local-wins", replicas=4)
        session.edit(0, HOT_PARENT)
        session.edit(2, HOT_CHILD)
        session.partition([[0, 2], [1, 3]])
        session.sync(0, 2)   # island one classifies and resolves
        session.heal()
        session.quiesce()
        assert session.converged()
        rulings = {
            rep.decisions[("r0.1", "r2.1")] for rep in session.replicas
        }
        assert len(rulings) == 1  # every replica holds the same decision

    def test_quiesce_bound_is_loud(self):
        session = make_session(replicas=2)
        with pytest.raises(ReplicationError, match="did not quiesce"):
            session.quiesce(max_rounds=0)


# ----------------------------------------------------------------------
# Scenario DSL
# ----------------------------------------------------------------------

class TestScenarioValidation:
    def test_unknown_step(self):
        with pytest.raises(ScenarioError, match="unknown step"):
            scenario_from_dict(
                {"replicas": 2, "doc": "<d/>", "steps": [{"step": "explode"}]}
            )

    def test_missing_fields_and_bad_types(self):
        with pytest.raises(ScenarioError, match="missing required field"):
            scenario_from_dict({"replicas": 2, "doc": "<d/>"})
        with pytest.raises(ScenarioError, match="must be int"):
            scenario_from_dict({"replicas": "two", "doc": "<d/>", "steps": []})
        with pytest.raises(ScenarioError, match="out of range"):
            scenario_from_dict(
                {
                    "replicas": 2,
                    "doc": "<d/>",
                    "steps": [{"step": "crash", "replica": 5}],
                }
            )

    def test_sync_endpoint_rules(self):
        base = {"replicas": 3, "doc": "<d/>"}
        with pytest.raises(ScenarioError, match="both endpoints"):
            scenario_from_dict({**base, "steps": [{"step": "sync", "a": 0}]})
        with pytest.raises(ScenarioError, match="must differ"):
            scenario_from_dict(
                {**base, "steps": [{"step": "sync", "a": 1, "b": 1}]}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown field"):
            scenario_from_dict(
                {"replicas": 2, "doc": "<d/>", "steps": [], "extra": 1}
            )
        with pytest.raises(ScenarioError, match="unknown field"):
            scenario_from_dict(
                {
                    "replicas": 2,
                    "doc": "<d/>",
                    "steps": [{"step": "heal", "bogus": 1}],
                }
            )

    def test_bad_json_text(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            scenario_from_json("{nope")


class TestScenarioRun:
    def test_canned_smoke_scenario(self):
        result = run_scenario(load_scenario(SMOKE_SCENARIO))
        assert result.converged
        assert result.error is None
        assert result.lost_updates == []
        assert result.pairs_classified > 0
        rate = result.pairs_conflicting / result.pairs_classified
        assert rate >= 0.20  # the acceptance bar
        payload = result.to_dict()
        assert payload["verdict_source"] == "in-process"
        assert json.dumps(payload)  # JSON-serializable throughout

    def test_resolver_override(self):
        scenario = load_scenario(SMOKE_SCENARIO)
        result = run_scenario(scenario, resolver="local-wins")
        assert result.converged and result.resolver == "local-wins"

    def test_mid_scenario_divergence_is_loud(self):
        # An assert_converged forbidden to quiesce, while a partition is
        # still up and the islands have diverged, must raise.
        scenario = scenario_from_dict(
            {
                "replicas": 2,
                "doc": DOC,
                "steps": [
                    {"step": "partition", "groups": [[0], [1]]},
                    {"step": "edit", "replica": 0, "op": PRIVATE_0},
                    {"step": "assert_converged", "quiesce": False},
                ],
            }
        )
        with pytest.raises(ConvergenceError, match="diverged"):
            run_scenario(scenario)
        result = run_scenario(scenario, strict=False)
        assert not result.converged and result.error is not None


class TestReplayCLI:
    def test_replay_human_output(self, capsys):
        code = cli_main(["replay", SMOKE_SCENARIO])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out and "resolutions" in out

    def test_replay_json_output(self, capsys):
        code = cli_main(["replay", SMOKE_SCENARIO, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["converged"] is True
        assert payload["lost_updates"] == []
        assert payload["pairs_conflicting"] >= 1

    def test_replay_missing_file_is_usage_error(self, capsys):
        assert cli_main(["replay", "/nonexistent.json"]) == 64

    def test_replay_diverged_exits_one(self, tmp_path, capsys):
        scenario = {
            "replicas": 2,
            "doc": "<d><p0/><p1/></d>",
            "steps": [
                {"step": "partition", "groups": [[0], [1]]},
                {"step": "edit", "replica": 0,
                 "op": {"op": "insert", "xpath": "d/p0", "xml": "<u/>"}},
                {"step": "assert_converged", "quiesce": False},
            ],
        }
        path = tmp_path / "diverge.json"
        path.write_text(json.dumps(scenario))
        assert cli_main(["replay", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["converged"] is False


# ----------------------------------------------------------------------
# Convergence properties
# ----------------------------------------------------------------------

RESOLVER_NAMES = sorted(BUILTIN_RESOLVERS)


class TestConvergenceProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        resolver=st.sampled_from(RESOLVER_NAMES),
        replicas=st.integers(min_value=2, max_value=4),
        conflict_rate=st.sampled_from([0.0, 0.3, 0.8]),
        partition=st.booleans(),
    )
    def test_random_sessions_converge(
        self, seed, resolver, replicas, conflict_rate, partition
    ):
        scenario = random_replication_scenario(
            replicas=replicas,
            edits=10,
            conflict_rate=conflict_rate,
            seed=SEED_BASE + seed,
            resolver=resolver,
            bursts=2,
            partition=partition,
        )
        result = run_scenario(scenario)
        assert result.converged
        assert result.lost_updates == []
        assert result.error is None

    @pytest.mark.parametrize("resolver", RESOLVER_NAMES)
    def test_same_seed_runs_are_identical(self, resolver):
        scenario = random_replication_scenario(
            replicas=4, edits=16, conflict_rate=0.5,
            seed=SEED_BASE + 99, resolver=resolver,
        )
        first = run_scenario(scenario).to_dict()
        second = run_scenario(scenario).to_dict()
        for payload in (first, second):
            payload.pop("sync_ms")  # wall-clock, legitimately varies
        assert first == second

    def _lww_outcome(self, schedule):
        session = make_session(resolver="last-writer-wins", replicas=3)
        session.edit(0, HOT_PARENT)
        session.edit(1, HOT_CHILD)
        session.edit(2, PRIVATE_2)
        for a, b in schedule:
            session.sync(a, b)
        session.quiesce()
        assert session.converged()
        return forms(session).pop()

    def test_lww_is_sync_order_invariant(self):
        ordered = self._lww_outcome([(0, 1), (0, 2), (1, 2)])
        reversed_order = self._lww_outcome([(1, 2), (0, 2), (0, 1)])
        assert ordered == reversed_order

    def test_lww_is_initiator_invariant(self):
        # Which replica plays "local" must not change the outcome.
        straight = self._lww_outcome([(0, 1), (0, 2), (1, 2)])
        flipped = self._lww_outcome([(1, 0), (2, 0), (2, 1)])
        assert straight == flipped


# ----------------------------------------------------------------------
# Service decision backend (live in-process service)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def live_service():
    from repro.service import ConflictService, ServiceConfig

    service = ConflictService(ServiceConfig(port=0, workers=2))
    service.start_background()
    yield service
    service.drain(snapshot=False)


class TestServiceBackend:
    def test_acceptance_scenario_both_backends_agree(self, live_service):
        """The ISSUE acceptance criterion, end to end.

        A seeded 4-replica scenario with >= 20% certified-conflicting
        pairs converges under every built-in resolver, identically
        across two same-seed runs, in-process and via a live service.
        """
        scenario = load_scenario(SMOKE_SCENARIO)
        for resolver in RESOLVER_NAMES:
            in_process = run_scenario(
                scenario, resolver=resolver, backend=InProcessBackend()
            )
            backend = ServiceBackend(port=live_service.port)
            try:
                via_service = run_scenario(
                    scenario, resolver=resolver, backend=backend
                )
            finally:
                backend.close()
            for result in (in_process, via_service):
                assert result.converged, resolver
                assert result.lost_updates == []
                rate = result.pairs_conflicting / result.pairs_classified
                assert rate >= 0.20
            assert in_process.pairs_conflicting == via_service.pairs_conflicting
            assert via_service.verdict_source == "service"
            # Determinism across same-seed service-backed runs too.
            backend = ServiceBackend(port=live_service.port)
            try:
                again = run_scenario(scenario, resolver=resolver, backend=backend)
            finally:
                backend.close()
            a, b = via_service.to_dict(), again.to_dict()
            a.pop("sync_ms"), b.pop("sync_ms")
            assert a == b

    def test_backend_requires_endpoint(self):
        with pytest.raises(ValueError, match="client or a port"):
            ServiceBackend()
