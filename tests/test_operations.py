"""Unit tests for the update operations (:mod:`repro.operations.ops`)."""

from __future__ import annotations

import pytest

from repro.errors import OperationError
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.xpath import parse_xpath
from repro.xml.parser import parse
from repro.xml.tree import build_tree


class TestRead:
    def test_read_returns_node_ids(self):
        t = build_tree(("a", "b", "b"))
        result = Read("a/b").apply(t)
        assert result == set(t.children(t.root))

    def test_read_accepts_pattern_object(self):
        t = build_tree(("a", "b"))
        assert Read(parse_xpath("a/b")).apply(t) == {t.children(t.root)[0]}

    def test_read_subtrees(self):
        t = build_tree(("a", ("b", "c")))
        subtrees = Read("a/b").apply_subtrees(t)
        assert len(subtrees) == 1
        assert subtrees[0].size == 2

    def test_repr_shows_xpath(self):
        assert "a/b" in repr(Read("a/b"))


class TestInsert:
    def test_insert_at_each_point(self):
        t = build_tree(("a", "b", "b"))
        result = Insert("a/b", "<x/>").apply(t)
        assert len(result.points) == 2
        assert len(result.affected) == 2
        for b in result.points:
            labels = [result.tree.label(c) for c in result.tree.children(b)]
            assert labels == ["x"]

    def test_insert_copies_are_disjoint(self):
        t = build_tree(("a", "b", "b"))
        result = Insert("a/b", "<x><y/></x>").apply(t)
        assert len(result.affected) == 4  # two copies of a 2-node tree

    def test_insert_no_match_is_identity(self):
        t = build_tree(("a", "b"))
        result = Insert("a/z", "<x/>").apply(t)
        assert result.points == frozenset()
        assert result.tree.equivalent(t)

    def test_pure_apply_leaves_original_untouched(self):
        t = build_tree(("a", "b"))
        before = t.copy()
        Insert("a/b", "<x/>").apply(t)
        assert t.equivalent(before)

    def test_apply_in_place_mutates(self):
        t = build_tree(("a", "b"))
        Insert("a/b", "<x/>").apply_in_place(t)
        assert t.size == 3

    def test_ids_preserved_across_pure_apply(self):
        t = build_tree(("a", "b"))
        b = t.children(t.root)[0]
        result = Insert("a/b", "<x/>").apply(t)
        assert b in result.tree
        assert result.tree.label(b) == "b"

    def test_dirty_set_is_upward_closure_of_points(self):
        t = build_tree(("a", ("b", "c")))
        b = t.children(t.root)[0]
        c = t.children(b)[0]
        result = Insert("a/b/c", "<x/>").apply(t)
        assert result.dirty == frozenset({c, b, t.root})

    def test_insert_subtree_parsed_from_text(self):
        t = build_tree(("a", "b"))
        result = Insert("a/b", "<r><s/></r>").apply(t)
        b = t.children(t.root)[0]
        (grafted,) = result.tree.children(b)
        assert result.tree.label(grafted) == "r"

    def test_insertion_points_computed_before_mutation(self):
        """Inserting nodes that themselves match must not cascade."""
        t = build_tree(("a", "b"))
        result = Insert("a//b", "<b/>").apply(t)
        # Only the original b is a point; the inserted b is not re-matched.
        assert len(result.points) == 1
        assert len(result.affected) == 1


class TestDelete:
    def test_delete_removes_subtrees(self):
        t = build_tree(("a", ("b", "c", "d"), "e"))
        result = Delete("a/b").apply(t)
        assert result.tree.size == 2
        assert len(result.affected) == 3

    def test_delete_root_pattern_rejected(self):
        with pytest.raises(OperationError):
            Delete("a")

    def test_nested_points_deleted_once(self):
        t = build_tree(("a", ("b", ("b", "c"))))
        result = Delete("a//b").apply(t)
        assert result.tree.size == 1
        assert len(result.points) == 2  # both bs selected
        result.tree.validate()

    def test_delete_no_match_is_identity(self):
        t = build_tree(("a", "b"))
        result = Delete("a/z").apply(t)
        assert result.tree.equivalent(t)

    def test_dirty_set_contains_parents_of_deletions(self):
        t = build_tree(("a", ("b", "c")))
        b = t.children(t.root)[0]
        result = Delete("a/b/c").apply(t)
        assert result.dirty == frozenset({b, t.root})

    def test_pure_apply_preserves_original(self):
        t = build_tree(("a", "b"))
        before = t.copy()
        Delete("a/b").apply(t)
        assert t.equivalent(before)

    def test_value_test_pattern(self, figure1_tree):
        """Figure 1 workload: delete low-stock books."""
        result = Delete("bib/book[.//quantity < 10]").apply(figure1_tree)
        assert len(result.points) == 1
        remaining_books = [
            n
            for n in result.tree.nodes()
            if result.tree.label(n) == "book"
        ]
        assert len(remaining_books) == 1


class TestPaperIntroInsert:
    def test_restock_example(self, figure1_tree):
        """``insert //book[.//quantity < 10], <restock/>`` from Section 1."""
        insert = Insert("//book[.//quantity < 10]", "<restock/>")
        result = insert.apply(figure1_tree)
        assert len(result.points) == 1
        (point,) = result.points
        labels = {result.tree.label(c) for c in result.tree.children(point)}
        assert "restock" in labels
        # The healthy book is untouched.
        books = [
            n for n in result.tree.nodes() if result.tree.label(n) == "book"
        ]
        untouched = [b for b in books if b not in result.points]
        assert len(untouched) == 1
        other_labels = {
            result.tree.label(c) for c in result.tree.children(untouched[0])
        }
        assert "restock" not in other_labels
