"""Unit tests for pattern containment (:mod:`repro.patterns.containment`).

Cross-validates three deciders on randomized instances: the exact
canonical-model test, the sound homomorphism test, and a brute-force oracle
over enumerated small trees.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SearchBudgetExceeded
from repro.patterns.containment import (
    canonical_models,
    contains,
    contains_bruteforce,
    homomorphism_exists,
    non_containment_witness,
)
from repro.patterns.embedding import embeds
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import containment_pair


class TestContainsKnownCases:
    @pytest.mark.parametrize(
        "p,q,expected",
        [
            ("a/b", "a//b", True),
            ("a//b", "a/b", False),
            ("a/b", "a/*", True),
            ("a/*", "a/b", False),
            ("a/b/c", "a//c", True),
            ("a//c", "a/b/c", False),
            ("a[b][c]", "a[b]", True),
            ("a[b]", "a[b][c]", False),
            ("a/b", "a", True),
            ("a", "b", False),
            ("a//b//c", "a//c", True),
            ("a/*/*", "a//*", True),
            ("a//*", "a/*/*", False),
            ("a[b/c]", "a[b]", True),
            ("a[.//c]", "a[c]", False),
            ("a[c]", "a[.//c]", True),
            ("a/b", "a/b", True),
            ("*", "*", True),
            ("a", "*", True),
            ("*", "a", False),
        ],
    )
    def test_cases(self, p, q, expected):
        assert contains(parse_xpath(p), parse_xpath(q)) is expected

    def test_miklau_suciu_star_interaction(self):
        """The classic subtlety: // with * interacting.

        ``a/*//b ⊆ a//*/b``?  Both require b at depth >= 3 below... check
        against brute force rather than trusting intuition.
        """
        p = parse_xpath("a/*//b")
        q = parse_xpath("a//*/b")
        assert contains(p, q) == contains_bruteforce(p, q, max_size=5)

    def test_non_containment_witness_is_separating(self):
        p, q = parse_xpath("a//b"), parse_xpath("a/b")
        witness = non_containment_witness(p, q)
        assert witness is not None
        assert embeds(p, witness) and not embeds(q, witness)

    def test_containment_has_no_witness(self):
        assert non_containment_witness(parse_xpath("a/b"), parse_xpath("a//b")) is None


class TestCanonicalModels:
    def test_pattern_embeds_in_all_its_models(self):
        p = parse_xpath("a//b[.//c]/d")
        for model in canonical_models(p, max_gap=2):
            assert embeds(p, model)

    def test_model_count(self):
        p = parse_xpath("a//b//c")  # two descendant edges
        assert len(canonical_models(p, max_gap=2)) == 9

    def test_no_descendant_edges_single_model(self):
        assert len(canonical_models(parse_xpath("a/b[c]"), max_gap=3)) == 1

    def test_budget_exceeded(self):
        p = parse_xpath("a//b//c//d//e//f//g")
        with pytest.raises(SearchBudgetExceeded):
            contains(p, parse_xpath("a/*/*//z"), model_budget=10)


class TestHomomorphismSoundness:
    @pytest.mark.parametrize(
        "p,q",
        [
            ("a/b", "a//b"),
            ("a/b/c", "a//c"),
            ("a[b][c]", "a[b]"),
            ("a/b", "a/*"),
        ],
    )
    def test_hom_implies_containment(self, p, q):
        """hom(q -> p) implies p ⊆ q; verify both facts on known pairs."""
        pp, qq = parse_xpath(p), parse_xpath(q)
        assert homomorphism_exists(qq, pp)
        assert contains(pp, qq)

    def test_hom_absent_on_noncontainment(self):
        assert not homomorphism_exists(parse_xpath("a/b"), parse_xpath("a//b"))


class TestRandomizedCrossValidation:
    @pytest.mark.parametrize("seed", range(40))
    def test_exact_matches_bruteforce(self, seed):
        """contains() must agree with the enumeration oracle.

        Instances are kept tiny so the brute-force bound (5 nodes) is
        conclusive relative to the canonical-model sizes involved.
        """
        rng = random.Random(seed)
        p, q = containment_pair(rng.randint(1, 3), ("a", "b"), seed=rng)
        exact = contains(p, q)
        brute = contains_bruteforce(p, q, max_size=5)
        if exact:
            assert brute, f"seed {seed}: exact says contained, brute found counterexample"
        else:
            witness = non_containment_witness(p, q)
            assert witness is not None
            assert embeds(p, witness) and not embeds(q, witness), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(40))
    def test_hom_soundness_random(self, seed):
        rng = random.Random(seed + 500)
        p, q = containment_pair(rng.randint(1, 4), ("a", "b", "c"), seed=rng)
        if homomorphism_exists(q, p):
            assert contains(p, q), f"seed {seed}: hom exists but not contained"

    @pytest.mark.parametrize("seed", range(20))
    def test_generalization_pairs_always_contained(self, seed):
        rng = random.Random(seed + 900)
        p, q = containment_pair(
            rng.randint(2, 4), ("a", "b"), seed=rng, related_bias=1.0
        )
        assert contains(p, q), f"seed {seed}: generalization must contain"
