"""Exact value-test handling in linear conflict detection.

Value tests (``quantity < 10``) are *existential* over text children, so
when detecting conflicts — an existential question over documents — they
never constrain the witness we construct; they only constrain embeddings
into the **fixed** inserted tree ``X``.  These tests pin down both sides:

* test-incompatible ``X`` content must turn a would-be conflict into
  NO_CONFLICT (the old stripped analysis would have reported a spurious
  conflict here);
* tests on witness-side nodes must not block detection (the witness is
  decorated with satisfying text children, and re-verified against the
  original, test-carrying operations).
"""

from __future__ import annotations

import pytest

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.pattern import Axis, TreePattern, ValueTest


def _read_with_test(op: str, value: float) -> Read:
    """The linear read ``* // q[test]`` with the test on the spine leaf."""
    pattern = TreePattern("*")
    q = pattern.add_child(pattern.root, "q", Axis.DESCENDANT)
    pattern.set_value_test(q, ValueTest(op, value))
    pattern.set_output(q)
    return Read(pattern)


class TestInsertXRespectsTests:
    def test_satisfying_x_conflicts(self):
        read = _read_with_test("<", 10)
        insert = Insert("*/b", "<q>5</q>")
        report = ConflictDetector().read_insert(read, insert)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, insert, ConflictKind.NODE)

    def test_violating_x_does_not_conflict(self):
        """The stripped analysis would flag this; the exact one must not."""
        read = _read_with_test("<", 10)
        insert = Insert("*/b", "<q>50</q>")
        report = ConflictDetector().read_insert(read, insert)
        assert report.verdict is Verdict.NO_CONFLICT
        assert not report.notes  # no over-approximation note: it's exact

    def test_textless_x_does_not_conflict(self):
        read = _read_with_test("<", 10)
        insert = Insert("*/b", "<q/>")
        report = ConflictDetector().read_insert(read, insert)
        assert report.verdict is Verdict.NO_CONFLICT

    @pytest.mark.parametrize(
        "op,bound,text,expected",
        [
            ("<", 10, 5, Verdict.CONFLICT),
            ("<", 10, 10, Verdict.NO_CONFLICT),
            ("<=", 10, 10, Verdict.CONFLICT),
            (">", 3, 4, Verdict.CONFLICT),
            (">", 3, 3, Verdict.NO_CONFLICT),
            ("=", 7, 7, Verdict.CONFLICT),
            ("!=", 7, 7, Verdict.NO_CONFLICT),
        ],
    )
    def test_operator_matrix(self, op, bound, text, expected):
        read = _read_with_test(op, bound)
        insert = Insert("*/b", f"<q>{text}</q>")
        assert ConflictDetector().read_insert(read, insert).verdict is expected

    def test_deep_x_with_mixed_values(self):
        # X holds two q's; only the deep one satisfies.
        read = _read_with_test("<", 10)
        insert = Insert("*/b", "<w><q>99</q><inner><q>2</q></inner></w>")
        report = ConflictDetector().read_insert(read, insert)
        assert report.verdict is Verdict.CONFLICT


class TestWitnessSideTests:
    def test_update_pattern_tests_do_not_block(self):
        """Tests on the (branching) insert pattern are witness-side: the
        detector decorates the witness so the insert still fires."""
        read = Read("*//c")
        pattern = TreePattern("*")
        b = pattern.add_child(pattern.root, "b", Axis.CHILD)
        pattern.set_value_test(b, ValueTest("<", 10))
        pattern.set_output(b)
        insert = Insert(pattern, "<c/>")
        report = ConflictDetector().read_insert(read, insert)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, insert, ConflictKind.NODE)

    def test_delete_pattern_tests_do_not_block(self):
        read = Read("*//c")
        pattern = TreePattern("*")
        b = pattern.add_child(pattern.root, "b", Axis.CHILD)
        pattern.set_value_test(b, ValueTest(">", 100))
        pattern.set_output(b)
        delete = Delete(pattern)
        report = ConflictDetector().read_delete(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    def test_read_spine_tests_do_not_block_delete(self):
        read = _read_with_test("<", 10)
        delete = Delete("*/b")
        report = ConflictDetector().read_delete(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    def test_contradictory_tests_coexist_on_one_witness(self):
        """Two tests with disjoint intervals still co-satisfiable: a node
        may carry one text child per test."""
        read = _read_with_test("<", 10)
        pattern = TreePattern("*")
        q = pattern.add_child(pattern.root, "q", Axis.DESCENDANT)
        pattern.set_value_test(q, ValueTest(">", 100))
        pattern.set_output(q)
        delete = Delete(pattern)
        report = ConflictDetector().read_delete(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)


class TestRandomizedCrossValidation:
    """Ground truth by bounded search over *decorated* candidates.

    A with-tests conflict needs its tests satisfied at matched nodes, so a
    bounded witness search stays complete if every candidate tree is
    decorated with one satisfying text child per distinct test (inserted
    ``X`` copies keep their own fixed content).  Verdicts of the exact
    linear algorithms must agree with this search on small instances.
    """

    @staticmethod
    def _decorated_candidates(read, update, max_size):
        from repro.conflicts.general import witness_alphabet
        from repro.conflicts.linear import _satisfying_value
        from repro.xml.enumerate import enumerate_trees

        tests = {
            p.value_test(n)
            for p in (read.pattern, update.pattern)
            for n in p.nodes()
            if p.value_test(n) is not None
        }
        values = [_satisfying_value(t) for t in tests]
        for candidate in enumerate_trees(max_size, witness_alphabet(read, update)):
            decorated = candidate.copy()
            for node in list(decorated.nodes()):
                for value in values:
                    decorated.add_child(node, f"#text:{value}")
            yield decorated

    @pytest.mark.parametrize("seed", range(30))
    def test_read_insert_with_tests(self, seed):
        import random

        from repro.workloads.generators import random_linear_pattern
        from repro.xml.random_trees import random_tree

        rng = random.Random(seed)
        pattern = random_linear_pattern(rng.randint(1, 3), ("a", "q"), seed=rng)
        # Attach a random test to a random spine node.
        spine = pattern.spine()
        target = spine[rng.randrange(len(spine))]
        op = rng.choice(["<", ">", "=", "!="])
        pattern.set_value_test(target, ValueTest(op, rng.randint(0, 5)))
        read = Read(pattern)
        x = random_tree(rng.randint(1, 2), ("a", "q"), seed=rng)
        if rng.random() < 0.6:
            x.add_child(x.root, f"#text:{rng.randint(0, 5)}")
        insert = Insert(
            random_linear_pattern(rng.randint(1, 2), ("a", "q"), seed=rng), x
        )
        report = ConflictDetector().read_insert(read, insert)
        found = any(
            is_witness(candidate, read, insert, ConflictKind.NODE)
            for candidate in self._decorated_candidates(read, insert, 4)
        )
        if report.verdict is Verdict.CONFLICT:
            assert is_witness(report.witness, read, insert, ConflictKind.NODE), (
                f"seed {seed}"
            )
        else:
            assert not found, f"seed {seed}: missed a with-tests conflict"

    @pytest.mark.parametrize("seed", range(20))
    def test_read_delete_with_tests(self, seed):
        import random

        from repro.workloads.generators import random_linear_pattern

        rng = random.Random(seed + 70_000)
        pattern = random_linear_pattern(rng.randint(1, 3), ("a", "q"), seed=rng)
        spine = pattern.spine()
        target = spine[rng.randrange(len(spine))]
        pattern.set_value_test(target, ValueTest(rng.choice(["<", ">"]), rng.randint(0, 5)))
        read = Read(pattern)
        delete = Delete(
            random_linear_pattern(rng.randint(2, 3), ("a", "q"), seed=rng)
        )
        report = ConflictDetector().read_delete(read, delete)
        found = any(
            is_witness(candidate, read, delete, ConflictKind.NODE)
            for candidate in self._decorated_candidates(read, delete, 4)
        )
        if report.verdict is Verdict.CONFLICT:
            assert is_witness(report.witness, read, delete, ConflictKind.NODE), (
                f"seed {seed}"
            )
        else:
            assert not found, f"seed {seed}: missed a with-tests conflict"


class TestBranchingReadsStayConservative:
    def test_branching_read_still_strips_with_note(self):
        report = ConflictDetector().read_insert(
            Read("bib/book[.//quantity < 10]"),
            Insert("bib/book", "<restock/>"),
        )
        assert any("stripped" in note for note in report.notes)

    def test_paper_restock_scenario_now_exact(self):
        """The motivating example, linear-read version: the restock insert
        cannot affect the low-stock read because <restock/> carries no
        quantity at all — the exact analysis proves it."""
        read = _read_with_test("<", 10)  # *//q[<10] ~ stock levels
        insert = Insert("*//book", "<restock/>")
        report = ConflictDetector().read_insert(read, insert)
        assert report.verdict is Verdict.NO_CONFLICT
        assert not report.notes
