"""Smoke tests for the top-level public API (the README quickstart)."""

from __future__ import annotations

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart(self):
        detector = repro.ConflictDetector()
        report = detector.read_insert(
            repro.Read("*//C"), repro.Insert("*/B", "<C/>")
        )
        assert report.verdict is repro.Verdict.CONFLICT
        assert report.witness is not None
        assert repro.is_witness(
            report.witness,
            repro.Read("*//C"),
            repro.Insert("*/B", "<C/>"),
            repro.ConflictKind.NODE,
        )

    def test_parse_and_evaluate(self):
        doc = repro.parse("<bib><book/><book/></bib>")
        pattern = repro.parse_xpath("bib/book")
        assert len(repro.evaluate(pattern, doc)) == 2

    def test_build_and_serialize(self):
        tree = repro.build_tree(("a", "b"))
        assert repro.serialize(tree) == "<a><b/></a>"

    def test_minimize_witness_roundtrip(self):
        read = repro.Read("a//c")
        delete = repro.Delete("a/b")
        report = repro.ConflictDetector().read_delete(read, delete)
        witness = report.witness
        bloated = witness.copy()
        bloated.add_child(bloated.root, "noise")
        small = repro.minimize_witness(bloated, read, delete)
        assert small.size <= bloated.size

    def test_error_hierarchy(self):
        import pytest

        with pytest.raises(repro.ReproError):
            repro.parse_xpath("][")
        with pytest.raises(repro.ReproError):
            repro.parse("<oops>")
