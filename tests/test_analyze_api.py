"""Tests for the unified :func:`repro.analyze` facade and the legacy shims."""

from __future__ import annotations

import inspect
import warnings

import pytest

import repro
from repro.conflicts.api import AnalysisConfig, analyze
from repro.conflicts.batch import BatchAnalyzer, ConflictMatrix
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.schedule import conflict_matrix, parallel_schedule
from repro.conflicts.semantics import ConflictKind, Verdict
from repro.operations.ops import Delete, Insert, Read

OPERATIONS = {
    "titles": Read("bib/book/title"),
    "quantities": Read("//quantity"),
    "restock": Insert("bib/book", "<restock/>"),
    "purge": Delete("bib/book"),
    "strip-markers": Delete("bib/book/restock"),
}


class TestAnalyzeFacade:
    def test_exported_at_top_level(self):
        assert repro.analyze is analyze
        assert repro.AnalysisConfig is AnalysisConfig

    def test_matrix_mode_default(self):
        result = analyze(OPERATIONS)
        assert isinstance(result, ConflictMatrix)
        reference = BatchAnalyzer(detector=ConflictDetector(), jobs=1).analyze(
            OPERATIONS
        )
        for name_a in OPERATIONS:
            for name_b in OPERATIONS:
                assert result.verdict(name_a, name_b) is reference.verdict(
                    name_a, name_b
                )

    def test_schedule_mode(self):
        batches = analyze(OPERATIONS, mode="schedule")
        assert isinstance(batches, list)
        assert sorted(name for batch in batches for name in batch) == sorted(
            OPERATIONS
        )
        analyzer = BatchAnalyzer(detector=ConflictDetector(), jobs=1)
        analyzer.analyze(OPERATIONS)
        assert batches == analyzer.schedule()

    def test_pairs_mode(self):
        pairs = analyze(OPERATIONS, mode="pairs")
        names = list(OPERATIONS)
        expected = [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]
        assert [(a, b) for a, b, _ in pairs] == expected
        matrix = analyze(OPERATIONS)
        for first, second, verdict in pairs:
            assert isinstance(verdict, Verdict)
            assert matrix.verdict(first, second) is verdict

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            analyze(OPERATIONS, mode="heatmap")

    def test_config_controls_detector(self):
        config = AnalysisConfig(
            detector=DetectorConfig(kind=ConflictKind.NODE, max_steps=1)
        )
        matrix = analyze(OPERATIONS, config=config)
        assert matrix.degraded_count() > 0

    def test_config_index_off(self):
        config = AnalysisConfig(index=False, containment=False)
        matrix = analyze(OPERATIONS, config=config)
        counts = matrix.discharge_counts()
        assert counts["index"] == 0 and counts["containment"] == 0

    def test_config_defaults(self):
        config = AnalysisConfig()
        assert config.index and config.containment
        assert config.jobs is None and config.cache is None
        assert config.retries == 2

    def test_config_builds_analyzer(self):
        analyzer = AnalysisConfig(jobs=1).analyzer()
        assert isinstance(analyzer, BatchAnalyzer)
        assert analyzer.jobs == 1


class TestLegacyShims:
    def test_conflict_matrix_warns_and_agrees(self):
        with pytest.warns(DeprecationWarning, match="conflict_matrix"):
            legacy = conflict_matrix(OPERATIONS)
        modern = analyze(OPERATIONS)
        for name_a in OPERATIONS:
            for name_b in OPERATIONS:
                assert legacy.verdict(name_a, name_b) is modern.verdict(
                    name_a, name_b
                )

    def test_parallel_schedule_warns_and_agrees(self):
        with pytest.warns(DeprecationWarning, match="parallel_schedule"):
            legacy = parallel_schedule(OPERATIONS)
        assert legacy == analyze(OPERATIONS, mode="schedule")

    def test_conflict_matrix_signature_parity(self):
        parameters = inspect.signature(conflict_matrix).parameters
        assert list(parameters) == ["operations", "detector", "jobs", "cache"]
        assert parameters["detector"].default is None
        assert parameters["jobs"].kind is inspect.Parameter.KEYWORD_ONLY
        assert parameters["cache"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_parallel_schedule_signature_parity(self):
        parameters = inspect.signature(parallel_schedule).parameters
        assert list(parameters) == ["operations", "detector", "jobs", "cache"]
        assert parameters["jobs"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_analyze_emits_no_deprecation_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            analyze(OPERATIONS)
