"""Tests for workload generators and the random-document module."""

from __future__ import annotations

import random

import pytest

from repro.patterns.embedding import evaluate
from repro.patterns.pattern import WILDCARD
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import (
    containment_pair,
    random_branching_pattern,
    random_delete,
    random_insert,
    random_linear_pattern,
    random_program,
    random_read,
)
from repro.xml.random_trees import bookstore, random_path, random_tree


class TestRandomTrees:
    def test_random_tree_size_and_validity(self):
        t = random_tree(25, seed=1)
        assert t.size == 25
        t.validate()

    def test_random_tree_deterministic_by_seed(self):
        a = random_tree(15, seed=7)
        b = random_tree(15, seed=7)
        assert a.equivalent(b)

    def test_random_tree_max_depth(self):
        t = random_tree(30, seed=2, max_depth=3)
        assert t.height() <= 3

    def test_random_tree_rejects_zero(self):
        with pytest.raises(ValueError):
            random_tree(0)

    def test_random_path_is_chain(self):
        t = random_path(10, seed=3)
        assert t.size == 10
        assert t.height() == 9

    def test_bookstore_shape(self):
        t = bookstore(10, seed=4)
        books = [n for n in t.nodes() if t.label(n) == "book"]
        assert len(books) == 10
        quantities = [n for n in t.nodes() if t.label(n) == "quantity"]
        assert len(quantities) == 10

    def test_bookstore_low_stock_fraction(self):
        t = bookstore(200, low_stock_fraction=1.0, seed=5)
        low = evaluate(parse_xpath("//book[.//quantity < 10]"), t)
        assert len(low) == 200
        t2 = bookstore(200, low_stock_fraction=0.0, seed=5)
        low2 = evaluate(parse_xpath("//book[.//quantity < 10]"), t2)
        assert len(low2) == 0


class TestPatternGenerators:
    def test_linear_pattern_length_and_linearity(self):
        p = random_linear_pattern(6, seed=1)
        assert p.size == 6
        assert p.is_linear

    def test_linear_pattern_probabilities(self):
        rng = random.Random(0)
        all_wild = random_linear_pattern(20, p_wildcard=1.0, seed=rng)
        assert all(all_wild.label(n) == WILDCARD for n in all_wild.nodes())
        no_wild = random_linear_pattern(20, p_wildcard=0.0, seed=rng)
        assert all(no_wild.label(n) != WILDCARD for n in no_wild.nodes())

    def test_branching_pattern_size(self):
        p = random_branching_pattern(8, seed=2)
        assert p.size == 8

    def test_branching_output_policies(self):
        leaf_p = random_branching_pattern(6, seed=3, output="leaf")
        assert not leaf_p.children(leaf_p.output)
        root_p = random_branching_pattern(6, seed=3, output="root")
        assert root_p.output == root_p.root
        with pytest.raises(ValueError):
            random_branching_pattern(3, seed=3, output="bogus")

    def test_deterministic_by_seed(self):
        assert random_linear_pattern(5, seed=11) == random_linear_pattern(5, seed=11)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            random_linear_pattern(0)
        with pytest.raises(ValueError):
            random_branching_pattern(0)


class TestOperationGenerators:
    def test_random_read_linear(self):
        read = random_read(4, seed=1)
        assert read.pattern.is_linear

    def test_random_insert_has_subtree(self):
        insert = random_insert(3, subtree_size=4, seed=2)
        assert insert.subtree.size == 4

    def test_random_delete_never_selects_root(self):
        for seed in range(20):
            delete = random_delete(3, seed=seed)
            assert delete.pattern.output != delete.pattern.root


class TestContainmentPairs:
    def test_related_pairs_contained(self):
        from repro.patterns.containment import contains

        for seed in range(10):
            p, q = containment_pair(3, seed=seed, related_bias=1.0)
            assert contains(p, q), f"seed {seed}"

    def test_pair_determinism(self):
        a = containment_pair(3, seed=42)
        b = containment_pair(3, seed=42)
        assert a[0] == b[0] and a[1] == b[1]


class TestProgramGenerator:
    def test_program_runs(self):
        from repro.lang.interp import run_program

        program = random_program(10, variables=2, seed=1)
        env = run_program(program)
        assert len(env.trees) == 2

    def test_program_statement_count(self):
        program = random_program(7, variables=3, seed=2)
        assert len(program) == 10  # 3 assigns + 7 body statements

    def test_program_deterministic(self):
        a = random_program(5, seed=9)
        b = random_program(5, seed=9)
        assert str(a) == str(b)
