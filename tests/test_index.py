"""Tests for the static pattern index (:mod:`repro.conflicts.index`).

Three layers: unit tests for the discharge rules and the marker-aware
result-containment check, property/metamorphic tests tying every
discharged pair back to the exact decision procedure, and the
index-on/index-off differential oracle over seeded catalogues (the
soundness arbiter ``docs/INDEXING.md`` leans on).
"""

from __future__ import annotations

import itertools
import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conflicts.batch import BatchAnalyzer, CanonicalOp, reference_matrix
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.index import (
    PatternIndex,
    discharge,
    profile_pattern,
    result_containment,
)
from repro.conflicts.semantics import ConflictKind, Verdict
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.pattern import WILDCARD, Axis, TreePattern, ValueTest
from repro.resilience import faults
from repro.workloads.generators import random_delete, random_insert, random_read


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    yield
    faults.uninstall()


def chain_pattern(*labels: str) -> TreePattern:
    """A linear CHILD-only pattern with the leaf as output."""
    pattern = TreePattern(labels[0])
    node = pattern.root
    for label in labels[1:]:
        node = pattern.add_child(node, label, Axis.CHILD)
    pattern.set_output(node)
    return pattern


def catalogue() -> dict:
    return {
        "titles": Read("bib/book/title"),
        "prices": Read("bib//price"),
        "restock": Insert("bib/book", "<note>x</note>"),
        "purge": Delete("bib/book"),
        "trim": Delete("bib//title"),
        "poison": Delete("bib/poisonlabel/entry"),
    }


#: Shifts the randomized catalogues into a disjoint seed region per CI
#: matrix entry, same convention as tests/test_differential.py.
SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED_BASE", "0"))


def mixed_catalogue(seed: int, total: int = 18) -> dict:
    """A seeded read-heavy catalogue over a small alphabet."""
    rng = random.Random(1_000_003 * SEED_BASE + seed)
    ops = {}
    for index in range(total):
        roll = rng.random()
        if roll < 0.6:
            op = random_read(rng.randint(2, 4), linear=True, seed=rng)
        elif roll < 0.8:
            op = random_insert(rng.randint(2, 3), subtree_size=2, seed=rng)
        else:
            op = random_delete(rng.randint(2, 3), seed=rng)
        ops[f"op{index:03d}"] = op
    return ops


#: A small cap keeps random update-update witness searches fast while the
#: linear reads stay exact — the configuration the index's exactness gate
#: has to respect either way.
FAST = DetectorConfig(exhaustive_cap=4)


def fast_detector() -> ConflictDetector:
    return ConflictDetector(config=FAST)


def analyzer_pair(ops: dict) -> tuple[BatchAnalyzer, BatchAnalyzer]:
    """Two fresh serial analyzers over ``ops``: index on, index off."""
    on = BatchAnalyzer(detector=fast_detector(), jobs=1)
    off = BatchAnalyzer(
        detector=fast_detector(), jobs=1, index=False, containment=False
    )
    on.analyze(ops)
    off.analyze(ops)
    return on, off


class TestStaticProfile:
    def test_chain_follows_deterministic_prefix(self):
        profile = profile_pattern("Read", Read("bib/book/title").pattern)
        assert profile.chain == ("bib", "book", "title")
        assert profile.is_linear and profile.descendant_free
        assert profile.trunk_closed and profile.trunk_len == 3
        assert profile.max_depth == 3

    def test_chain_stops_at_descendant_edge(self):
        profile = profile_pattern("Read", Read("bib//price").pattern)
        assert profile.chain == ("bib",)
        assert profile.trunk_det == ("bib",)
        assert not profile.trunk_closed
        assert not profile.descendant_free

    def test_chain_stops_at_branch(self):
        pattern = chain_pattern("a", "b")
        pattern.add_child(pattern.root, "c", Axis.CHILD)
        profile = profile_pattern("Read", pattern)
        assert profile.chain == ("a",)

    def test_wildcards_are_none_in_chain(self):
        pattern = TreePattern("a")
        node = pattern.add_child(pattern.root, WILDCARD, Axis.CHILD)
        pattern.set_output(node)
        profile = profile_pattern("Read", pattern)
        assert profile.chain == ("a", None)

    def test_min_test_depth(self):
        pattern = chain_pattern("a", "b", "c")
        test_node = [n for n in pattern.nodes() if pattern.label(n) == "c"][0]
        pattern.set_value_test(test_node, ValueTest("<", 5.0))
        profile = profile_pattern("Read", pattern)
        assert profile.has_tests
        assert profile.min_test_depth == 3

    def test_profile_rides_on_canonical_op(self):
        canon = CanonicalOp.from_operation(Read("bib/book/title"))
        assert canon.profile is not None
        assert canon.profile.chain == ("bib", "book", "title")


class TestDischargeRules:
    NODE = ConflictKind.NODE

    def _discharge(self, first, second, kind=None, cap=64):
        return discharge(
            profile_pattern(type(first).__name__, first.pattern),
            profile_pattern(type(second).__name__, second.pattern),
            kind=kind or self.NODE,
            exhaustive_cap=cap,
        )

    def test_chain_clash_discharges(self):
        reason = self._discharge(
            Read("bib/book/title"), Delete("bib/poisonlabel/entry")
        )
        assert reason == "index:chain"

    def test_no_clash_no_discharge(self):
        assert self._discharge(Read("bib//price"), Delete("bib/poisonlabel/entry")) is None

    def test_wildcard_never_clashes(self):
        pattern = TreePattern("a")
        node = pattern.add_child(pattern.root, WILDCARD, Axis.CHILD)
        node = pattern.add_child(node, "c", Axis.CHILD)
        pattern.set_output(node)
        # The wildcard at position 1 never clashes with "b"; position 2
        # agrees, and the delete is too shallow for depth separation.
        assert self._discharge(Read(pattern), Delete("a/b/c")) is None

    def test_update_update_never_discharged(self):
        assert self._discharge(Delete("a/b/c"), Insert("a/x/y", "<z/>")) is None

    def test_read_read_never_discharged(self):
        assert self._discharge(Read("a/b"), Read("a/x")) is None

    def test_depth_separation_discharges_node_kind(self):
        assert self._discharge(Read("a/b"), Delete("a/b/c/d")) == "index:depth"

    def test_depth_separation_boundary(self):
        # Delete threshold for a test-free read is max_depth + 1 = 3.
        assert self._discharge(Read("a/b"), Delete("a/b/c")) == "index:depth"
        assert self._discharge(Read("a/b"), Delete("a/b")) is None

    def test_depth_separation_insert_threshold(self):
        # Insert threshold for a test-free read is max_depth = 2.
        assert self._discharge(Read("a/b"), Insert("a/b", "<z/>")) == "index:depth"

    def test_depth_rule_requires_node_kind(self):
        reason = self._discharge(
            Read("a/b"), Delete("a/b/c/d"), kind=ConflictKind.TREE
        )
        assert reason is None

    def test_depth_rule_refuses_open_trunk(self):
        assert self._discharge(Read("a/b"), Delete("a//deep/deeper")) is None

    def test_value_test_blocks_clash_at_horizon(self):
        read_pattern = chain_pattern("a", "b", "c")
        read_pattern.set_value_test(read_pattern.root, ValueTest("<", 5.0))
        # Test on the root: horizon is 1, the clash at position 1 is not
        # strictly above it, so the rule must refuse.
        assert self._discharge(Read(read_pattern), Delete("a/x/y")) is None

    def test_value_test_deep_enough_allows_clash(self):
        read_pattern = chain_pattern("a", "b", "c")
        leaf = [n for n in read_pattern.nodes() if read_pattern.label(n) == "c"][0]
        read_pattern.set_value_test(leaf, ValueTest("<", 5.0))
        # Horizon is 3; the clash at position 1 sits strictly above it.
        assert self._discharge(Read(read_pattern), Delete("a/x/y")) == "index:chain"

    def test_branching_read_gated_by_cap(self):
        pattern = TreePattern("a")
        pattern.add_child(pattern.root, "b", Axis.CHILD)
        node = pattern.add_child(pattern.root, "c", Axis.CHILD)
        pattern.set_output(node)
        read = Read(pattern)
        update = Delete("z/x/y")
        assert self._discharge(read, update, cap=None) is None
        assert self._discharge(read, update, cap=10_000) == "index:chain"

    def test_pattern_index_memoizes(self):
        index = PatternIndex(kind=self.NODE, exhaustive_cap=64)
        read = profile_pattern("Read", Read("bib/book/title").pattern)
        update = profile_pattern("Delete", Delete("bib/poisonlabel/entry").pattern)
        assert index.discharge(read, update) == "index:chain"
        assert index.discharge(update, read) == "index:chain"
        assert len(index._memo) == 1

    def test_bucket_key(self):
        read = profile_pattern("Read", Read("bib/book").pattern)
        update = profile_pattern("Delete", Delete("bib/book").pattern)
        assert PatternIndex.bucket(read) == ("read", "bib")
        assert PatternIndex.bucket(update) == ("write", "bib")


class TestResultContainment:
    def test_descendant_generalizes_child_chain(self):
        general = TreePattern("a")
        out = general.add_child(general.root, "c", Axis.DESCENDANT)
        general.set_output(out)
        specific = chain_pattern("a", "b", "c")
        assert result_containment(general, specific)

    def test_reflexive(self):
        pattern = chain_pattern("a", "b", "c")
        assert result_containment(pattern, pattern)

    def test_wildcard_generalizes_label(self):
        general = TreePattern("a")
        out = general.add_child(general.root, WILDCARD, Axis.CHILD)
        general.set_output(out)
        specific = chain_pattern("a", "b")
        assert result_containment(general, specific)

    def test_label_mismatch_fails(self):
        assert not result_containment(chain_pattern("a", "b"), chain_pattern("a", "c"))

    def test_extra_branch_must_map(self):
        general = chain_pattern("a", "b")
        general.add_child(general.root, "q", Axis.CHILD)
        specific = chain_pattern("a", "b")
        assert not result_containment(general, specific)

    def test_marker_restriction_blocks_wildcard_laundering(self):
        """``a[*]`` does NOT result-contain ``a``: the wildcard leaf must
        not be allowed to map onto the artificial marker node."""
        general = TreePattern("a")
        general.add_child(general.root, WILDCARD, Axis.CHILD)
        general.set_output(general.root)
        specific = TreePattern("a")
        specific.set_output(specific.root)
        assert not result_containment(general, specific)

    def test_output_positions_must_align(self):
        general = chain_pattern("a", "b")  # outputs b
        specific = chain_pattern("a", "b")
        specific.set_output(specific.root)  # outputs a
        assert not result_containment(general, specific)


class TestBatchDischarge:
    def test_discharge_reasons_in_matrix(self):
        analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
        matrix = analyzer.analyze(catalogue())
        assert matrix.discharge_reason("titles", "poison") == "index:chain"
        assert matrix.verdict("titles", "poison") is Verdict.NO_CONFLICT
        assert matrix.discharge_reason("titles", "prices") == "trivial"
        assert matrix.discharge_reason("titles", "titles") == "trivial"
        assert matrix.discharge_reason("titles", "purge") == "decided"
        counts = matrix.discharge_counts()
        assert counts["index"] >= 1
        assert counts["decided"] >= 1
        assert sum(counts.values()) == sum(matrix.counts().values())

    def test_discharged_pairs_listing(self):
        analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
        matrix = analyzer.analyze(catalogue())
        discharged = matrix.discharged_pairs()
        assert ("titles", "poison", "index:chain") in discharged or (
            "poison",
            "titles",
            "index:chain",
        ) in discharged
        for _, _, reason in discharged:
            assert reason.startswith(("index:", "containment:"))

    def test_discharge_reason_unknown_name_raises(self):
        analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
        matrix = analyzer.analyze(catalogue())
        with pytest.raises(KeyError):
            matrix.discharge_reason("titles", "nope")

    def test_metrics_count_discharges(self):
        analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
        matrix = analyzer.analyze(catalogue())
        counters = analyzer.metrics()["counters"]
        index_count = counters.get("batch.pairs_discharged{reason=index}", 0)
        assert index_count == matrix.discharge_counts()["index"]

    def test_every_discharged_pair_is_no_conflict_exactly(self):
        ops = catalogue()
        analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
        matrix = analyzer.analyze(ops)
        reference = reference_matrix(ops, fast_detector())
        for first, second, _reason in matrix.discharged_pairs():
            assert matrix.verdict(first, second) is Verdict.NO_CONFLICT
            assert reference.verdict(first, second) is Verdict.NO_CONFLICT


class TestDifferentialOracle:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1031, 2063])
    def test_index_on_off_byte_identical(self, seed):
        ops = mixed_catalogue(seed)
        on, off = analyzer_pair(ops)
        on_dict, off_dict = on.matrix.to_dict(), off.matrix.to_dict()
        # Discharge annotations differ by design; verdicts must not.
        for entry_on, entry_off in zip(on_dict["verdicts"], off_dict["verdicts"]):
            assert entry_on["first"] == entry_off["first"]
            assert entry_on["second"] == entry_off["second"]
            assert entry_on["verdict"] == entry_off["verdict"]
        assert json.dumps(
            {k: v for k, v in on_dict["stats"].items() if k != "discharged"},
            sort_keys=True,
        ) == json.dumps(
            {k: v for k, v in off_dict["stats"].items() if k != "discharged"},
            sort_keys=True,
        )

    def test_shuffle_invariance(self):
        ops = mixed_catalogue(42)
        base = BatchAnalyzer(detector=fast_detector(), jobs=1)
        base_matrix = base.analyze(ops)
        rng = random.Random(9)
        names = list(ops)
        for _ in range(3):
            rng.shuffle(names)
            shuffled = {name: ops[name] for name in names}
            analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
            matrix = analyzer.analyze(shuffled)
            assert matrix.discharge_counts() == base_matrix.discharge_counts()
            for a, b in itertools.combinations(ops, 2):
                assert matrix.verdict(a, b) is base_matrix.verdict(a, b), (a, b)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_discharged_pairs_re_decide_no_conflict(self, seed):
        ops = mixed_catalogue(seed, total=10)
        analyzer = BatchAnalyzer(detector=fast_detector(), jobs=1)
        matrix = analyzer.analyze(ops)
        reference = reference_matrix(ops, fast_detector())
        for first, second, _reason in matrix.discharged_pairs():
            assert matrix.verdict(first, second) is Verdict.NO_CONFLICT
            assert reference.verdict(first, second) is Verdict.NO_CONFLICT


class TestSparseMode:
    def test_sparse_matches_dense(self, monkeypatch):
        ops = mixed_catalogue(3, total=12)
        dense = BatchAnalyzer(detector=fast_detector(), jobs=1)
        dense_matrix = dense.analyze(ops)
        assert not dense_matrix.is_sparse
        monkeypatch.setattr(BatchAnalyzer, "DENSE_LIMIT", 4)
        sparse = BatchAnalyzer(detector=fast_detector(), jobs=1)
        sparse_matrix = sparse.analyze(ops)
        assert sparse_matrix.is_sparse
        assert sparse_matrix.counts() == dense_matrix.counts()
        assert sparse_matrix.discharge_counts() == dense_matrix.discharge_counts()
        assert sparse_matrix.degraded_count() == dense_matrix.degraded_count()
        for a, b in itertools.combinations(ops, 2):
            assert sparse_matrix.verdict(a, b) is dense_matrix.verdict(a, b), (a, b)
            assert sparse_matrix.discharge_reason(a, b) == dense_matrix.discharge_reason(
                a, b
            ) or sparse_matrix.discharge_reason(a, b).split(":")[0] == (
                dense_matrix.discharge_reason(a, b).split(":")[0]
            )
        payload = sparse_matrix.to_dict()
        assert payload["sparse"] is True
        assert payload["groups"]
        assert payload["stats"]["operations"] == len(ops)

    def test_schedule_agrees_across_modes(self, monkeypatch):
        ops = mixed_catalogue(5, total=10)
        dense = BatchAnalyzer(detector=fast_detector(), jobs=1)
        dense.analyze(ops)
        monkeypatch.setattr(BatchAnalyzer, "DENSE_LIMIT", 3)
        sparse = BatchAnalyzer(detector=fast_detector(), jobs=1)
        sparse.analyze(ops)
        assert sparse.schedule() == dense.schedule()


class TestFaultInterplay:
    def test_index_discharged_pairs_survive_worker_crashes(self):
        """With the index on, statically-independent poison pairs are
        discharged before they reach the crashing pool; the rest of the
        poison pairs are quarantined as usual."""
        ops = catalogue()
        faults.install(
            faults.FaultInjector.parse("worker_crash:1:only=poisonlabel", seed=5)
        )
        analyzer = BatchAnalyzer(FAST, jobs=2, retries=1, retry_backoff_s=0.001)
        matrix = analyzer.analyze(ops)
        assert matrix.verdict("titles", "poison") is Verdict.NO_CONFLICT
        assert matrix.discharge_reason("titles", "poison") == "index:chain"
        assert matrix.verdict("prices", "poison") is Verdict.UNKNOWN
        assert matrix.reason("prices", "poison") == "worker_crash"
