"""Tests for the incremental evaluator (:mod:`repro.patterns.incremental`)."""

from __future__ import annotations

import random

import pytest

from repro.patterns.embedding import evaluate
from repro.patterns.incremental import IncrementalEvaluator
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import random_branching_pattern, random_linear_pattern
from repro.xml.random_trees import random_tree
from repro.xml.tree import build_tree


class TestBasics:
    def test_initial_state_matches_evaluation(self):
        tree = build_tree(("a", ("b", "c"), "b"))
        ev = IncrementalEvaluator(parse_xpath("a/b[c]"), tree)
        assert ev.results == evaluate(ev.pattern, tree)
        ev.verify()

    def test_insert_adds_result(self):
        tree = build_tree(("a", "b"))
        ev = IncrementalEvaluator(parse_xpath("a//c"), tree)
        assert ev.results == set()
        b = tree.children(tree.root)[0]
        mapping = ev.insert_subtree(b, build_tree("c"))
        assert ev.results == set(mapping.values())
        ev.verify()

    def test_insert_enables_predicate(self):
        tree = build_tree(("a", "b"))
        ev = IncrementalEvaluator(parse_xpath("a[b/c]"), tree)
        assert ev.results == set()
        b = tree.children(tree.root)[0]
        ev.insert_subtree(b, build_tree("c"))
        assert ev.results == {tree.root}
        ev.verify()

    def test_delete_removes_result(self):
        tree = build_tree(("a", ("b", "c")))
        ev = IncrementalEvaluator(parse_xpath("a//c"), tree)
        assert len(ev.results) == 1
        b = tree.children(tree.root)[0]
        ev.delete_subtree(b)
        assert ev.results == set()
        ev.verify()

    def test_delete_disables_predicate(self):
        tree = build_tree(("a", ("b", "c")))
        ev = IncrementalEvaluator(parse_xpath("a[b/c]"), tree)
        assert ev.results == {tree.root}
        b = tree.children(tree.root)[0]
        c = tree.children(b)[0]
        ev.delete_subtree(c)
        assert ev.results == set()
        ev.verify()

    def test_delete_root_rejected(self):
        tree = build_tree("a")
        ev = IncrementalEvaluator(parse_xpath("a"), tree)
        with pytest.raises(ValueError):
            ev.delete_subtree(tree.root)

    def test_multiple_updates_stay_consistent(self):
        tree = build_tree(("a", "b"))
        ev = IncrementalEvaluator(parse_xpath("a//b"), tree)
        b = tree.children(tree.root)[0]
        m1 = ev.insert_subtree(b, build_tree(("b", "b")))
        ev.verify()
        ev.insert_subtree(tree.root, build_tree("b"))
        ev.verify()
        ev.delete_subtree(m1[0])  # remove the first grafted copy
        ev.verify()
        assert ev.results == evaluate(ev.pattern, tree)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_update_sequences(self, seed):
        """Random patterns, random trees, random update sequences —
        the evaluator must track from-scratch evaluation exactly."""
        rng = random.Random(seed)
        tree = random_tree(rng.randint(2, 10), ("a", "b", "c"), seed=rng)
        if rng.random() < 0.5:
            pattern = random_linear_pattern(rng.randint(1, 4), ("a", "b", "c"), seed=rng)
        else:
            pattern = random_branching_pattern(
                rng.randint(1, 5), ("a", "b", "c"), seed=rng, output="any"
            )
        ev = IncrementalEvaluator(pattern, tree)
        for step in range(8):
            nodes = list(tree.nodes())
            if rng.random() < 0.6 or len(nodes) <= 2:
                point = rng.choice(nodes)
                ev.insert_subtree(
                    point, random_tree(rng.randint(1, 3), ("a", "b", "c"), seed=rng)
                )
            else:
                victims = [n for n in nodes if n != tree.root]
                ev.delete_subtree(rng.choice(victims))
            assert ev.results == evaluate(pattern, tree), (
                f"seed {seed} step {step}"
            )
        ev.verify()

    @pytest.mark.parametrize("seed", range(10))
    def test_counters_consistent_after_heavy_churn(self, seed):
        rng = random.Random(seed + 10_000)
        tree = random_tree(6, ("a", "b"), seed=rng)
        pattern = parse_xpath("a[.//b]//a")
        ev = IncrementalEvaluator(pattern, tree)
        for _ in range(12):
            nodes = [n for n in tree.nodes() if n != tree.root]
            if nodes and rng.random() < 0.4:
                ev.delete_subtree(rng.choice(nodes))
            else:
                ev.insert_subtree(
                    rng.choice(list(tree.nodes())),
                    random_tree(2, ("a", "b"), seed=rng),
                )
        ev.verify()


class TestDeepDocuments:
    def test_deep_chain_update(self):
        """The intended use case: local updates on deep documents."""
        from repro.xml.random_trees import random_path

        tree = random_path(200, ("a", "b"), seed=1)
        pattern = parse_xpath("*//b")
        ev = IncrementalEvaluator(pattern, tree)
        leaf = max(tree.nodes(), key=tree.depth)
        ev.insert_subtree(leaf, build_tree("b"))
        assert ev.results == evaluate(pattern, tree)
        ev.verify()
