"""Tests for the :class:`ConflictDetector` facade."""

from __future__ import annotations

import pytest

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.operations.ops import Delete, Insert, Read


class TestDispatch:
    def test_linear_read_uses_ptime(self):
        report = ConflictDetector().read_insert(Read("*//C"), Insert("*/B", "<C/>"))
        assert report.method == "linear-ptime"
        assert report.verdict is Verdict.CONFLICT

    def test_branching_read_uses_general_engine(self):
        report = ConflictDetector().read_insert(
            Read("a[b/c]"), Insert("a/b", "<c/>")
        )
        assert report.method in ("heuristic", "exhaustive")
        assert report.verdict is Verdict.CONFLICT

    def test_read_update_dispatches_on_type(self):
        detector = ConflictDetector()
        insert_report = detector.read_update(Read("a/b"), Insert("a", "<b/>"))
        delete_report = detector.read_update(Read("a/b"), Delete("a/b"))
        assert insert_report.verdict is Verdict.CONFLICT
        assert delete_report.verdict is Verdict.CONFLICT

    def test_read_update_rejects_other_types(self):
        with pytest.raises(TypeError):
            ConflictDetector().read_update(Read("a"), "not an update")  # type: ignore[arg-type]

    def test_update_update(self):
        report = ConflictDetector().update_update(
            Insert("a/b", "<c/>"), Insert("a/b/c", "<d/>")
        )
        assert report.verdict is Verdict.CONFLICT


class TestSemanticsParameter:
    def test_tree_semantics(self):
        detector = ConflictDetector(kind=ConflictKind.TREE)
        report = detector.read_insert(Read("a"), Insert("a/B", "<x/>"))
        assert report.verdict is Verdict.CONFLICT

    def test_node_semantics_differs(self):
        detector = ConflictDetector(kind=ConflictKind.NODE)
        report = detector.read_insert(Read("a"), Insert("a/B", "<x/>"))
        assert report.verdict is Verdict.NO_CONFLICT


class TestValueTestStripping:
    def test_stripping_noted(self):
        detector = ConflictDetector()
        report = detector.read_insert(
            Read("bib/book[.//quantity < 10]"),
            Insert("bib/book", "<restock/>"),
        )
        assert any("stripped" in note for note in report.notes)

    def test_stripped_analysis_is_conservative(self):
        """Value tests can only narrow matches, so a NO_CONFLICT verdict on
        stripped patterns is exact; a CONFLICT may be spurious.

        The cap must cover this instance's Lemma 11 bound (6) for a
        definitive verdict.
        """
        detector = ConflictDetector(exhaustive_cap=6)
        report = detector.read_delete(
            Read("a/b[c < 5]"), Delete("a/z")
        )
        assert report.verdict is Verdict.NO_CONFLICT

    def test_no_note_without_value_tests(self):
        report = ConflictDetector().read_insert(Read("a/b"), Insert("a", "<b/>"))
        assert not any("stripped" in note for note in report.notes)


class TestWitnessMinimization:
    def test_minimized_witnesses_respect_bound(self):
        from repro.conflicts.general import witness_size_bound

        detector = ConflictDetector(minimize_witnesses=True)
        read, delete = Read("a//c"), Delete("a/b")
        report = detector.read_delete(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert report.witness.size <= witness_size_bound(read, delete)
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    def test_minimization_never_smaller_than_needed(self):
        plain = ConflictDetector().read_delete(Read("a//c"), Delete("a/b"))
        minimized = ConflictDetector(minimize_witnesses=True).read_delete(
            Read("a//c"), Delete("a/b")
        )
        assert minimized.witness.size <= plain.witness.size


class TestWitnessesAlwaysVerify:
    @pytest.mark.parametrize(
        "read,insert",
        [
            ("*//C", "*/B"),
            ("a/b/c", "a/b"),
            ("a//x", "a//b"),
        ],
    )
    def test_insert_witnesses(self, read, insert):
        r, i = Read(read), Insert(insert, "<C><x/></C>")
        report = ConflictDetector().read_insert(r, i)
        if report.verdict is Verdict.CONFLICT and report.witness is not None:
            assert is_witness(report.witness, r, i, ConflictKind.NODE)

    def test_paper_program_fragment(self):
        """The Section 1 fragment, end to end through the facade."""
        detector = ConflictDetector()
        insert = Insert("*/B", "<C/>")
        assert detector.read_insert(Read("*//A"), insert).verdict is Verdict.NO_CONFLICT
        assert detector.read_insert(Read("*//C"), insert).verdict is Verdict.CONFLICT
        assert detector.read_insert(Read("*//D"), insert).verdict is Verdict.NO_CONFLICT
        assert detector.read_insert(Read("*/*/A"), insert).verdict is Verdict.NO_CONFLICT


class TestDetectorConfig:
    def test_defaults_match_constructor_defaults(self):
        from repro.conflicts.detector import DetectorConfig

        built = DetectorConfig().build()
        plain = ConflictDetector()
        assert built.config == plain.config

    def test_build_applies_knobs(self):
        from repro.conflicts.detector import DetectorConfig

        config = DetectorConfig(
            kind=ConflictKind.TREE, exhaustive_cap=3, use_heuristics=False
        )
        detector = config.build()
        assert detector.kind is ConflictKind.TREE
        assert detector.exhaustive_cap == 3
        assert detector.use_heuristics is False
        assert detector.config == config

    def test_config_overrides_keyword_knobs(self):
        from repro.conflicts.detector import DetectorConfig

        detector = ConflictDetector(
            exhaustive_cap=9, config=DetectorConfig(exhaustive_cap=2)
        )
        assert detector.exhaustive_cap == 2

    def test_fingerprint_tracks_verdict_knobs_only(self):
        from repro.conflicts.detector import DetectorConfig

        base = DetectorConfig()
        assert base.fingerprint() != DetectorConfig(exhaustive_cap=2).fingerprint()
        assert base.fingerprint() != DetectorConfig(
            kind=ConflictKind.TREE
        ).fingerprint()
        # cache / minimize_witnesses / trace do not change verdicts.
        assert base.fingerprint() == DetectorConfig(cache=False).fingerprint()
        assert base.fingerprint() == DetectorConfig(
            minimize_witnesses=True
        ).fingerprint()

    def test_frozen(self):
        from repro.conflicts.detector import DetectorConfig

        with pytest.raises(Exception):
            DetectorConfig().exhaustive_cap = 1


class TestPolymorphicDetect:
    def test_read_read_trivial(self):
        report = ConflictDetector().detect(Read("a/b"), Read("a/b"))
        assert report.verdict is Verdict.NO_CONFLICT
        assert report.method == "read-read-trivial"

    def test_read_update_either_order(self):
        detector = ConflictDetector()
        read, delete = Read("bib/book/title"), Delete("bib/book")
        assert detector.detect(read, delete).verdict is Verdict.CONFLICT
        assert detector.detect(delete, read).verdict is Verdict.CONFLICT

    def test_update_update(self):
        detector = ConflictDetector()
        report = detector.detect(Insert("a/b", "<c/>"), Delete("a/b/c"))
        assert report.verdict is Verdict.CONFLICT

    def test_matches_specific_entry_points(self):
        detector = ConflictDetector()
        read, insert = Read("*//C"), Insert("*/B", "<C/>")
        assert (
            detector.detect(read, insert).verdict
            is detector.read_insert(read, insert).verdict
        )

    def test_rejects_non_operations(self):
        with pytest.raises(TypeError):
            ConflictDetector().detect(Read("a"), "delete a/b")


class TestCachedEntries:
    def test_yields_verdicts_with_fingerprint(self):
        detector = ConflictDetector()
        detector.read_delete(Read("bib/book/title"), Delete("bib/book"))
        entries = list(detector.cached_entries())
        assert len(entries) == 1
        fingerprint, key_a, key_b, verdict = entries[0]
        assert fingerprint == detector.config.fingerprint()
        assert verdict is Verdict.CONFLICT
        kinds = {key_a[0], key_b[0]}
        assert kinds == {"Read", "Delete"}
