"""Tests for the batch conflict-analysis engine (:mod:`repro.conflicts.batch`)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.conflicts.batch import (
    BatchAnalyzer,
    CanonicalOp,
    ConflictMatrix,
    VerdictCache,
    reference_matrix,
)
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.semantics import Verdict
from repro.errors import ConflictEngineError
from repro.operations.ops import Delete, Insert, Read
from repro.xml.isomorphism import canonical_form

OPERATIONS = {
    "titles": Read("bib/book/title"),
    "quantities": Read("//quantity"),
    "restock": Insert("bib/book", "<restock/>"),
    "purge": Delete("bib/book"),
    "strip-markers": Delete("bib/book/restock"),
}


def assert_same_verdicts(matrix_a: ConflictMatrix, matrix_b: ConflictMatrix) -> None:
    assert sorted(matrix_a.names) == sorted(matrix_b.names)
    for a, b in itertools.combinations(matrix_a.names, 2):
        assert matrix_a.verdict(a, b) is matrix_b.verdict(a, b), (a, b)


class TestCanonicalOp:
    def test_roundtrip_read(self):
        canon = CanonicalOp.from_operation(Read("bib//book/title"))
        rebuilt = canon.to_operation()
        assert isinstance(rebuilt, Read)
        assert rebuilt.pattern.canonical_form() == canon.pattern_key

    def test_roundtrip_insert(self):
        canon = CanonicalOp.from_operation(Insert("a/b", "<c><d/></c>"))
        rebuilt = canon.to_operation()
        assert isinstance(rebuilt, Insert)
        assert canonical_form(rebuilt.subtree) == canon.subtree_key

    def test_structurally_identical_ops_share_a_key(self):
        one = CanonicalOp.from_operation(Insert("a/b", "<c><d/><e/></c>"))
        two = CanonicalOp.from_operation(Insert("a/b", "<c><e/><d/></c>"))
        assert one.key == two.key

    def test_different_ops_differ(self):
        assert (
            CanonicalOp.from_operation(Read("a/b")).key
            != CanonicalOp.from_operation(Delete("a/b")).key
        )

    def test_rejects_non_operations(self):
        with pytest.raises(TypeError):
            CanonicalOp.from_operation("read a/b")


class TestVerdictCache:
    def _decided_cache(self):
        cache = VerdictCache()
        analyzer = BatchAnalyzer(cache=cache)
        analyzer.analyze(OPERATIONS)
        return cache

    def test_export_merge_roundtrip(self):
        cache = self._decided_cache()
        other = VerdictCache()
        added = other.merge(cache.export())
        assert added == len(cache) > 0
        assert other.merge(cache) == 0  # idempotent

    def test_save_load_roundtrip(self, tmp_path):
        cache = self._decided_cache()
        path = tmp_path / "verdicts.json"
        cache.save(path)
        loaded = VerdictCache.load(path)
        assert len(loaded) == len(cache)
        # A warm analyzer answers everything from the loaded cache.
        warm = BatchAnalyzer(cache=loaded)
        warm.analyze(OPERATIONS)
        counters = warm.metrics()["counters"]
        assert counters.get("batch.pairs_unique", 0) == 0

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ConflictEngineError):
            VerdictCache.load(path)

    def test_save_creates_parent_directories(self, tmp_path):
        # A dated snapshot location must work on the first save, not
        # fail with FileNotFoundError until someone mkdirs it.
        cache = self._decided_cache()
        path = tmp_path / "runs" / "2026-08-07" / "verdicts.json"
        cache.save(path)
        assert len(VerdictCache.load(path)) == len(cache)

    def test_absorb_detector(self):
        detector = ConflictDetector()
        detector.read_delete(Read("bib/book/title"), Delete("bib/book"))
        cache = VerdictCache()
        assert cache.absorb_detector(detector) == 1
        # The absorbed verdict pre-answers the matching matrix cell.
        analyzer = BatchAnalyzer(cache=cache)
        analyzer.analyze(
            {"titles": Read("bib/book/title"), "purge": Delete("bib/book")}
        )
        counters = analyzer.metrics()["counters"]
        assert counters.get("batch.pairs_cached", 0) == 1

    def test_fingerprints_keep_configurations_apart(self):
        cache = VerdictCache()
        op_a = CanonicalOp.from_operation(Insert("a/b", "<x/>"))
        op_b = CanonicalOp.from_operation(Insert("a/c", "<y/>"))
        key_small = VerdictCache.pair_key(
            DetectorConfig(exhaustive_cap=2).fingerprint(), op_a, op_b
        )
        key_large = VerdictCache.pair_key(
            DetectorConfig(exhaustive_cap=6).fingerprint(), op_a, op_b
        )
        assert key_small != key_large
        cache.put(key_small, Verdict.UNKNOWN)
        assert cache.get(key_large) is None


class TestBatchAnalyzer:
    def test_matches_reference_matrix(self):
        reference = reference_matrix(OPERATIONS)
        batch = BatchAnalyzer().analyze(OPERATIONS)
        assert_same_verdicts(reference, batch)

    def test_accepts_pair_iterables(self):
        matrix = BatchAnalyzer().analyze(list(OPERATIONS.items()))
        assert sorted(matrix.names) == sorted(OPERATIONS)

    def test_duplicate_names_rejected(self):
        pairs = [("op", Read("a/b")), ("op", Delete("a/b"))]
        with pytest.raises(ConflictEngineError):
            BatchAnalyzer().analyze(pairs)

    def test_dedup_decides_unique_pairs_once(self):
        catalogue = {f"r{i}": Read("bib/book/title") for i in range(4)}
        catalogue["purge"] = Delete("bib/book")
        analyzer = BatchAnalyzer()
        analyzer.analyze(catalogue)
        counters = analyzer.metrics()["counters"]
        # 4 read/read pairs are trivial; the 4 read-vs-delete pairs
        # collapse to one unique decision.
        assert counters["batch.pairs_total"] == 10
        assert counters["batch.pairs_trivial"] == 6
        assert counters["batch.pairs_unique"] == 1
        assert counters["batch.pairs_decided"] == 1

    def test_add_op_decides_only_new_row(self):
        analyzer = BatchAnalyzer()
        analyzer.analyze(OPERATIONS)
        before = analyzer.metrics()["counters"]["batch.pairs_total"]
        analyzer.add_op("audit", Read("bib//price"))
        counters = analyzer.metrics()["counters"]
        assert counters["batch.pairs_total"] - before == len(OPERATIONS)
        assert counters["batch.incremental_adds"] == 1
        assert "audit" in analyzer.matrix.names
        # The maintained matrix equals a from-scratch analysis.
        fresh = BatchAnalyzer().analyze(analyzer.operations)
        assert_same_verdicts(fresh, analyzer.matrix)

    def test_add_op_duplicate_name_rejected(self):
        analyzer = BatchAnalyzer()
        analyzer.analyze(OPERATIONS)
        with pytest.raises(ConflictEngineError):
            analyzer.add_op("titles", Read("x/y"))

    def test_remove_op(self):
        analyzer = BatchAnalyzer()
        analyzer.analyze(OPERATIONS)
        analyzer.remove_op("purge")
        assert "purge" not in analyzer.matrix.names
        assert all("purge" not in key for key in analyzer.matrix.verdicts)
        fresh = BatchAnalyzer().analyze(analyzer.operations)
        assert_same_verdicts(fresh, analyzer.matrix)

    def test_remove_unknown_name_rejected(self):
        with pytest.raises(ConflictEngineError):
            BatchAnalyzer().remove_op("ghost")

    def test_warm_detector_is_absorbed(self):
        detector = ConflictDetector()
        detector.read_delete(Read("bib/book/title"), Delete("bib/book"))
        analyzer = BatchAnalyzer(detector=detector)
        analyzer.analyze(
            {"titles": Read("bib/book/title"), "purge": Delete("bib/book")}
        )
        assert analyzer.metrics()["counters"].get("batch.pairs_cached", 0) == 1

    def test_shared_cache_across_analyzers(self):
        cache = VerdictCache()
        BatchAnalyzer(cache=cache).analyze(OPERATIONS)
        second = BatchAnalyzer(cache=cache)
        second.analyze(OPERATIONS)
        assert second.metrics()["counters"].get("batch.pairs_unique", 0) == 0

    def test_schedule_matches_functional_front(self):
        from repro.conflicts.schedule import parallel_schedule

        analyzer = BatchAnalyzer()
        analyzer.analyze(OPERATIONS)
        assert analyzer.schedule() == parallel_schedule(OPERATIONS)


class TestParallelEquivalence:
    def test_parallel_matches_serial_on_fixed_catalogue(self):
        serial = BatchAnalyzer(jobs=1).analyze(OPERATIONS)
        parallel = BatchAnalyzer(jobs=2).analyze(OPERATIONS)
        assert_same_verdicts(serial, parallel)

    def test_parallel_worker_metrics_absorbed(self):
        analyzer = BatchAnalyzer(jobs=2)
        analyzer.analyze(OPERATIONS)
        counters = analyzer.metrics()["counters"]
        if counters.get("batch.pool_failures"):
            pytest.skip("process pool unavailable in this environment")
        assert counters.get("batch.worker_chunks", 0) >= 1
        assert any(k.startswith("batch.worker_pairs{") for k in counters)
        assert analyzer.metrics()["gauges"]["batch.workers_used"] >= 1

    def test_parallel_worker_histograms_absorbed(self):
        """Workers ship bucket-exact histogram deltas; the parent's
        ``conflict.decide_ms`` distribution covers pool-decided pairs."""
        analyzer = BatchAnalyzer(jobs=2)
        analyzer.analyze(OPERATIONS)
        metrics = analyzer.metrics()
        if metrics["counters"].get("batch.pool_failures"):
            pytest.skip("process pool unavailable in this environment")
        decide = {
            k: v for k, v in metrics["histograms"].items()
            if k.startswith("conflict.decide_ms{")
        }
        assert decide, "no decide-latency histograms crossed the pool"
        total = sum(h["count"] for h in decide.values())
        assert total >= BatchAnalyzer.MIN_PARALLEL_PAIRS
        for hist in decide.values():
            assert sum(hist["buckets"].values()) == hist["count"]
            assert hist["p50"] is not None

    @pytest.mark.parametrize("seed", range(4))
    def test_parallel_matches_serial_property(self, seed):
        """Identical verdict matrices, serial vs parallel, for every seed."""
        from repro.workloads.generators import (
            random_delete,
            random_insert,
            random_read,
        )

        rng = random.Random(seed)
        catalogue = {}
        for index in range(7):
            roll = rng.random()
            if roll < 0.4:
                catalogue[f"op{index}"] = random_read(3, ("a", "b"), seed=rng)
            elif roll < 0.7:
                catalogue[f"op{index}"] = random_insert(
                    2, alphabet=("a", "b"), seed=rng, linear=True
                )
            else:
                catalogue[f"op{index}"] = random_delete(
                    2, ("a", "b"), seed=rng, linear=True
                )
        config = DetectorConfig(exhaustive_cap=3)
        serial = BatchAnalyzer(config, jobs=1).analyze(catalogue)
        parallel = BatchAnalyzer(config, jobs=2).analyze(catalogue)
        reference = reference_matrix(catalogue, ConflictDetector(config=config))
        assert_same_verdicts(serial, parallel)
        assert_same_verdicts(reference, serial)
