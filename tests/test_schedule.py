"""Tests for conflict matrices and parallel scheduling."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.schedule import conflict_matrix, parallel_schedule
from repro.conflicts.semantics import Verdict
from repro.operations.ops import Delete, Insert, Read
from repro.xml.isomorphism import isomorphic
from repro.xml.random_trees import bookstore

#: Shared detector so the expensive update-update answers are cached
#: across tests (the cache is keyed by canonical forms).
DETECTOR = ConflictDetector(exhaustive_cap=4)

OPERATIONS = {
    "titles": Read("bib/book/title"),
    "quantities": Read("//quantity"),
    "restock": Insert("bib/book", "<restock/>"),
    "purge": Delete("bib/book"),
    "strip-markers": Delete("bib/book/restock"),
}


class TestConflictMatrix:
    def test_reads_never_conflict(self):
        matrix = conflict_matrix(
            {"r1": Read("a/b"), "r2": Read("a/b"), "r3": Read("//x")}
        )
        for a, b in itertools.combinations(["r1", "r2", "r3"], 2):
            assert matrix.verdict(a, b) is Verdict.NO_CONFLICT

    def test_symmetry(self):
        matrix = conflict_matrix(OPERATIONS, DETECTOR)
        for a in OPERATIONS:
            for b in OPERATIONS:
                assert matrix.verdict(a, b) == matrix.verdict(b, a)

    def test_self_pairs_compatible(self):
        matrix = conflict_matrix(OPERATIONS, DETECTOR)
        for name in OPERATIONS:
            assert matrix.verdict(name, name) is Verdict.NO_CONFLICT

    def test_known_verdicts(self):
        matrix = conflict_matrix(OPERATIONS, DETECTOR)
        # Purging books removes titles and quantities.
        assert matrix.verdict("titles", "purge") is Verdict.CONFLICT
        assert matrix.verdict("quantities", "purge") is Verdict.CONFLICT
        # Restock markers do not touch titles.
        assert matrix.verdict("titles", "restock") is Verdict.NO_CONFLICT

    def test_compatible_with(self):
        matrix = conflict_matrix(OPERATIONS, DETECTOR)
        assert "restock" in matrix.compatible_with("titles")
        assert "purge" not in matrix.compatible_with("titles")

    def test_render_contains_all_names(self):
        matrix = conflict_matrix(OPERATIONS, DETECTOR)
        text = matrix.render()
        for name in OPERATIONS:
            assert name[:8] in text


class TestParallelSchedule:
    def test_batches_partition_operations(self):
        batches = parallel_schedule(OPERATIONS, DETECTOR)
        flat = [name for batch in batches for name in batch]
        assert sorted(flat) == sorted(OPERATIONS)

    def test_batches_internally_conflict_free(self):
        matrix = conflict_matrix(OPERATIONS, DETECTOR)
        for batch in parallel_schedule(OPERATIONS, DETECTOR):
            for a, b in itertools.combinations(batch, 2):
                assert not matrix.may_conflict(a, b), (a, b)

    def test_compatible_reads_share_a_batch(self):
        batches = parallel_schedule(
            {"r1": Read("a/b"), "r2": Read("a//c"), "r3": Read("//d")}
        )
        assert len(batches) == 1

    def test_conflicting_operations_separated(self):
        batches = parallel_schedule(
            {"read": Read("//quantity"), "purge": Delete("bib/book")}
        )
        assert len(batches) == 2

    def test_batch_members_commute_on_a_real_document(self):
        """Executing a batch's updates in any order gives isomorphic trees."""
        operations = {
            "restock": Insert("bib/book[.//quantity]", "<restock/>"),
            "tag": Insert("bib/book/title", "<checked/>"),
        }
        matrix = conflict_matrix(operations, DETECTOR)
        if matrix.may_conflict("restock", "tag"):
            pytest.skip("detector could not prove compatibility")
        doc = bookstore(10, seed=3)
        order_a = operations["tag"].apply(
            operations["restock"].apply(doc).tree
        ).tree
        order_b = operations["restock"].apply(
            operations["tag"].apply(doc).tree
        ).tree
        assert isomorphic(order_a, order_b)

    def test_detector_cache_reused(self):
        detector = ConflictDetector()
        conflict_matrix(OPERATIONS, detector)
        before = detector.cache_misses
        conflict_matrix(OPERATIONS, detector)
        assert detector.cache_misses == before  # all answers cached

class TestEdgeCases:
    def test_empty_catalogue(self):
        matrix = conflict_matrix({})
        assert matrix.names == []
        assert matrix.verdicts == {}
        assert parallel_schedule({}) == []

    def test_single_operation(self):
        matrix = conflict_matrix({"only": Delete("a/b")})
        assert matrix.names == ["only"]
        assert matrix.verdicts == {}
        assert parallel_schedule({"only": Delete("a/b")}) == [["only"]]

    def test_duplicate_names_rejected(self):
        from repro.conflicts.batch import BatchAnalyzer
        from repro.errors import ConflictEngineError

        pairs = [("op", Read("a/b")), ("op", Read("a/c"))]
        with pytest.raises(ConflictEngineError):
            BatchAnalyzer().analyze(pairs)

    def test_unknown_treated_as_conflict(self):
        """Undecided pairs must not share a batch (sound scheduling)."""
        from repro.conflicts.batch import BatchAnalyzer
        from repro.conflicts.detector import DetectorConfig

        catalogue = {
            "i1": Insert("a/b", "<x/>"),
            "i2": Insert("a/b", "<y/>"),
        }
        analyzer = BatchAnalyzer(DetectorConfig(exhaustive_cap=1))
        matrix = analyzer.analyze(catalogue)
        assert matrix.verdict("i1", "i2") is Verdict.UNKNOWN
        assert matrix.may_conflict("i1", "i2")
        assert analyzer.schedule() == [["i1"], ["i2"]]


class TestRandomCatalogues:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_catalogues_schedule_validly(self, seed):
        from repro.workloads.generators import random_delete, random_insert, random_read

        rng = random.Random(seed)
        operations = {}
        for index in range(5):
            roll = rng.random()
            if roll < 0.4:
                operations[f"op{index}"] = random_read(3, ("a", "b"), seed=rng)
            elif roll < 0.7:
                operations[f"op{index}"] = random_insert(
                    2, alphabet=("a", "b"), seed=rng, linear=True
                )
            else:
                operations[f"op{index}"] = random_delete(
                    2, ("a", "b"), seed=rng, linear=True
                )
        detector = ConflictDetector(exhaustive_cap=3)
        matrix = conflict_matrix(operations, detector)
        batches = parallel_schedule(operations, detector)
        for batch in batches:
            for a, b in itertools.combinations(batch, 2):
                assert not matrix.may_conflict(a, b), f"seed {seed}"
