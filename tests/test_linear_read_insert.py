"""Tests for the PTIME read-insert algorithm (Theorem 2, Corollary 2)."""

from __future__ import annotations

import pytest

from repro.conflicts.linear import detect_read_insert_linear, find_cut_edge
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.errors import NotLinearError
from repro.operations.ops import Insert, Read
from repro.patterns.xpath import parse_xpath
from repro.xml.parser import parse


class TestKnownNodeConflicts:
    @pytest.mark.parametrize(
        "read,insert_path,x,expected",
        [
            # The paper's running example: insert <C/> under B children.
            ("*//C", "*/B", "<C/>", True),
            ("*//A", "*/B", "<C/>", False),
            ("*//D", "*/B", "<C/>", False),
            # Functional example: */A grandchildren; insert under B child
            # adds C at depth 2 but labeled C, not A.
            ("*/*/A", "*/B", "<C/>", False),
            ("*/*/C", "*/B", "<C/>", True),  # C lands exactly at depth 2
            ("*/B/C", "*/B", "<C/>", True),
            ("*/D/C", "*/B", "<C/>", False),  # C's parent is B, not D
            # Reads that need structure deeper than X provides.
            ("*//C/d", "*/B", "<C/>", False),
            ("*//C/d", "*/B", "<C><d/></C>", True),
            # Descendant reads reach into deep X.
            ("a//z", "a/b", "<x><y><z/></y></x>", True),
            # Child-edge read into X needs the match at X's root.
            ("a/b/x", "a/b", "<x><y/></x>", True),
            ("a/b/y", "a/b", "<x><y/></x>", False),
            ("a//y", "a/b", "<x><y/></x>", True),
            # Insertion point unreachable by the read prefix.
            ("q/r", "a/b", "<r/>", False),
        ],
    )
    def test_cases(self, read, insert_path, x, expected):
        report = detect_read_insert_linear(Read(read), Insert(insert_path, x))
        assert report.verdict is (
            Verdict.CONFLICT if expected else Verdict.NO_CONFLICT
        ), f"read={read} insert={insert_path},{x}"

    def test_witness_returned_and_valid(self):
        read = Read("*//C")
        insert = Insert("*/B", "<C/>")
        report = detect_read_insert_linear(read, insert)
        assert report.witness is not None
        assert is_witness(report.witness, read, insert, ConflictKind.NODE)

    def test_branching_read_rejected(self):
        with pytest.raises(NotLinearError):
            detect_read_insert_linear(Read("a[x]/b"), Insert("a/b", "<c/>"))


class TestCutEdge:
    def test_cut_edge_found(self):
        rp = parse_xpath("a//c")
        trunk = parse_xpath("a/b")
        x = parse("<c/>")
        cut = find_cut_edge(rp, trunk, x)
        assert cut is not None
        upper, lower = cut
        assert rp.label(lower) == "c"

    def test_no_cut_edge(self):
        rp = parse_xpath("a//d")
        assert find_cut_edge(rp, parse_xpath("a/b"), parse("<c/>")) is None

    def test_child_edge_requires_root_match(self):
        rp = parse_xpath("a/b/y")  # child edge into y
        trunk = parse_xpath("a/b")
        x = parse("<x><y/></x>")  # y is not the root of X
        assert find_cut_edge(rp, trunk, x) is None

    def test_descendant_edge_matches_inside_x(self):
        rp = parse_xpath("a//y")
        trunk = parse_xpath("a/b")
        x = parse("<x><y/></x>")
        assert find_cut_edge(rp, trunk, x) is not None


class TestBranchingInsertPattern:
    """Corollary 2: the insert pattern may branch."""

    def test_branching_insert_conflict(self):
        read = Read("a//c")
        insert = Insert("a[p]/b[q]", "<c/>")
        report = detect_read_insert_linear(read, insert)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, insert, ConflictKind.NODE)

    def test_branching_insert_no_conflict(self):
        read = Read("a/d")
        insert = Insert("a[p]/b[q]", "<c/>")
        report = detect_read_insert_linear(read, insert)
        assert report.verdict is Verdict.NO_CONFLICT

    def test_deep_branching(self):
        read = Read("a/b//z")
        insert = Insert("a[.//m]/b[n[o]]", "<q><z/></q>")
        report = detect_read_insert_linear(read, insert)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, insert, ConflictKind.NODE)


class TestTreeSemantics:
    def test_paper_section3_example(self):
        """R returns the root; I inserts below: tree conflict only."""
        read = Read("a")
        insert = Insert("a/B", "<x/>")
        node_report = detect_read_insert_linear(read, insert, ConflictKind.NODE)
        tree_report = detect_read_insert_linear(read, insert, ConflictKind.TREE)
        assert node_report.verdict is Verdict.NO_CONFLICT
        assert tree_report.verdict is Verdict.CONFLICT
        assert is_witness(tree_report.witness, read, insert, ConflictKind.TREE)

    def test_disjoint_insert_no_tree_conflict(self):
        read = Read("a/b")
        insert = Insert("a/c", "<x/>")
        report = detect_read_insert_linear(read, insert, ConflictKind.TREE)
        assert report.verdict is Verdict.NO_CONFLICT

    def test_insert_below_read_result(self):
        read = Read("a/b")
        insert = Insert("a/b/c", "<x/>")
        report = detect_read_insert_linear(read, insert, ConflictKind.TREE)
        assert report.verdict is Verdict.CONFLICT


class TestValueSemantics:
    def test_value_matches_tree_decision_linear(self):
        pairs = [
            ("a", "a/B"),
            ("a/b", "a/b/c"),
            ("a/b", "a/c"),
            ("*//C", "*/B"),
            ("a//z", "a/b"),
        ]
        for read_path, insert_path in pairs:
            read = Read(read_path)
            insert = Insert(insert_path, "<C/>")
            tree_v = detect_read_insert_linear(read, insert, ConflictKind.TREE).verdict
            value_v = detect_read_insert_linear(read, insert, ConflictKind.VALUE).verdict
            assert tree_v == value_v, f"{read_path} vs {insert_path}"

    def test_value_witness_verified(self):
        read = Read("a/b")
        insert = Insert("a/b/c", "<x/>")
        report = detect_read_insert_linear(read, insert, ConflictKind.VALUE)
        assert report.verdict is Verdict.CONFLICT
        if report.witness is not None:
            assert is_witness(report.witness, read, insert, ConflictKind.VALUE)


class TestEdgeCases:
    def test_single_node_read_never_node_conflicts(self):
        report = detect_read_insert_linear(Read("a"), Insert("a//b", "<a/>"))
        assert report.verdict is Verdict.NO_CONFLICT

    def test_inserting_tree_matching_whole_read(self):
        read = Read("a/b/c/d")
        insert = Insert("a", "<b><c><d/></c></b>")
        report = detect_read_insert_linear(read, insert)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, insert, ConflictKind.NODE)

    def test_wildcard_x_interaction(self):
        read = Read("*/*/*")
        insert = Insert("*/*", "<anything/>")
        report = detect_read_insert_linear(read, insert)
        assert report.verdict is Verdict.CONFLICT
