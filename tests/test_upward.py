"""Tests for the upward-axes fragment (§6's satisfiability remark)."""

from __future__ import annotations

import pytest

from repro.errors import PatternError
from repro.patterns.pattern import WILDCARD
from repro.patterns.upward import (
    UpwardAxis,
    UpwardPattern,
    enumerate_upward_embeddings,
    evaluate_upward,
    find_model_upward,
    is_satisfiable_upward,
    satisfiability_via_conflict_upward,
)
from repro.xml.tree import build_tree


def _unsatisfiable_parent_of_root() -> UpwardPattern:
    """Root labeled a; its child must have the root itself as image's
    parent... i.e. a PARENT edge from the root demands a parent of the
    document root: impossible."""
    p = UpwardPattern("a")
    node = p.add_child(p.root, "b", UpwardAxis.PARENT)
    p.set_output(node)
    return p


def _label_clash() -> UpwardPattern:
    """x child of root a, whose parent must be labeled b — but the parent
    is the root, labeled a: unsatisfiable."""
    p = UpwardPattern("a")
    x = p.add_child(p.root, WILDCARD, UpwardAxis.CHILD)
    clash = p.add_child(x, "b", UpwardAxis.PARENT)
    p.set_output(clash)
    return p


class TestEvaluation:
    def test_parent_axis(self):
        t = build_tree(("a", ("b", "c")))
        p = UpwardPattern("a")
        b = p.add_child(p.root, "b", UpwardAxis.CHILD)
        c = p.add_child(b, "c", UpwardAxis.CHILD)
        back = p.add_child(c, "b", UpwardAxis.PARENT)
        p.set_output(back)
        result = evaluate_upward(p, t)
        b_node = t.children(t.root)[0]
        assert result == {b_node}

    def test_ancestor_axis(self):
        t = build_tree(("a", ("b", ("c", "d"))))
        p = UpwardPattern("a")
        d = p.add_child(p.root, "d", UpwardAxis.DESCENDANT)
        anc = p.add_child(d, "b", UpwardAxis.ANCESTOR)
        p.set_output(anc)
        result = evaluate_upward(p, t)
        assert len(result) == 1
        assert t.label(result.pop()) == "b"

    def test_downward_axes_agree_with_core_evaluator(self):
        from repro.patterns.embedding import evaluate
        from repro.patterns.xpath import parse_xpath

        t = build_tree(("a", ("b", "c"), "b"))
        upward = UpwardPattern("a")
        b = upward.add_child(upward.root, "b", UpwardAxis.CHILD)
        c = upward.add_child(b, "c", UpwardAxis.CHILD)
        upward.set_output(c)
        core = parse_xpath("a/b/c")
        assert evaluate_upward(upward, t) == evaluate(core, t)

    def test_embedding_enumeration_limit(self):
        t = build_tree(("a", "b", "b"))
        p = UpwardPattern("a")
        b = p.add_child(p.root, "b", UpwardAxis.CHILD)
        p.set_output(b)
        assert len(list(enumerate_upward_embeddings(p, t))) == 2
        assert len(list(enumerate_upward_embeddings(p, t, limit=1))) == 1


class TestSatisfiability:
    def test_downward_patterns_always_satisfiable(self):
        p = UpwardPattern("a")
        b = p.add_child(p.root, "b", UpwardAxis.DESCENDANT)
        p.set_output(b)
        assert is_satisfiable_upward(p)

    def test_parent_of_root_unsatisfiable(self):
        assert not is_satisfiable_upward(_unsatisfiable_parent_of_root())

    def test_label_clash_unsatisfiable(self):
        assert not is_satisfiable_upward(_label_clash())

    def test_consistent_upward_pattern_satisfiable(self):
        # x below a, with an ancestor labeled a: the root itself works.
        p = UpwardPattern("a")
        x = p.add_child(p.root, "x", UpwardAxis.DESCENDANT)
        anc = p.add_child(x, "a", UpwardAxis.ANCESTOR)
        p.set_output(anc)
        model = find_model_upward(p)
        assert model is not None
        assert evaluate_upward(p, model)

    def test_model_size_bound(self):
        p = UpwardPattern("a")
        x = p.add_child(p.root, "x", UpwardAxis.DESCENDANT)
        back = p.add_child(x, WILDCARD, UpwardAxis.PARENT)
        p.set_output(back)
        model = find_model_upward(p)
        assert model is not None
        assert model.size <= p.size


class TestConflictEncoding:
    def test_satisfiable_pattern_yields_conflict_witness(self):
        from repro.conflicts.satisfiability import universal_read

        p = UpwardPattern("a")
        x = p.add_child(p.root, "x", UpwardAxis.DESCENDANT)
        p.set_output(x)
        ok, witness = satisfiability_via_conflict_upward(p)
        assert ok and witness is not None
        # Demonstrate the conflict concretely: delete the selected subtree
        # and watch the universal read lose nodes.
        read = universal_read()
        before = read.apply(witness)
        target = next(iter(evaluate_upward(p, witness)))
        pruned = witness.copy()
        pruned.delete_subtree(target)
        after = read.apply(pruned)
        assert before != after

    def test_unsatisfiable_pattern_yields_no_conflict(self):
        ok, witness = satisfiability_via_conflict_upward(_label_clash())
        assert not ok and witness is None

    def test_root_output_rejected(self):
        p = UpwardPattern("a")
        with pytest.raises(PatternError):
            satisfiability_via_conflict_upward(p)

    def test_ancestor_output_needs_nonroot_selection(self):
        # Output can only ever be the root -> the deletion encoding says no.
        p = UpwardPattern("a")
        x = p.add_child(p.root, "x", UpwardAxis.CHILD)
        anc = p.add_child(x, "a", UpwardAxis.ANCESTOR)
        p.set_output(anc)
        assert is_satisfiable_upward(p)  # satisfiable in itself...
        ok, _ = satisfiability_via_conflict_upward(p)
        # ...but the only possible output image is the root, which a
        # deletion may not remove.
        assert not ok
