"""Unit tests for the XPath parser/printer (:mod:`repro.patterns.xpath`)."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.patterns.pattern import WILDCARD, Axis
from repro.patterns.xpath import parse_xpath, to_xpath


class TestSpine:
    def test_single_label(self):
        p = parse_xpath("a")
        assert p.size == 1
        assert p.label(p.root) == "a"
        assert p.output == p.root

    def test_child_chain(self):
        p = parse_xpath("a/b/c")
        assert p.size == 3
        assert p.is_linear
        assert [p.label(n) for n in p.spine()] == ["a", "b", "c"]
        assert all(
            p.axis(n) is Axis.CHILD for n in p.spine()[1:]
        )

    def test_descendant_axis(self):
        p = parse_xpath("a//b")
        leaf = p.spine()[-1]
        assert p.axis(leaf) is Axis.DESCENDANT

    def test_leading_slash_equivalent(self):
        assert parse_xpath("/a/b") == parse_xpath("a/b")

    def test_leading_double_slash_adds_wildcard_root(self):
        p = parse_xpath("//book")
        assert p.size == 2
        assert p.label(p.root) == WILDCARD
        assert p.axis(p.spine()[1]) is Axis.DESCENDANT
        assert p.label(p.output) == "book"

    def test_wildcard_step(self):
        p = parse_xpath("a/*/b")
        assert p.label(p.spine()[1]) == WILDCARD

    def test_output_is_final_spine_step(self):
        p = parse_xpath("a/b[c]")
        assert p.label(p.output) == "b"


class TestPredicates:
    def test_child_predicate(self):
        p = parse_xpath("a[b]")
        assert p.size == 2
        b = next(n for n in p.nodes() if p.label(n) == "b")
        assert p.axis(b) is Axis.CHILD
        assert p.output == p.root

    def test_descendant_predicate(self):
        p = parse_xpath("a[.//b]")
        b = next(n for n in p.nodes() if p.label(n) == "b")
        assert p.axis(b) is Axis.DESCENDANT

    def test_dot_slash_predicate(self):
        p = parse_xpath("a[./b]")
        assert p == parse_xpath("a[b]")

    def test_multiple_predicates(self):
        p = parse_xpath("a[b][c]")
        labels = {p.label(c) for c in p.children(p.root)}
        assert labels == {"b", "c"}

    def test_path_predicate(self):
        p = parse_xpath("a[b/c]")
        assert p.size == 3
        b = next(n for n in p.nodes() if p.label(n) == "b")
        assert [p.label(c) for c in p.children(b)] == ["c"]

    def test_nested_predicates(self):
        p = parse_xpath("a[b[c][d]]")
        assert p.size == 4

    def test_figure2_pattern(self):
        """The paper's Figure 2: a[.//c]/b[d][*//f]."""
        p = parse_xpath("a[.//c]/b[d][*//f]")
        assert p.size == 6
        assert not p.is_linear
        assert p.label(p.output) == "b"
        c = next(n for n in p.nodes() if p.label(n) == "c")
        assert p.axis(c) is Axis.DESCENDANT
        f = next(n for n in p.nodes() if p.label(n) == "f")
        assert p.axis(f) is Axis.DESCENDANT
        star = p.parent(f)
        assert p.label(star) == WILDCARD
        assert p.axis(star) is Axis.CHILD

    def test_predicate_in_mid_spine(self):
        p = parse_xpath("a[x]/b[y]/c")
        assert p.size == 5
        assert p.label(p.output) == "c"


class TestValueComparisons:
    def test_comparison_attaches_test(self):
        p = parse_xpath("book[.//quantity < 10]")
        quantity = next(n for n in p.nodes() if p.label(n) == "quantity")
        test = p.value_test(quantity)
        assert test is not None
        assert test.op == "<" and test.value == 10

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "=", "!="])
    def test_all_operators(self, op):
        p = parse_xpath(f"a[b {op} 3]")
        b = next(n for n in p.nodes() if p.label(n) == "b")
        assert p.value_test(b).op == op

    def test_negative_and_float_values(self):
        p = parse_xpath("a[b < -1.5]")
        b = next(n for n in p.nodes() if p.label(n) == "b")
        assert p.value_test(b).value == -1.5

    def test_paper_motivating_expression(self):
        p = parse_xpath("//book[.//quantity < 10]")
        assert p.has_value_tests()
        assert p.label(p.output) == "book"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "/",
            "a/",
            "a//",
            "a[",
            "a[]",
            "a]b",
            "a[b",
            "a[b < ]",
            "a b",
            "a[b <]",
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "*",
            "a/b/c",
            "a//b",
            "//book",
            "a/*/b",
            "a[b]",
            "a[.//b]",
            "a[b/c][d]/e//f",
            "a[.//c]/b[d][*[.//f]]",
            "a[b[c][.//d]]//e",
            "book[.//quantity < 10]",
        ],
    )
    def test_parse_render_parse_fixpoint(self, text):
        p = parse_xpath(text)
        rendered = to_xpath(p)
        assert parse_xpath(rendered) == p

    def test_render_uses_descendant_marker(self):
        assert to_xpath(parse_xpath("a//b")) == "a//b"

    def test_render_predicates(self):
        out = to_xpath(parse_xpath("a[b]"))
        assert out == "a[b]"

    def test_render_internal_output(self):
        p = parse_xpath("a/b/c")
        p.set_output(p.spine()[1])
        rendered = to_xpath(p)
        # Spine ends at the output; the tail becomes a predicate.
        assert parse_xpath(rendered) == p
