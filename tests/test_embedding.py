"""Unit tests for embedding evaluation (:mod:`repro.patterns.embedding`).

Includes a brute-force cross-validation: the efficient two-phase evaluator
must agree with exhaustive embedding enumeration on randomized instances.
"""

from __future__ import annotations

import random

import pytest

from repro.patterns.embedding import (
    embeds,
    embeds_at,
    enumerate_embeddings,
    evaluate,
    evaluate_bruteforce,
    evaluate_subtrees,
    find_embedding,
    match_sets,
)
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import random_branching_pattern, random_linear_pattern
from repro.xml.random_trees import random_tree
from repro.xml.tree import build_tree


class TestEvaluateBasics:
    def test_root_only_pattern(self):
        t = build_tree(("a", "b"))
        assert evaluate(parse_xpath("a"), t) == {t.root}
        assert evaluate(parse_xpath("b"), t) == set()

    def test_wildcard_root(self):
        t = build_tree(("anything", "b"))
        assert evaluate(parse_xpath("*"), t) == {t.root}

    def test_child_axis(self):
        t = build_tree(("a", "b", ("c", "b")))
        result = evaluate(parse_xpath("a/b"), t)
        assert result == {t.children(t.root)[0]}

    def test_descendant_axis_is_proper(self):
        t = build_tree(("a", ("a", "x")))
        inner = t.children(t.root)[0]
        # a//a: only the inner 'a' is a proper descendant.
        assert evaluate(parse_xpath("a//a"), t) == {inner}

    def test_descendant_finds_deep_nodes(self):
        t = build_tree(("a", ("x", ("y", ("z", "b")))))
        result = evaluate(parse_xpath("a//b"), t)
        assert len(result) == 1

    def test_predicate_filters(self):
        t = build_tree(("a", ("b", "c"), "b"))
        with_c, without_c = t.children(t.root)
        assert evaluate(parse_xpath("a/b[c]"), t) == {with_c}

    def test_descendant_predicate(self):
        t = build_tree(("a", ("b", ("x", "c")), "b"))
        target = t.children(t.root)[0]
        assert evaluate(parse_xpath("a/b[.//c]"), t) == {target}

    def test_multiple_results(self):
        t = build_tree(("a", "b", "b", ("c", "b")))
        assert len(evaluate(parse_xpath("a//b"), t)) == 3

    def test_figure2(self, figure2_tree):
        p = parse_xpath("a[.//c]/b[d][*//f]")
        result = evaluate(p, figure2_tree)
        assert len(result) == 1
        (selected,) = result
        assert figure2_tree.label(selected) == "b"

    def test_internal_output_node(self):
        # Select 'b' nodes that have a 'c' below: output mid-pattern.
        p = parse_xpath("a/b/c")
        p.set_output(p.spine()[1])
        t = build_tree(("a", ("b", "c"), "b"))
        assert evaluate(p, t) == {t.children(t.root)[0]}

    def test_value_test_filters(self):
        t = build_tree(("a", ("q", "#text:5"), ("q", "#text:50")))
        p = parse_xpath("a[q < 10]")
        assert evaluate(p, t) == {t.root}
        p_high = parse_xpath("a[q > 100]")
        assert evaluate(p_high, t) == set()

    def test_value_test_on_non_numeric_text_fails(self):
        t = build_tree(("a", ("q", "#text:hello")))
        assert evaluate(parse_xpath("a[q < 10]"), t) == set()


class TestMatchSets:
    def test_match_ignores_ancestors(self):
        t = build_tree(("r", ("a", "b")))
        p = parse_xpath("a/b")
        sets = match_sets(p, t)
        a_node = t.children(t.root)[0]
        assert a_node in sets[p.root]

    def test_match_respects_subtree_constraints(self):
        t = build_tree(("r", ("a", "b"), "a"))
        p = parse_xpath("a/b")
        sets = match_sets(p, t)
        with_b, without_b = t.children(t.root)
        assert with_b in sets[p.root]
        assert without_b not in sets[p.root]


class TestEmbedsAt:
    def test_root_anchored(self):
        t = build_tree(("a", "b"))
        assert embeds(parse_xpath("a/b"), t)
        assert not embeds(parse_xpath("b"), t)

    def test_anchored_at_inner_node(self):
        t = build_tree(("r", ("a", "b")))
        a = t.children(t.root)[0]
        assert embeds_at(parse_xpath("a/b"), t, root_at=a)
        assert not embeds_at(parse_xpath("a/b"), t, root_at=t.root)

    def test_anywhere(self):
        t = build_tree(("r", ("x", ("a", "b"))))
        assert embeds_at(parse_xpath("a/b"), t, anywhere=True)
        assert not embeds_at(parse_xpath("a/z"), t, anywhere=True)


class TestFindEmbedding:
    def test_embedding_is_valid(self, figure2_tree):
        p = parse_xpath("a[.//c]/b[d][*//f]")
        emb = find_embedding(p, figure2_tree)
        assert emb is not None
        _assert_valid_embedding(p, figure2_tree, emb)

    def test_output_pinning(self):
        t = build_tree(("a", "b", "b"))
        p = parse_xpath("a/b")
        first, second = t.children(t.root)
        for target in (first, second):
            emb = find_embedding(p, t, output_at=target)
            assert emb is not None and emb[p.output] == target

    def test_impossible_pin_returns_none(self):
        t = build_tree(("a", "b"))
        assert find_embedding(parse_xpath("a/b"), t, output_at=t.root) is None

    def test_no_embedding_returns_none(self):
        t = build_tree(("a", "b"))
        assert find_embedding(parse_xpath("x/y"), t) is None

    def test_descendant_spine_pin(self):
        t = build_tree(("a", ("x", ("b", "c"))))
        p = parse_xpath("a//b/c")
        deep_b = t.children(t.children(t.root)[0])[0]
        emb = find_embedding(p, t)
        assert emb is not None
        assert emb[p.spine()[1]] == deep_b


class TestEnumerateEmbeddings:
    def test_counts_all(self):
        t = build_tree(("a", "b", "b"))
        embeddings = list(enumerate_embeddings(parse_xpath("a/b"), t))
        assert len(embeddings) == 2

    def test_limit(self):
        t = build_tree(("a", "b", "b", "b"))
        embeddings = list(enumerate_embeddings(parse_xpath("a/b"), t, limit=2))
        assert len(embeddings) == 2

    def test_each_is_valid(self, figure2_tree):
        p = parse_xpath("a[.//c]/b[d][*//f]")
        for emb in enumerate_embeddings(p, figure2_tree):
            _assert_valid_embedding(p, figure2_tree, emb)


class TestCrossValidation:
    """The efficient evaluator must agree with brute-force enumeration."""

    @pytest.mark.parametrize("seed", range(30))
    def test_linear_patterns_random(self, seed):
        rng = random.Random(seed)
        t = random_tree(rng.randint(1, 12), ("a", "b", "c"), seed=rng)
        p = random_linear_pattern(rng.randint(1, 4), ("a", "b", "c"), seed=rng)
        assert evaluate(p, t) == evaluate_bruteforce(p, t), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(30))
    def test_branching_patterns_random(self, seed):
        rng = random.Random(seed + 1000)
        t = random_tree(rng.randint(1, 10), ("a", "b"), seed=rng)
        p = random_branching_pattern(
            rng.randint(1, 5), ("a", "b"), seed=rng, output="any"
        )
        assert evaluate(p, t) == evaluate_bruteforce(p, t), f"seed {seed}"


class TestEvaluateSubtrees:
    def test_subtrees_preserve_ids(self):
        t = build_tree(("a", ("b", "c")))
        subtrees = evaluate_subtrees(parse_xpath("a/b"), t)
        assert len(subtrees) == 1
        sub = subtrees[0]
        assert sub.root == t.children(t.root)[0]
        assert sub.size == 2


def _assert_valid_embedding(pattern, tree, embedding):
    from repro.patterns.pattern import Axis

    assert embedding[pattern.root] == tree.root
    for pnode in pattern.nodes():
        tnode = embedding[pnode]
        if not pattern.is_wildcard(pnode):
            assert pattern.label(pnode) == tree.label(tnode)
        parent = pattern.parent(pnode)
        if parent is None:
            continue
        axis = pattern.axis(pnode)
        if axis is Axis.CHILD:
            assert tree.parent(tnode) == embedding[parent]
        else:
            assert tree.is_ancestor(embedding[parent], tnode)
