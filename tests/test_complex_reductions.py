"""Tests for the update-update NP-hardness gadgets (Section 6)."""

from __future__ import annotations

import random

import pytest

from repro.conflicts.complex import (
    find_commutativity_witness_exhaustive,
    is_commutativity_witness,
)
from repro.conflicts.complex_reductions import (
    commutativity_witness_from_noncontainment,
    insert_delete_gadget,
    insert_insert_gadget,
)
from repro.patterns.containment import contains, non_containment_witness
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import containment_pair

#: Pairs with known containment status and small counterexamples.
KNOWN = [
    ("a/b", "a//b", True),
    ("a//b", "a/b", False),
    ("a/b", "a/*", True),
    ("a/*", "a/b", False),
    ("a[b][c]", "a[b]", True),
    ("a[b]", "a[b][c]", False),
    ("a/b/c", "a//c", True),
    ("a//c", "a/b/c", False),
]


class TestInsertInsertGadget:
    @pytest.mark.parametrize("p,q,contained", KNOWN)
    def test_noncontainment_implies_conflict(self, p, q, contained):
        pp, qq = parse_xpath(p), parse_xpath(q)
        first, second, labels = insert_insert_gadget(pp, qq)
        if contained:
            return
        t_p = non_containment_witness(pp, qq)
        witness = commutativity_witness_from_noncontainment(
            t_p, qq.model(), labels
        )
        assert is_commutativity_witness(witness, first, second), (
            f"p={p} p'={q}: the gadget inserts must fail to commute"
        )

    @pytest.mark.parametrize(
        "p,q", [(p, q) for p, q, contained in KNOWN if contained]
    )
    def test_containment_implies_commutation(self, p, q):
        """When p ⊆ p', no small tree separates the two orders."""
        pp, qq = parse_xpath(p), parse_xpath(q)
        first, second, _ = insert_insert_gadget(pp, qq)
        witness = find_commutativity_witness_exhaustive(first, second, max_size=4)
        assert witness is None, (
            f"p={p} ⊆ p'={q} but the gadget inserts conflict:\n"
            f"{witness and witness.sketch()}"
        )

    def test_orders_differ_concretely(self):
        pp, qq = parse_xpath("a//b"), parse_xpath("a/b")
        first, second, labels = insert_insert_gadget(pp, qq)
        t_p = non_containment_witness(pp, qq)
        witness = commutativity_witness_from_noncontainment(t_p, qq.model(), labels)
        order_a = second.apply(first.apply(witness).tree).tree
        order_b = first.apply(second.apply(witness).tree).tree
        deltas_a = sum(
            1 for n in order_a.children(order_a.root)
            if order_a.label(n) == labels.delta
        )
        deltas_b = sum(
            1 for n in order_b.children(order_b.root)
            if order_b.label(n) == labels.delta
        )
        assert deltas_a == deltas_b + 1  # I1-first enables the δ insertion


class TestInsertDeleteGadget:
    @pytest.mark.parametrize("p,q,contained", KNOWN)
    def test_noncontainment_implies_conflict(self, p, q, contained):
        pp, qq = parse_xpath(p), parse_xpath(q)
        first, second, labels = insert_delete_gadget(pp, qq)
        if contained:
            return
        t_p = non_containment_witness(pp, qq)
        witness = commutativity_witness_from_noncontainment(
            t_p, qq.model(), labels
        )
        assert is_commutativity_witness(witness, first, second), (
            f"p={p} p'={q}: the insert/delete pair must fail to commute"
        )

    @pytest.mark.parametrize(
        "p,q", [(p, q) for p, q, contained in KNOWN if contained]
    )
    def test_containment_implies_commutation(self, p, q):
        pp, qq = parse_xpath(p), parse_xpath(q)
        first, second, _ = insert_delete_gadget(pp, qq)
        witness = find_commutativity_witness_exhaustive(first, second, max_size=4)
        assert witness is None, (
            f"p={p} ⊆ p'={q} but the gadget pair conflicts:\n"
            f"{witness and witness.sketch()}"
        )

    def test_delete_fires_only_after_insert(self):
        pp, qq = parse_xpath("a//b"), parse_xpath("a/b")
        first, second, labels = insert_delete_gadget(pp, qq)
        t_p = non_containment_witness(pp, qq)
        witness = commutativity_witness_from_noncontainment(t_p, qq.model(), labels)
        # insert-then-delete removes the δ child; delete-then-insert keeps it.
        after_id = second.apply(first.apply(witness).tree).tree
        after_di = first.apply(second.apply(witness).tree).tree
        has_delta = lambda t: any(  # noqa: E731
            t.label(n) == labels.delta for n in t.children(t.root)
        )
        assert not has_delta(after_id)
        assert has_delta(after_di)


class TestRandomizedGadgets:
    @pytest.mark.parametrize("seed", range(15))
    def test_insert_insert_random(self, seed):
        rng = random.Random(seed)
        p, q = containment_pair(rng.randint(1, 3), ("a", "b"), seed=rng)
        if contains(p, q):
            return
        first, second, labels = insert_insert_gadget(p, q)
        t_p = non_containment_witness(p, q)
        witness = commutativity_witness_from_noncontainment(t_p, q.model(), labels)
        assert is_commutativity_witness(witness, first, second), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(15))
    def test_insert_delete_random(self, seed):
        rng = random.Random(seed + 400)
        p, q = containment_pair(rng.randint(1, 3), ("a", "b"), seed=rng)
        if contains(p, q):
            return
        first, second, labels = insert_delete_gadget(p, q)
        t_p = non_containment_witness(p, q)
        witness = commutativity_witness_from_noncontainment(t_p, q.model(), labels)
        assert is_commutativity_witness(witness, first, second), f"seed {seed}"
