"""Tests for the observability layer (:mod:`repro.obs`) and its hooks.

Covers the tracing spans (nesting, timing, sinks), the metrics registry
(counters/gauges/histograms, snapshot/reset), the engine instrumentation
(detector dispatch paths, cache counters, general-engine search counters),
the backward-compatibility contract on ``ConflictReport.stats``, and the
``--stats`` / ``--trace`` CLI surface.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import random
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import main
from repro.conflicts.detector import ConflictDetector
from repro.conflicts.general import decide_conflict
from repro.conflicts.semantics import Verdict
from repro.obs import trace as trace_module
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Histogram,
    bucket_bounds,
    bucket_index,
    histogram_delta,
    quantile_from_snapshot,
)
from repro.obs.report import exact_percentile
from repro.operations.ops import Delete, Insert, Read


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing off, no bound request id,
    and global metrics clear."""
    obs.disable()
    obs.set_request_id(None)
    obs.reset_global_metrics()
    yield
    obs.disable()
    obs.set_request_id(None)
    obs.reset_global_metrics()


# ----------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_by_default_returns_noop(self):
        assert not obs.enabled()
        sp = obs.span("anything", a=1)
        assert sp is obs.span("something-else")  # the shared no-op singleton

    def test_noop_span_accepts_the_full_interface(self):
        with obs.span("x", a=1) as sp:
            sp.set("k", "v")  # must not raise and must not record

    def test_span_records_name_attrs_and_duration(self):
        with obs.tracing() as ring:
            with obs.span("unit.work", size=3) as sp:
                time.sleep(0.002)
                sp.set("late", True)
        (record,) = ring.spans()
        assert record["name"] == "unit.work"
        assert record["attrs"] == {"size": 3, "late": True}
        assert record["dur_ms"] >= 1.0
        assert record["depth"] == 0

    def test_span_nesting_depths(self):
        with obs.tracing() as ring:
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        pass
        by_name = {r["name"]: r for r in ring.spans()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["depth"] == 1
        assert by_name["inner"]["depth"] == 2
        # Emission order is completion order: inner closes first.
        assert [r["name"] for r in ring.spans()] == ["inner", "middle", "outer"]

    def test_exception_inside_span_is_recorded_and_stack_unwound(self):
        with obs.tracing() as ring:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
            with obs.span("after"):
                pass
        records = ring.spans()
        assert records[0]["attrs"]["error"] == "ValueError"
        assert records[1]["depth"] == 0  # stack unwound despite the raise

    def test_tracing_context_restores_prior_state(self):
        assert not obs.enabled()
        with obs.tracing():
            assert obs.enabled()
            with obs.tracing():  # nested scope, still fine
                assert obs.enabled()
        assert not obs.enabled()
        assert obs.active_sinks() == ()

    def test_enable_disable_and_sinks(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        assert obs.enabled()
        assert obs.active_sinks() == (ring,)
        with obs.span("one"):
            pass
        obs.disable()
        assert not obs.enabled()
        with obs.span("two"):
            pass
        assert [r["name"] for r in ring.spans()] == ["one"]

    def test_env_var_initialization(self, tmp_path):
        path = str(tmp_path / "envtrace.jsonl")
        trace_module._init_from_env(path)
        try:
            assert obs.enabled()
            with obs.span("from-env"):
                pass
        finally:
            obs.disable()
        lines = open(path).read().splitlines()
        assert json.loads(lines[0])["name"] == "from-env"

    def test_env_var_memory_mode(self):
        trace_module._init_from_env("1")
        try:
            assert obs.enabled()
            assert isinstance(obs.active_sinks()[0], obs.RingBufferSink)
        finally:
            obs.disable()

    def test_env_var_unset_is_noop(self):
        trace_module._init_from_env(None)
        trace_module._init_from_env("")
        assert not obs.enabled()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class TestSinks:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.tracing(obs.JsonlSink(path)):
            with obs.span("alpha", n=1):
                with obs.span("beta", deep=True):
                    pass
        records = [json.loads(line) for line in open(path)]
        assert [r["name"] for r in records] == ["beta", "alpha"]
        assert records[0]["attrs"] == {"deep": True}
        assert records[1]["attrs"] == {"n": 1}
        for record in records:
            assert set(record) == {
                "name", "start", "dur_ms", "depth", "thread", "attrs"
            }

    def test_jsonl_sink_accepts_stream(self):
        buffer = io.StringIO()
        sink = obs.JsonlSink(buffer)
        sink.emit({"name": "x", "attrs": {}})
        sink.close()  # must not close a caller-owned stream
        assert json.loads(buffer.getvalue()) == {"name": "x", "attrs": {}}

    def test_ring_buffer_capacity(self):
        ring = obs.RingBufferSink(capacity=3)
        for index in range(5):
            ring.emit({"name": str(index)})
        assert [r["name"] for r in ring.spans()] == ["2", "3", "4"]
        assert len(ring) == 3
        ring.clear()
        assert ring.spans() == []


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_inc_and_read(self):
        reg = obs.MetricsRegistry()
        reg.inc("q")
        reg.inc("q", 4)
        assert reg.counter("q") == 5
        assert reg.counter("absent") == 0

    def test_labeled_counters_are_distinct(self):
        reg = obs.MetricsRegistry()
        reg.inc("queries", path="linear")
        reg.inc("queries", path="general")
        reg.inc("queries", path="linear")
        assert reg.counter("queries", path="linear") == 2
        assert reg.counter("queries", path="general") == 1
        snap = reg.snapshot()["counters"]
        assert snap["queries{path=linear}"] == 2

    def test_metric_key_sorts_labels(self):
        assert obs.metric_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert obs.metric_key("m") == "m"

    def test_gauges_and_histograms(self):
        reg = obs.MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.gauge("depth") == 7
        assert reg.gauge("absent") is None
        for value in (2.0, 5.0, 3.0):
            reg.observe("latency", value)
        hist = reg.histogram("latency")
        # The summary keys are the pre-bucketing contract; buckets and
        # derived quantiles are the compatible superset on top.
        assert hist["count"] == 3
        assert hist["sum"] == 10.0
        assert hist["min"] == 2.0
        assert hist["max"] == 5.0
        assert sum(hist["buckets"].values()) == 3
        assert hist["p50"] is not None and hist["p99"] is not None

    def test_snapshot_is_detached_and_reset_clears(self):
        reg = obs.MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        snap["counters"]["c"] = 999
        assert reg.counter("c") == 1
        reg.reset()
        assert reg.counter("c") == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merged_with_sums_counters(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.inc("shared", 2)
        b.inc("shared", 3)
        b.inc("only-b")
        merged = a.merged_with(b)
        assert merged["counters"]["shared"] == 5
        assert merged["counters"]["only-b"] == 1


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------

class TestDetectorInstrumentation:
    def test_per_path_query_counters(self):
        detector = ConflictDetector()
        detector.read_insert(Read("a/b"), Insert("a/c", "<b/>"))       # linear
        detector.read_insert(Read("a[b]/c"), Insert("a/c", "<c/>"))    # general
        detector.update_update(Insert("a/b", "<x/>"), Delete("a/b"))   # complex
        counters = detector.metrics()["counters"]
        assert counters["conflict.queries_total{path=linear}"] == 1
        assert counters["conflict.queries_total{path=general}"] == 1
        assert counters["conflict.queries_total{path=complex}"] == 1

    def test_cache_counters_and_readonly_properties(self):
        detector = ConflictDetector()
        query = (Read("a//b"), Delete("a/b"))
        detector.read_delete(*query)
        detector.read_delete(*query)
        assert detector.cache_misses == 1
        assert detector.cache_hits == 1
        with pytest.raises(AttributeError):
            detector.cache_hits = 5  # read-only property now
        assert detector.metrics()["counters"]["cache.hits"] == 1

    def test_disabled_cache_counts_neither_hits_nor_misses(self):
        detector = ConflictDetector(cache=False)
        query = (Read("a//b"), Delete("a/b"))
        detector.read_delete(*query)
        detector.read_delete(*query)
        assert detector.cache_hits == 0
        assert detector.cache_misses == 0
        assert "cache.misses" not in detector.metrics()["counters"]

    def test_detectors_have_isolated_registries(self):
        one, two = ConflictDetector(), ConflictDetector()
        one.read_delete(Read("a/b"), Delete("a/b"))
        assert two.metrics()["counters"] == {}

    def test_shared_registry_opt_in(self):
        shared = obs.MetricsRegistry()
        one = ConflictDetector(registry=shared)
        two = ConflictDetector(registry=shared)
        one.read_delete(Read("a/b"), Delete("a/b"))
        two.read_delete(Read("a/c"), Delete("a/c"))
        assert shared.counter("conflict.queries_total", path="linear") == 2

    def test_cached_witness_is_detached(self):
        """Mutating a returned witness must not poison the cache."""
        detector = ConflictDetector()
        query = (Read("a//b"), Delete("a//b"))
        first = detector.read_delete(*query)
        assert first.verdict is Verdict.CONFLICT and first.witness is not None
        size_before = first.witness.size
        first.witness.add_child(first.witness.root, "poison")
        second = detector.read_delete(*query)
        assert detector.cache_hits == 1
        assert second.witness is not None
        assert second.witness.size == size_before
        assert "poison" not in second.witness.labels()

    def test_spans_cover_dispatch_algorithm_and_cache(self):
        with obs.tracing() as ring:
            detector = ConflictDetector()
            detector.read_insert(Read("a/b"), Insert("a/c", "<b/>"))
        names = {r["name"] for r in ring.spans()}
        assert "detector.dispatch" in names
        assert "linear.read_insert" in names
        assert "detector.cache.lookup" in names
        assert "detector.cache.store" in names

    def test_general_path_search_counters_batch_to_global(self):
        # search.* counters are batched per query and always on;
        # embedding.evaluations is a gated per-inner-call instrument.
        with obs.tracing():
            detector = ConflictDetector(use_heuristics=False, exhaustive_cap=3)
            # Overlapping pair: the trunk prefilter cannot discharge it,
            # so the exhaustive search (and its counters) actually run.
            detector.read_insert(Read("a[b]/c"), Insert("a/c", "<e/>"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("search.candidates_checked", 0) > 0
        assert counters.get("embedding.evaluations", 0) > 0

    def test_search_counters_always_on(self):
        assert not obs.enabled()
        detector = ConflictDetector(use_heuristics=False, exhaustive_cap=3)
        detector.read_insert(Read("a[b]/c"), Insert("a/c", "<e/>"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("search.candidates_checked", 0) > 0

    def test_gated_instruments_silent_when_disabled(self):
        assert not obs.enabled()
        detector = ConflictDetector(cache=False)
        detector.read_delete(Read("a//b"), Delete("a/b"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert "nfa.built" not in counters
        assert "embedding.evaluations" not in counters

    def test_nfa_counters(self):
        # The sets kernel is the path that builds explicit NFAs.
        with obs.tracing():
            detector = ConflictDetector(cache=False, kernel="sets")
            detector.read_delete(Read("a//b"), Delete("a/b"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("nfa.built", 0) >= 1
        assert counters.get("nfa.states_built", 0) >= counters["nfa.built"]

    def test_bitkernel_counters(self):
        # The default bitset kernel builds mask tables instead of NFAs.
        with obs.tracing():
            detector = ConflictDetector(cache=False)
            detector.read_delete(Read("a//b"), Delete("a/b"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("bitkernel.tables_built", 0) >= 1
        assert "nfa.built" not in counters


class TestStatsBackwardCompat:
    """``ConflictReport.stats`` keys are a stable contract across the refactor."""

    GENERAL_KEYS = {"candidates_checked", "heuristic_candidates", "cap_used", "bound"}

    def test_general_conflict_report_keys(self):
        report = decide_conflict(Read("a[b]//c"), Insert("a/c", "<c/>"))
        assert report.verdict is Verdict.CONFLICT
        assert self.GENERAL_KEYS <= set(report.stats)

    def test_general_unknown_report_keys(self):
        # Overlapping pair with no witness at cap 2: survives the trunk
        # prefilter, heuristics find nothing, and the truncated cap yields
        # UNKNOWN with the full stats payload.
        report = decide_conflict(
            Read("a[b]//c"), Insert("a/b", "<x/>"), exhaustive_cap=2
        )
        assert self.GENERAL_KEYS <= set(report.stats)
        assert report.stats["cap_used"] == 2
        assert report.stats["bound"] > 2

    def test_heuristics_disabled_report_keys(self):
        report = decide_conflict(
            Read("a[b]//c"), Insert("a/c", "<c/>"), use_heuristics=False
        )
        assert self.GENERAL_KEYS <= set(report.stats)
        assert report.stats["heuristic_candidates"] == 0

    def test_stats_survive_the_detector_cache(self):
        detector = ConflictDetector()
        query = (Read("a[b]//c"), Insert("a/c", "<c/>"))
        first = detector.read_insert(*query)
        second = detector.read_insert(*query)  # cached copy
        assert set(first.stats) == set(second.stats)
        assert self.GENERAL_KEYS <= set(second.stats)


# ----------------------------------------------------------------------
# Disabled-mode overhead
# ----------------------------------------------------------------------

class TestDisabledOverhead:
    def test_noop_span_is_cheap(self):
        """The disabled span path must stay within a few microseconds."""
        assert not obs.enabled()
        iterations = 50_000

        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("hot.loop", k=1):
                pass
        per_call = (time.perf_counter() - start) / iterations
        # Generous CI-safe bound; the real figure is ~0.5 µs
        # (benchmarks/bench_obs.py measures it precisely).
        assert per_call < 50e-6

    def test_disabled_tracing_emits_nothing(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        obs.disable()
        with obs.span("invisible"):
            pass
        assert ring.spans() == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCliObservability:
    def test_check_stats_breakdown(self, capsys):
        code = main(
            ["check", "--read", "a/*/A", "--insert", "a/B", "--xml", "<C/>",
             "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "--- stats ---" in out
        assert "path: linear" in out
        assert "detector.dispatch" in out
        assert "conflict.queries_total{path=linear}" in out
        assert "cache.misses" in out

    def test_check_stats_general_path(self, capsys):
        code = main(
            ["check", "--read", "a[b]//c", "--insert", "a/c", "--xml", "<c/>",
             "--stats"]
        )
        assert code == 1  # conflict
        out = capsys.readouterr().out
        assert "path: general" in out
        assert "general.heuristic" in out

    def test_stats_min_ms_filters_spans(self, capsys):
        code = main(
            ["check", "--read", "a/b", "--insert", "a/c", "--stats",
             "--stats-min-ms", "10000"]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "(none)" in out  # nothing takes ten seconds

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "out.jsonl")
        code = main(
            ["check", "--read", "a/*/A", "--insert", "a/B", "--xml", "<C/>",
             "--trace", path]
        )
        assert code == 0
        records = [json.loads(line) for line in open(path)]
        names = {r["name"] for r in records}
        assert "detector.dispatch" in names        # dispatch phase
        assert "linear.read_insert" in names       # algorithm phase
        assert "detector.cache.lookup" in names    # cache phase
        for record in records:
            assert isinstance(record["dur_ms"], float)
            assert isinstance(record["attrs"], dict)

    def test_trace_and_stats_together(self, tmp_path, capsys):
        path = str(tmp_path / "both.jsonl")
        code = main(
            ["commute", "--insert1", "a/b", "--delete2", "a/b",
             "--stats", "--trace", path]
        )
        assert code in (0, 1, 2)
        out = capsys.readouterr().out
        assert "path: complex" in out
        assert open(path).read().strip()

    def test_tracing_state_restored_after_cli_run(self, capsys):
        main(["check", "--read", "a/b", "--insert", "a/c", "--stats"])
        capsys.readouterr()
        assert not obs.enabled()

    def test_commands_without_flags_stay_quiet(self, capsys):
        code = main(["check", "--read", "a/b", "--insert", "a/c"])
        assert code in (0, 1)
        assert "--- stats ---" not in capsys.readouterr().out


# ----------------------------------------------------------------------
# Bucketed histograms: quantile error bound, lossless merges
# ----------------------------------------------------------------------

class TestHistograms:
    def test_bucket_bounds_contain_the_value(self):
        for value in (1e-4, 0.5, 1.0, 1.26, 3.7, 10.0, 123.4, 9.9e6):
            lower, upper = bucket_bounds(bucket_index(value))
            assert lower <= value * (1 + 1e-12)
            assert value <= upper * (1 + 1e-12)

    def test_non_positive_values_share_the_zero_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-4.0)
        assert list(hist.buckets.values()) == [2]
        assert bucket_bounds(next(iter(hist.buckets))) == (0.0, 0.0)

    def test_empty_histogram_has_no_quantiles(self):
        assert Histogram().quantile(0.5) is None
        assert quantile_from_snapshot(None, 0.5) is None
        assert quantile_from_snapshot({}, 0.5) is None

    def test_quantile_rejects_out_of_range_q(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_single_value_quantiles_are_exact(self):
        hist = Histogram()
        hist.observe(3.25)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == 3.25

    def test_quantile_error_within_one_bucket(self):
        """Acceptance bound: every quantile is within one bucket width
        (a factor of 10**(1/BUCKETS_PER_DECADE)) of the exact nearest-rank
        percentile, and never below it."""
        rng = random.Random(1234)
        values = [rng.lognormvariate(1.0, 1.5) for _ in range(5000)]
        hist = Histogram()
        for value in values:
            hist.observe(value)
        width = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = exact_percentile(values, q)
            approx = hist.quantile(q)
            assert exact <= approx <= exact * width * (1 + 1e-9)

    def test_absorb_matches_observing_everything_in_one_histogram(self):
        rng = random.Random(7)
        values = [rng.uniform(0.01, 50.0) for _ in range(400)]
        whole, left, right = Histogram(), Histogram(), Histogram()
        for position, value in enumerate(values):
            whole.observe(value)
            (left if position % 2 else right).observe(value)
        left.absorb(right)
        assert left.count == whole.count
        assert left.buckets == whole.buckets
        assert left.min == whole.min and left.max == whole.max
        assert left.sum == pytest.approx(whole.sum)
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == whole.quantile(q)

    def test_absorb_accepts_snapshot_form(self):
        a, b = Histogram(), Histogram()
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (10.0, 20.0):
            b.observe(value)
        a.absorb(b.snapshot())
        assert a.count == 5
        assert a.max == 20.0
        assert sum(a.buckets.values()) == 5

    def test_legacy_summary_snapshot_folds_at_the_mean(self):
        hist = Histogram()
        hist.absorb({"count": 4, "sum": 8.0, "min": 1.0, "max": 3.0})
        assert hist.count == 4
        assert hist.sum == 8.0
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.buckets == {bucket_index(2.0): 4}

    def test_histogram_delta_roundtrip(self):
        hist = Histogram()
        for value in (1.0, 5.0):
            hist.observe(value)
        base = hist.snapshot()
        for value in (2.0, 5.0, 80.0):
            hist.observe(value)
        delta = histogram_delta(hist.snapshot(), base)
        assert delta["count"] == 3
        rebuilt = Histogram.from_snapshot(base)
        rebuilt.absorb(delta)
        assert rebuilt.buckets == hist.buckets
        assert rebuilt.count == hist.count
        assert rebuilt.min == hist.min and rebuilt.max == hist.max

    def test_histogram_delta_none_when_unchanged(self):
        hist = Histogram()
        hist.observe(1.0)
        snap = hist.snapshot()
        assert histogram_delta(snap, snap) is None
        assert histogram_delta(snap, None) is not None

    def test_quantile_from_snapshot_matches_live_registry(self):
        reg = obs.MetricsRegistry()
        for value in (1.0, 4.0, 9.0, 16.0):
            reg.observe("lat", value, path="linear")
        snap = reg.snapshot()["histograms"]["lat{path=linear}"]
        for q in (0.5, 0.95, 0.99):
            assert quantile_from_snapshot(snap, q) == reg.quantile(
                "lat", q, path="linear"
            )


# ----------------------------------------------------------------------
# Absorb algebra (property-based)
# ----------------------------------------------------------------------

_metric_names = st.sampled_from(["a", "b", "c{path=linear}", "d{path=general}"])

# Integer-valued observations keep float sums exact (every partial sum is
# an integer well under 2**53), so snapshots compare *equal* regardless of
# absorb order — the algebra holds exactly, not just approximately.
_registry_specs = st.fixed_dictionaries({
    "counters": st.lists(
        st.tuples(_metric_names, st.integers(0, 100)), max_size=8
    ),
    "observations": st.lists(
        st.tuples(_metric_names, st.integers(0, 10**6)), max_size=30
    ),
})


def _registry_snapshot(spec: dict) -> dict:
    reg = obs.MetricsRegistry()
    for name, value in spec["counters"]:
        reg.inc(name, value)
    for name, value in spec["observations"]:
        reg.observe(name, float(value))
    return reg.snapshot()


def _absorbed(*snapshots: dict) -> dict:
    reg = obs.MetricsRegistry()
    for snap in snapshots:
        reg.absorb(snap)
    return reg.snapshot()


class TestAbsorbProperties:
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(_registry_specs, _registry_specs)
    def test_absorb_is_commutative(self, spec_a, spec_b):
        a, b = _registry_snapshot(spec_a), _registry_snapshot(spec_b)
        assert _absorbed(a, b) == _absorbed(b, a)

    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(_registry_specs, _registry_specs, _registry_specs)
    def test_absorb_is_associative(self, spec_a, spec_b, spec_c):
        a, b, c = (
            _registry_snapshot(s) for s in (spec_a, spec_b, spec_c)
        )
        assert _absorbed(_absorbed(a, b), c) == _absorbed(a, _absorbed(b, c))

    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(_registry_specs)
    def test_absorb_into_empty_is_identity(self, spec):
        snap = _registry_snapshot(spec)
        assert _absorbed(snap) == snap


# ----------------------------------------------------------------------
# Sink thread-safety and the close race
# ----------------------------------------------------------------------

class TestSinkConcurrency:
    def test_concurrent_jsonl_writers_emit_whole_lines(self, tmp_path):
        path = str(tmp_path / "conc.jsonl")
        sink = obs.JsonlSink(path)

        def hammer(tag):
            for index in range(200):
                sink.emit({"name": tag, "i": index})

        threads = [
            threading.Thread(target=hammer, args=(f"t{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        records = [json.loads(line) for line in open(path)]
        assert len(records) == 800
        for n in range(4):
            assert sum(1 for r in records if r["name"] == f"t{n}") == 200

    def test_concurrent_ring_buffer_writers(self):
        ring = obs.RingBufferSink(capacity=10_000)

        def hammer(tag):
            for index in range(200):
                ring.emit({"name": tag, "i": index})

        threads = [
            threading.Thread(target=hammer, args=(f"t{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ring) == 800

    def test_emit_after_close_is_dropped_silently(self, tmp_path):
        path = str(tmp_path / "closed.jsonl")
        sink = obs.JsonlSink(path)
        sink.emit({"name": "before"})
        sink.close()
        sink.emit({"name": "after"})   # must neither raise nor write
        sink.close()                   # idempotent
        records = [json.loads(line) for line in open(path)]
        assert [r["name"] for r in records] == ["before"]

    def test_span_close_races_disable_without_raising(self, tmp_path):
        """``obs.disable()`` closes the sink while worker threads are
        mid-``Span.__exit__``; emission must be dropped, never raised."""
        path = str(tmp_path / "race.jsonl")
        obs.enable(obs.JsonlSink(path))
        errors = []
        stop = threading.Event()

        def worker():
            try:
                while not stop.is_set():
                    with obs.span("race.unit"):
                        pass
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        obs.disable()
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []


# ----------------------------------------------------------------------
# Request-id binding and propagation
# ----------------------------------------------------------------------

class TestRequestContext:
    def test_bind_nest_and_restore(self):
        assert obs.current_request_id() is None
        with obs.request_context("outer"):
            assert obs.current_request_id() == "outer"
            with obs.request_context("inner"):
                assert obs.current_request_id() == "inner"
            assert obs.current_request_id() == "outer"
        assert obs.current_request_id() is None

    def test_none_binding_clears_within_scope(self):
        obs.set_request_id("sticky")
        with obs.request_context(None):
            assert obs.current_request_id() is None
        assert obs.current_request_id() == "sticky"

    def test_spans_carry_request_id_only_when_bound(self):
        with obs.tracing() as ring:
            with obs.span("bare"):
                pass
            with obs.request_context("req-1"):
                with obs.span("tagged"):
                    pass
        bare, tagged = ring.spans()
        assert "request_id" not in bare
        assert tagged["request_id"] == "req-1"

    def test_request_id_does_not_cross_threads(self):
        seen = []
        with obs.request_context("main-thread"):
            thread = threading.Thread(
                target=lambda: seen.append(obs.current_request_id())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestRequestIdAcrossPool:
    """The id bound when a pool is built reaches worker-side spans under
    both start methods (explicit initargs transport, not inheritance)."""

    CATALOGUE = {
        "titles": Read("bib/book/title"),
        "quantities": Read("//quantity"),
        "restock": Insert("bib/book", "<restock/>"),
        "purge": Delete("bib/book"),
        "strip-markers": Delete("bib/book/restock"),
    }

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_request_id_survives_start_method(self, method, tmp_path, monkeypatch):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} start method unavailable on this platform")
        from repro.conflicts.batch import BatchAnalyzer

        trace_path = str(tmp_path / f"pool-{method}.jsonl")
        # Spawned workers re-create tracing from the environment at import;
        # forked workers inherit the parent's append-mode sink.  Either way
        # every process writes JSON lines into the same file.
        monkeypatch.setenv("REPRO_TRACE", trace_path)
        monkeypatch.setenv("REPRO_START_METHOD", method)
        obs.enable(obs.JsonlSink(trace_path))
        try:
            with obs.request_context("req-ff"):
                analyzer = BatchAnalyzer(jobs=2)
                analyzer.analyze(self.CATALOGUE)
        finally:
            obs.disable()
        if analyzer.metrics()["counters"].get("batch.pool_failures"):
            pytest.skip("process pool unavailable in this environment")
        records = [json.loads(line) for line in open(trace_path)]
        dispatch = [r for r in records if r["name"] == "detector.dispatch"]
        assert len(dispatch) >= 4
        assert all(r.get("request_id") == "req-ff" for r in dispatch)


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------

class TestReportCli:
    def _trace_one_check(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        code = main(
            ["check", "--read", "a/b/c", "--delete", "a/b", "--trace", trace]
        )
        assert code in (0, 1)
        capsys.readouterr()
        return trace

    def test_report_renders_tables_from_trace(self, tmp_path, capsys):
        trace = self._trace_one_check(tmp_path, capsys)
        assert main(["report", trace]) == 0
        out = capsys.readouterr().out
        assert "per-phase latency" in out
        assert "detector.dispatch" in out
        assert "detector paths" in out
        assert "p95" in out

    def test_report_json_is_complete_and_skips_junk(self, tmp_path, capsys):
        trace = self._trace_one_check(tmp_path, capsys)
        access = tmp_path / "access.jsonl"
        access.write_text(
            json.dumps(
                {
                    "type": "access", "ts": 0.0, "request_id": "r1",
                    "method": "POST", "route": "check", "status": 200,
                    "total_ms": 1.5, "queue_wait_ms": 0.2, "outcome": "ok",
                    "verdict": "conflict", "cached": False, "degraded": False,
                }
            )
            + "\nnot json\n"
        )
        assert main(["report", trace, str(access), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) >= {
            "records", "phases", "detectors", "cache", "routes", "request_ids"
        }
        assert report["records"]["skipped"] == 1
        assert report["records"]["access"] == 1
        assert report["routes"]["check"]["count"] == 1
        assert report["routes"]["check"]["verdicts"] == {"conflict": 1}
        assert report["request_ids"]["access_with_id"] == 1
        assert "detector.dispatch" in report["phases"]
        dispatch = report["phases"]["detector.dispatch"]
        assert dispatch["count"] == 1
        assert dispatch["p50_ms"] <= dispatch["p99_ms"] <= dispatch["max_ms"]
