"""Tests for the observability layer (:mod:`repro.obs`) and its hooks.

Covers the tracing spans (nesting, timing, sinks), the metrics registry
(counters/gauges/histograms, snapshot/reset), the engine instrumentation
(detector dispatch paths, cache counters, general-engine search counters),
the backward-compatibility contract on ``ConflictReport.stats``, and the
``--stats`` / ``--trace`` CLI surface.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import obs
from repro.cli import main
from repro.conflicts.detector import ConflictDetector
from repro.conflicts.general import decide_conflict
from repro.conflicts.semantics import Verdict
from repro.obs import trace as trace_module
from repro.operations.ops import Delete, Insert, Read


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing off and global metrics clear."""
    obs.disable()
    obs.reset_global_metrics()
    yield
    obs.disable()
    obs.reset_global_metrics()


# ----------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_by_default_returns_noop(self):
        assert not obs.enabled()
        sp = obs.span("anything", a=1)
        assert sp is obs.span("something-else")  # the shared no-op singleton

    def test_noop_span_accepts_the_full_interface(self):
        with obs.span("x", a=1) as sp:
            sp.set("k", "v")  # must not raise and must not record

    def test_span_records_name_attrs_and_duration(self):
        with obs.tracing() as ring:
            with obs.span("unit.work", size=3) as sp:
                time.sleep(0.002)
                sp.set("late", True)
        (record,) = ring.spans()
        assert record["name"] == "unit.work"
        assert record["attrs"] == {"size": 3, "late": True}
        assert record["dur_ms"] >= 1.0
        assert record["depth"] == 0

    def test_span_nesting_depths(self):
        with obs.tracing() as ring:
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        pass
        by_name = {r["name"]: r for r in ring.spans()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["depth"] == 1
        assert by_name["inner"]["depth"] == 2
        # Emission order is completion order: inner closes first.
        assert [r["name"] for r in ring.spans()] == ["inner", "middle", "outer"]

    def test_exception_inside_span_is_recorded_and_stack_unwound(self):
        with obs.tracing() as ring:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
            with obs.span("after"):
                pass
        records = ring.spans()
        assert records[0]["attrs"]["error"] == "ValueError"
        assert records[1]["depth"] == 0  # stack unwound despite the raise

    def test_tracing_context_restores_prior_state(self):
        assert not obs.enabled()
        with obs.tracing():
            assert obs.enabled()
            with obs.tracing():  # nested scope, still fine
                assert obs.enabled()
        assert not obs.enabled()
        assert obs.active_sinks() == ()

    def test_enable_disable_and_sinks(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        assert obs.enabled()
        assert obs.active_sinks() == (ring,)
        with obs.span("one"):
            pass
        obs.disable()
        assert not obs.enabled()
        with obs.span("two"):
            pass
        assert [r["name"] for r in ring.spans()] == ["one"]

    def test_env_var_initialization(self, tmp_path):
        path = str(tmp_path / "envtrace.jsonl")
        trace_module._init_from_env(path)
        try:
            assert obs.enabled()
            with obs.span("from-env"):
                pass
        finally:
            obs.disable()
        lines = open(path).read().splitlines()
        assert json.loads(lines[0])["name"] == "from-env"

    def test_env_var_memory_mode(self):
        trace_module._init_from_env("1")
        try:
            assert obs.enabled()
            assert isinstance(obs.active_sinks()[0], obs.RingBufferSink)
        finally:
            obs.disable()

    def test_env_var_unset_is_noop(self):
        trace_module._init_from_env(None)
        trace_module._init_from_env("")
        assert not obs.enabled()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class TestSinks:
    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with obs.tracing(obs.JsonlSink(path)):
            with obs.span("alpha", n=1):
                with obs.span("beta", deep=True):
                    pass
        records = [json.loads(line) for line in open(path)]
        assert [r["name"] for r in records] == ["beta", "alpha"]
        assert records[0]["attrs"] == {"deep": True}
        assert records[1]["attrs"] == {"n": 1}
        for record in records:
            assert set(record) == {
                "name", "start", "dur_ms", "depth", "thread", "attrs"
            }

    def test_jsonl_sink_accepts_stream(self):
        buffer = io.StringIO()
        sink = obs.JsonlSink(buffer)
        sink.emit({"name": "x", "attrs": {}})
        sink.close()  # must not close a caller-owned stream
        assert json.loads(buffer.getvalue()) == {"name": "x", "attrs": {}}

    def test_ring_buffer_capacity(self):
        ring = obs.RingBufferSink(capacity=3)
        for index in range(5):
            ring.emit({"name": str(index)})
        assert [r["name"] for r in ring.spans()] == ["2", "3", "4"]
        assert len(ring) == 3
        ring.clear()
        assert ring.spans() == []


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_inc_and_read(self):
        reg = obs.MetricsRegistry()
        reg.inc("q")
        reg.inc("q", 4)
        assert reg.counter("q") == 5
        assert reg.counter("absent") == 0

    def test_labeled_counters_are_distinct(self):
        reg = obs.MetricsRegistry()
        reg.inc("queries", path="linear")
        reg.inc("queries", path="general")
        reg.inc("queries", path="linear")
        assert reg.counter("queries", path="linear") == 2
        assert reg.counter("queries", path="general") == 1
        snap = reg.snapshot()["counters"]
        assert snap["queries{path=linear}"] == 2

    def test_metric_key_sorts_labels(self):
        assert obs.metric_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert obs.metric_key("m") == "m"

    def test_gauges_and_histograms(self):
        reg = obs.MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.gauge("depth") == 7
        assert reg.gauge("absent") is None
        for value in (2.0, 5.0, 3.0):
            reg.observe("latency", value)
        hist = reg.histogram("latency")
        assert hist == {"count": 3, "sum": 10.0, "min": 2.0, "max": 5.0}

    def test_snapshot_is_detached_and_reset_clears(self):
        reg = obs.MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        snap["counters"]["c"] = 999
        assert reg.counter("c") == 1
        reg.reset()
        assert reg.counter("c") == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merged_with_sums_counters(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.inc("shared", 2)
        b.inc("shared", 3)
        b.inc("only-b")
        merged = a.merged_with(b)
        assert merged["counters"]["shared"] == 5
        assert merged["counters"]["only-b"] == 1


# ----------------------------------------------------------------------
# Engine instrumentation
# ----------------------------------------------------------------------

class TestDetectorInstrumentation:
    def test_per_path_query_counters(self):
        detector = ConflictDetector()
        detector.read_insert(Read("a/b"), Insert("a/c", "<b/>"))       # linear
        detector.read_insert(Read("a[b]/c"), Insert("a/c", "<c/>"))    # general
        detector.update_update(Insert("a/b", "<x/>"), Delete("a/b"))   # complex
        counters = detector.metrics()["counters"]
        assert counters["conflict.queries_total{path=linear}"] == 1
        assert counters["conflict.queries_total{path=general}"] == 1
        assert counters["conflict.queries_total{path=complex}"] == 1

    def test_cache_counters_and_readonly_properties(self):
        detector = ConflictDetector()
        query = (Read("a//b"), Delete("a/b"))
        detector.read_delete(*query)
        detector.read_delete(*query)
        assert detector.cache_misses == 1
        assert detector.cache_hits == 1
        with pytest.raises(AttributeError):
            detector.cache_hits = 5  # read-only property now
        assert detector.metrics()["counters"]["cache.hits"] == 1

    def test_disabled_cache_counts_neither_hits_nor_misses(self):
        detector = ConflictDetector(cache=False)
        query = (Read("a//b"), Delete("a/b"))
        detector.read_delete(*query)
        detector.read_delete(*query)
        assert detector.cache_hits == 0
        assert detector.cache_misses == 0
        assert "cache.misses" not in detector.metrics()["counters"]

    def test_detectors_have_isolated_registries(self):
        one, two = ConflictDetector(), ConflictDetector()
        one.read_delete(Read("a/b"), Delete("a/b"))
        assert two.metrics()["counters"] == {}

    def test_shared_registry_opt_in(self):
        shared = obs.MetricsRegistry()
        one = ConflictDetector(registry=shared)
        two = ConflictDetector(registry=shared)
        one.read_delete(Read("a/b"), Delete("a/b"))
        two.read_delete(Read("a/c"), Delete("a/c"))
        assert shared.counter("conflict.queries_total", path="linear") == 2

    def test_cached_witness_is_detached(self):
        """Mutating a returned witness must not poison the cache."""
        detector = ConflictDetector()
        query = (Read("a//b"), Delete("a//b"))
        first = detector.read_delete(*query)
        assert first.verdict is Verdict.CONFLICT and first.witness is not None
        size_before = first.witness.size
        first.witness.add_child(first.witness.root, "poison")
        second = detector.read_delete(*query)
        assert detector.cache_hits == 1
        assert second.witness is not None
        assert second.witness.size == size_before
        assert "poison" not in second.witness.labels()

    def test_spans_cover_dispatch_algorithm_and_cache(self):
        with obs.tracing() as ring:
            detector = ConflictDetector()
            detector.read_insert(Read("a/b"), Insert("a/c", "<b/>"))
        names = {r["name"] for r in ring.spans()}
        assert "detector.dispatch" in names
        assert "linear.read_insert" in names
        assert "detector.cache.lookup" in names
        assert "detector.cache.store" in names

    def test_general_path_search_counters_batch_to_global(self):
        # search.* counters are batched per query and always on;
        # embedding.evaluations is a gated per-inner-call instrument.
        with obs.tracing():
            detector = ConflictDetector(use_heuristics=False, exhaustive_cap=3)
            detector.read_insert(Read("a[b]/c"), Insert("a/d", "<e/>"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("search.candidates_checked", 0) > 0
        assert counters.get("embedding.evaluations", 0) > 0

    def test_search_counters_always_on(self):
        assert not obs.enabled()
        detector = ConflictDetector(use_heuristics=False, exhaustive_cap=3)
        detector.read_insert(Read("a[b]/c"), Insert("a/d", "<e/>"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("search.candidates_checked", 0) > 0

    def test_gated_instruments_silent_when_disabled(self):
        assert not obs.enabled()
        detector = ConflictDetector(cache=False)
        detector.read_delete(Read("a//b"), Delete("a/b"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert "nfa.built" not in counters
        assert "embedding.evaluations" not in counters

    def test_nfa_counters(self):
        with obs.tracing():
            detector = ConflictDetector(cache=False)
            detector.read_delete(Read("a//b"), Delete("a/b"))
        counters = obs.global_metrics().snapshot()["counters"]
        assert counters.get("nfa.built", 0) >= 1
        assert counters.get("nfa.states_built", 0) >= counters["nfa.built"]


class TestStatsBackwardCompat:
    """``ConflictReport.stats`` keys are a stable contract across the refactor."""

    GENERAL_KEYS = {"candidates_checked", "heuristic_candidates", "cap_used", "bound"}

    def test_general_conflict_report_keys(self):
        report = decide_conflict(Read("a[b]//c"), Insert("a/c", "<c/>"))
        assert report.verdict is Verdict.CONFLICT
        assert self.GENERAL_KEYS <= set(report.stats)

    def test_general_unknown_report_keys(self):
        report = decide_conflict(
            Read("a[b]//c"), Insert("a/d", "<e/>"), exhaustive_cap=2
        )
        assert self.GENERAL_KEYS <= set(report.stats)
        assert report.stats["cap_used"] == 2
        assert report.stats["bound"] > 2

    def test_heuristics_disabled_report_keys(self):
        report = decide_conflict(
            Read("a[b]//c"), Insert("a/c", "<c/>"), use_heuristics=False
        )
        assert self.GENERAL_KEYS <= set(report.stats)
        assert report.stats["heuristic_candidates"] == 0

    def test_stats_survive_the_detector_cache(self):
        detector = ConflictDetector()
        query = (Read("a[b]//c"), Insert("a/c", "<c/>"))
        first = detector.read_insert(*query)
        second = detector.read_insert(*query)  # cached copy
        assert set(first.stats) == set(second.stats)
        assert self.GENERAL_KEYS <= set(second.stats)


# ----------------------------------------------------------------------
# Disabled-mode overhead
# ----------------------------------------------------------------------

class TestDisabledOverhead:
    def test_noop_span_is_cheap(self):
        """The disabled span path must stay within a few microseconds."""
        assert not obs.enabled()
        iterations = 50_000

        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("hot.loop", k=1):
                pass
        per_call = (time.perf_counter() - start) / iterations
        # Generous CI-safe bound; the real figure is ~0.5 µs
        # (benchmarks/bench_obs.py measures it precisely).
        assert per_call < 50e-6

    def test_disabled_tracing_emits_nothing(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        obs.disable()
        with obs.span("invisible"):
            pass
        assert ring.spans() == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCliObservability:
    def test_check_stats_breakdown(self, capsys):
        code = main(
            ["check", "--read", "a/*/A", "--insert", "a/B", "--xml", "<C/>",
             "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "--- stats ---" in out
        assert "path: linear" in out
        assert "detector.dispatch" in out
        assert "conflict.queries_total{path=linear}" in out
        assert "cache.misses" in out

    def test_check_stats_general_path(self, capsys):
        code = main(
            ["check", "--read", "a[b]//c", "--insert", "a/c", "--xml", "<c/>",
             "--stats"]
        )
        assert code == 1  # conflict
        out = capsys.readouterr().out
        assert "path: general" in out
        assert "general.heuristic" in out

    def test_stats_min_ms_filters_spans(self, capsys):
        code = main(
            ["check", "--read", "a/b", "--insert", "a/c", "--stats",
             "--stats-min-ms", "10000"]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "(none)" in out  # nothing takes ten seconds

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "out.jsonl")
        code = main(
            ["check", "--read", "a/*/A", "--insert", "a/B", "--xml", "<C/>",
             "--trace", path]
        )
        assert code == 0
        records = [json.loads(line) for line in open(path)]
        names = {r["name"] for r in records}
        assert "detector.dispatch" in names        # dispatch phase
        assert "linear.read_insert" in names       # algorithm phase
        assert "detector.cache.lookup" in names    # cache phase
        for record in records:
            assert isinstance(record["dur_ms"], float)
            assert isinstance(record["attrs"], dict)

    def test_trace_and_stats_together(self, tmp_path, capsys):
        path = str(tmp_path / "both.jsonl")
        code = main(
            ["commute", "--insert1", "a/b", "--delete2", "a/b",
             "--stats", "--trace", path]
        )
        assert code in (0, 1, 2)
        out = capsys.readouterr().out
        assert "path: complex" in out
        assert open(path).read().strip()

    def test_tracing_state_restored_after_cli_run(self, capsys):
        main(["check", "--read", "a/b", "--insert", "a/c", "--stats"])
        capsys.readouterr()
        assert not obs.enabled()

    def test_commands_without_flags_stay_quiet(self, capsys):
        code = main(["check", "--read", "a/b", "--insert", "a/c"])
        assert code in (0, 1)
        assert "--- stats ---" not in capsys.readouterr().out
