"""Tests for witness minimization (Definitions 9-10, Lemmas 9-11)."""

from __future__ import annotations

import random

import pytest

from repro.conflicts.general import witness_size_bound
from repro.conflicts.semantics import ConflictKind, is_witness
from repro.conflicts.witness_min import (
    mark_witness_nodes,
    minimize_witness,
    reparent,
)
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.embedding import evaluate
from repro.patterns.xpath import parse_xpath
from repro.xml.tree import XMLTree, build_tree


def _chain_tree(labels: list[str]) -> XMLTree:
    t = XMLTree(labels[0])
    node = t.root
    for label in labels[1:]:
        node = t.add_child(node, label)
    return t


class TestReparent:
    def test_structure(self):
        t = _chain_tree(["a"] + ["m"] * 8 + ["v"])
        v = t.path_from_root(max(t.nodes()))[-1]
        out = reparent(t, t.root, v, star_length=1, alpha="Z")
        # v now hangs k+1=2 alpha nodes below the root.
        path = out.path_from_root(v)
        assert [out.label(n) for n in path] == ["a", "Z", "Z", "v"]
        out.validate()

    def test_requires_long_path(self):
        t = _chain_tree(["a", "b", "v"])
        v = [n for n in t.nodes() if t.label(n) == "v"][0]
        with pytest.raises(ValueError):
            reparent(t, t.root, v, star_length=1, alpha="Z")

    def test_requires_proper_ancestor(self):
        t = _chain_tree(["a", "b"])
        with pytest.raises(ValueError):
            reparent(t, t.root, t.root, star_length=0, alpha="Z")

    def test_lemma9_no_new_results(self):
        """Lemma 9: reparenting adds no new results among original nodes."""
        rng = random.Random(7)
        for _ in range(20):
            labels = ["a"] + [rng.choice("bc") for _ in range(8)] + ["v"]
            t = _chain_tree(labels)
            v = t.path_from_root(max(t.nodes()))[-1]
            pattern = parse_xpath(rng.choice(["a//v", "a//b//v", "*//*", "a//*"]))
            k = pattern.star_length()
            out = reparent(t, t.root, v, star_length=k, alpha="ZZ")
            before = evaluate(pattern, t)
            after = evaluate(pattern, out)
            original_nodes = set(t.nodes())
            assert after & original_nodes <= before, f"labels={labels}"


class TestMarking:
    def test_marking_read_insert(self):
        t = build_tree(("a", "b"))
        read = Read("a/b/c")
        insert = Insert("a/b", "<c/>")
        marked = mark_witness_nodes(t, read, insert)
        assert marked is not None
        assert t.root in marked
        b = t.children(t.root)[0]
        assert b in marked

    def test_marking_read_delete(self):
        t = build_tree(("a", ("b", "c")))
        read = Read("a//c")
        delete = Delete("a/b")
        marked = mark_witness_nodes(t, read, delete)
        assert marked is not None
        assert t.root in marked

    def test_marking_bound(self):
        """At most |R| * |U| nodes are marked (Definition 9)."""
        t = build_tree(("a", ("b", ("c", "d"))))
        read = Read("a//d")
        delete = Delete("a/b")
        marked = mark_witness_nodes(t, read, delete)
        assert marked is not None
        assert len(marked) <= read.pattern.size * delete.pattern.size + 1

    def test_marking_none_for_non_witness(self):
        t = build_tree(("a", "b"))
        assert mark_witness_nodes(t, Read("a//z"), Delete("a/b")) is None

    def test_marking_tree_conflict_case(self):
        t = build_tree(("a", "B"))
        read = Read("a")
        insert = Insert("a/B", "<x/>")
        marked = mark_witness_nodes(t, read, insert, ConflictKind.TREE)
        assert marked is not None


class TestMinimize:
    def test_rejects_non_witness(self):
        with pytest.raises(ValueError):
            minimize_witness(build_tree("a"), Read("a//z"), Delete("a/b"))

    def test_minimized_is_still_witness(self):
        # A deliberately bloated witness.
        t = build_tree(
            (
                "a",
                ("b", "junk1", ("junk2", "junk3")),
                ("noise", ("more", "noise2")),
                "junk4",
            )
        )
        read = Read("a/b/c")
        insert = Insert("a/b", "<c/>")
        assert is_witness(t, read, insert, ConflictKind.NODE)
        small = minimize_witness(t, read, insert)
        assert is_witness(small, read, insert, ConflictKind.NODE)
        assert small.size <= t.size

    def test_minimized_within_lemma11_bound(self):
        t = build_tree(
            ("a", ("b", "x", "y", ("z", "w")), ("c", "q"), "r", "s")
        )
        read = Read("a//c")
        delete = Delete("a/b")
        # Make it a witness: c under b.
        b = t.children(t.root)[0]
        t.add_child(b, "c")
        assert is_witness(t, read, delete, ConflictKind.NODE)
        small = minimize_witness(t, read, delete)
        assert small.size <= witness_size_bound(read, delete)

    def test_long_chain_gets_shrunk(self):
        """A witness with a long irrelevant chain shrinks below it."""
        t = _chain_tree(["a"] + ["m"] * 12 + ["b"])
        read = Read("a//b")
        delete = Delete("a//b")
        assert is_witness(t, read, delete, ConflictKind.NODE)
        small = minimize_witness(t, read, delete)
        assert small.size < t.size
        assert is_witness(small, read, delete, ConflictKind.NODE)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_witnesses_minimize_validly(self, seed):
        from repro.conflicts.general import find_witness_exhaustive
        from repro.workloads.generators import random_linear_pattern
        from repro.xml.random_trees import random_tree

        rng = random.Random(seed)
        read = Read(random_linear_pattern(rng.randint(2, 3), ("a", "b"), seed=rng))
        insert = Insert(
            random_linear_pattern(rng.randint(1, 2), ("a", "b"), seed=rng),
            random_tree(1, ("a", "b"), seed=rng),
        )
        witness = find_witness_exhaustive(read, insert, max_size=4)
        if witness is None:
            return
        # Bloat it, then minimize.
        bloated = witness.copy()
        for node in list(bloated.nodes())[:3]:
            bloated.add_child(node, "junk")
        if not is_witness(bloated, read, insert, ConflictKind.NODE):
            return
        small = minimize_witness(bloated, read, insert)
        assert is_witness(small, read, insert, ConflictKind.NODE)
        assert small.size <= witness_size_bound(read, insert)
