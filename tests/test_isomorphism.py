"""Unit tests for labeled-tree isomorphism (Definition 1)."""

from __future__ import annotations

from repro.xml.isomorphism import (
    canonical_form,
    canonical_forms_of_set,
    isomorphic,
    multisets_isomorphic,
    sets_isomorphic,
)
from repro.xml.tree import build_tree


class TestCanonicalForm:
    def test_invariant_under_sibling_order(self):
        a = build_tree(("r", "x", ("y", "z")))
        b = build_tree(("r", ("y", "z"), "x"))
        assert canonical_form(a) == canonical_form(b)

    def test_distinguishes_labels(self):
        assert canonical_form(build_tree("a")) != canonical_form(build_tree("b"))

    def test_distinguishes_depth(self):
        flat = build_tree(("a", "b", "b"))
        deep = build_tree(("a", ("b", "b")))
        assert canonical_form(flat) != canonical_form(deep)

    def test_label_length_prefix_prevents_collisions(self):
        # labels "a" with child "bc" vs "ab" with child "c" must differ.
        one = build_tree(("a", "bc"))
        two = build_tree(("ab", "c"))
        assert canonical_form(one) != canonical_form(two)

    def test_subtree_form(self):
        t = build_tree(("r", ("a", "b")))
        a = t.children(t.root)[0]
        assert canonical_form(t, a) == canonical_form(build_tree(("a", "b")))


class TestIsomorphic:
    def test_reflexive(self):
        t = build_tree(("a", ("b", "c"), "d"))
        assert isomorphic(t, t.copy())

    def test_sibling_permutation(self):
        a = build_tree(("a", ("b", "x"), ("b", "y")))
        b = build_tree(("a", ("b", "y"), ("b", "x")))
        assert isomorphic(a, b)

    def test_multiplicity_matters(self):
        one = build_tree(("a", "b"))
        two = build_tree(("a", "b", "b"))
        assert not isomorphic(one, two)

    def test_deep_difference_detected(self):
        a = build_tree(("a", ("b", ("c", "d"))))
        b = build_tree(("a", ("b", ("c", "e"))))
        assert not isomorphic(a, b)


class TestSetIsomorphism:
    def test_sets_of_subtrees(self):
        t = build_tree(("r", ("a", "x"), ("a", "x"), ("b", "y")))
        kids = list(t.children(t.root))
        # The two ('a','x') subtrees collapse in set semantics.
        assert sets_isomorphic(t, kids[:2], t, kids[:1])

    def test_sets_differ_on_extra_class(self):
        t = build_tree(("r", ("a", "x"), ("b", "y")))
        kids = list(t.children(t.root))
        assert not sets_isomorphic(t, kids, t, kids[:1])

    def test_paper_figure3_scenario(self):
        """Figure 3: deleting one of two isomorphic subtrees is value-silent.

        The read selects both γ-subtrees; after deleting one, the *set* of
        result trees (up to isomorphism) is unchanged.
        """
        w = build_tree(("r", ("d", ("c", "x")), ("c", "x")))
        d_node = w.children(w.root)[0]
        gamma_inner = w.children(d_node)[0]
        gamma_outer = w.children(w.root)[1]
        after = w.copy()
        after.delete_subtree(d_node)
        assert sets_isomorphic(
            w, [gamma_inner, gamma_outer], after, [gamma_outer]
        )

    def test_multiset_variant_counts(self):
        t = build_tree(("r", ("a", "x"), ("a", "x")))
        kids = list(t.children(t.root))
        assert multisets_isomorphic(t, kids, t, kids)
        assert not multisets_isomorphic(t, kids, t, kids[:1])

    def test_empty_sets(self):
        t = build_tree("a")
        assert sets_isomorphic(t, [], t, [])
        assert canonical_forms_of_set(t, []) == frozenset()

    def test_forms_of_set_matches_individual_forms(self):
        t = build_tree(("r", ("a", "b"), "c"))
        nodes = [t.root, *t.children(t.root)]
        bulk = canonical_forms_of_set(t, nodes)
        individual = {canonical_form(t, n) for n in nodes}
        assert bulk == individual
