"""Tests for the general (branching-read) conflict engine (Theorems 3/5)."""

from __future__ import annotations

import random

import pytest

from repro.conflicts.general import (
    decide_conflict,
    find_witness_exhaustive,
    find_witness_heuristic,
    witness_alphabet,
    witness_size_bound,
)
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.operations.ops import Delete, Insert, Read
from repro.workloads.generators import random_branching_pattern
from repro.xml.random_trees import random_tree


class TestWitnessBound:
    def test_lemma11_formula(self):
        read = Read("a/*/b")  # size 3, star-length 1
        insert = Insert("a/b", "<x/>")  # size 2
        assert witness_size_bound(read, insert) == 3 * 2 * 2

    def test_alphabet_includes_fresh_symbol(self):
        read = Read("a/b")
        insert = Insert("a/b", "<c/>")
        alphabet = witness_alphabet(read, insert)
        assert set(alphabet) > {"a", "b", "c"}
        assert len(alphabet) == 4


class TestExhaustiveSearch:
    def test_finds_predicate_enabling_insert(self):
        """The branching subtlety: R = a[b/c] fires once c is inserted."""
        read = Read("a[b/c]")
        insert = Insert("a/b", "<c/>")
        witness = find_witness_exhaustive(read, insert, max_size=3)
        assert witness is not None
        assert is_witness(witness, read, insert, ConflictKind.NODE)

    def test_finds_predicate_disabling_delete(self):
        read = Read("a[b/c]")
        delete = Delete("a/b/c")
        witness = find_witness_exhaustive(read, delete, max_size=3)
        assert witness is not None
        assert is_witness(witness, read, delete, ConflictKind.NODE)

    def test_no_witness_for_disjoint_operations(self):
        read = Read("a[b]")
        insert = Insert("a/c", "<d/>")
        # Bound: |R|=2, |I|=2, k=0 -> 4; search the full bound.
        bound = witness_size_bound(read, insert)
        witness = find_witness_exhaustive(read, insert, max_size=bound)
        assert witness is None

    def test_stats_counted(self):
        from repro.conflicts.general import SearchStats

        stats = SearchStats()
        find_witness_exhaustive(
            Read("a[b]"), Insert("a/c", "<d/>"), max_size=3, stats=stats
        )
        assert stats.candidates_checked > 0


class TestEnumerateWitnesses:
    def test_yields_only_witnesses_without_duplicates(self):
        from repro.conflicts.general import enumerate_witnesses
        from repro.xml.isomorphism import canonical_form

        read = Read("a/b/c")
        insert = Insert("a/b", "<c/>")
        forms = set()
        for witness in enumerate_witnesses(read, insert, max_size=3):
            assert is_witness(witness, read, insert, ConflictKind.NODE)
            form = canonical_form(witness)
            assert form not in forms
            forms.add(form)
        assert forms, "this pair has small witnesses"

    def test_limit_respected(self):
        from repro.conflicts.general import enumerate_witnesses

        read = Read("a//c")
        insert = Insert("a//b", "<c/>")
        listed = list(enumerate_witnesses(read, insert, max_size=4, limit=3))
        assert len(listed) == 3

    def test_no_witnesses_for_disjoint_pair(self):
        from repro.conflicts.general import enumerate_witnesses

        read = Read("a/b")
        insert = Insert("a/c", "<d/>")
        assert list(enumerate_witnesses(read, insert, max_size=4)) == []


class TestHeuristics:
    def test_heuristic_finds_obvious_conflict(self):
        read = Read("a[b]/c")
        delete = Delete("a/c")
        witness = find_witness_heuristic(read, delete)
        assert witness is not None
        assert is_witness(witness, read, delete, ConflictKind.NODE)

    def test_heuristic_is_sound(self):
        """Whatever the heuristic returns must be a genuine witness."""
        rng = random.Random(42)
        for _ in range(25):
            read = Read(
                random_branching_pattern(rng.randint(1, 4), ("a", "b"), seed=rng)
            )
            insert = Insert(
                random_branching_pattern(
                    rng.randint(1, 3), ("a", "b"), seed=rng
                ),
                random_tree(2, ("a", "b"), seed=rng),
            )
            witness = find_witness_heuristic(read, insert)
            if witness is not None:
                assert is_witness(witness, read, insert, ConflictKind.NODE)


class TestDecideConflict:
    def test_conflict_found(self):
        report = decide_conflict(Read("a[b/c]"), Insert("a/b", "<c/>"))
        assert report.verdict is Verdict.CONFLICT
        assert report.witness is not None

    def test_definitive_no_conflict_when_bound_covered(self):
        read = Read("a[b]")
        insert = Insert("a/c", "<d/>")
        report = decide_conflict(read, insert, exhaustive_cap=10)
        assert report.verdict is Verdict.NO_CONFLICT

    def test_unknown_when_bound_not_covered(self):
        # Large overlapping patterns (the trunk prefilter cannot discharge
        # the pair): the bound far exceeds any tractable cap and the
        # smallest witness has 7 nodes.
        read = Read("a[b][c][d]/e//f")
        delete = Delete("a/e/e/f")
        report = decide_conflict(
            read, delete, exhaustive_cap=2, use_heuristics=False
        )
        assert report.verdict in (Verdict.UNKNOWN, Verdict.CONFLICT)
        if report.verdict is Verdict.UNKNOWN:
            assert report.notes

    def test_heuristics_only_mode(self):
        report = decide_conflict(
            Read("a[b/c]"), Insert("a/b", "<c/>"), exhaustive_cap=None
        )
        assert report.verdict in (Verdict.CONFLICT, Verdict.UNKNOWN)

    def test_stats_exposed(self):
        report = decide_conflict(Read("a[b]"), Insert("a/c", "<d/>"))
        assert "bound" in report.stats


class TestAgainstLinearOnLinearInstances:
    """On linear reads the general engine must agree with the PTIME one."""

    @pytest.mark.parametrize("seed", range(25))
    def test_agreement(self, seed):
        from repro.conflicts.linear import detect_read_insert_linear
        from repro.workloads.generators import random_linear_pattern

        rng = random.Random(seed)
        read = Read(random_linear_pattern(rng.randint(1, 3), ("a", "b"), seed=rng))
        insert = Insert(
            random_linear_pattern(rng.randint(1, 2), ("a", "b"), seed=rng),
            random_tree(rng.randint(1, 2), ("a", "b"), seed=rng),
        )
        linear_verdict = detect_read_insert_linear(read, insert).verdict
        bound = witness_size_bound(read, insert)
        general = decide_conflict(read, insert, exhaustive_cap=min(bound, 5))
        if general.verdict is not Verdict.UNKNOWN:
            assert general.verdict == linear_verdict, f"seed {seed}"
        else:
            # UNKNOWN only allowed when the cap was truncated below the bound.
            assert bound > 5
