"""Unit tests for conflict semantics and witness checking (Lemma 1)."""

from __future__ import annotations

import random

import pytest

from repro.conflicts.semantics import (
    ConflictKind,
    ConflictReport,
    Verdict,
    check_monotonicity,
    is_node_conflict_witness,
    is_tree_conflict_witness,
    is_value_conflict_witness,
    is_witness,
)
from repro.operations.ops import Delete, Insert, Read
from repro.workloads.generators import random_delete, random_insert, random_read
from repro.xml.random_trees import random_tree
from repro.xml.tree import build_tree


class TestNodeConflictWitness:
    def test_insert_creates_read_result(self):
        t = build_tree(("a", "b"))
        read = Read("a/b/c")
        insert = Insert("a/b", "<c/>")
        assert is_node_conflict_witness(t, read, insert)

    def test_insert_unrelated_no_conflict(self):
        t = build_tree(("a", "b"))
        read = Read("a//d")
        insert = Insert("a/b", "<c/>")
        assert not is_node_conflict_witness(t, read, insert)

    def test_insert_enables_predicate(self):
        """Branching subtlety: inserts can select *old* nodes via predicates."""
        t = build_tree(("a", "b"))
        read = Read("a[b/c]")  # selects the root once b has a c child
        insert = Insert("a/b", "<c/>")
        assert is_node_conflict_witness(t, read, insert)

    def test_delete_removes_read_result(self):
        t = build_tree(("a", ("b", "c")))
        read = Read("a//c")
        delete = Delete("a/b")
        assert is_node_conflict_witness(t, read, delete)

    def test_delete_disables_predicate(self):
        t = build_tree(("a", ("b", "c")))
        read = Read("a[b/c]")
        delete = Delete("a/b/c")
        assert is_node_conflict_witness(t, read, delete)

    def test_non_witness(self):
        t = build_tree(("a", "b"))
        assert not is_node_conflict_witness(t, Read("a//z"), Delete("a/b"))


class TestTreeConflictWitness:
    def test_paper_example_root_read_vs_child_insert(self):
        """Section 3's example: node semantics silent, tree semantics loud.

        R returns the root; I inserts under a B child.  No node conflict
        (the root survives), but the root's subtree is modified.
        """
        t = build_tree(("a", "B"))
        read = Read("a")
        insert = Insert("a/B", "<x/>")
        assert not is_node_conflict_witness(t, read, insert)
        assert is_tree_conflict_witness(t, read, insert)

    def test_node_conflict_implies_tree_conflict(self):
        t = build_tree(("a", "b"))
        read = Read("a/b/c")
        insert = Insert("a/b", "<c/>")
        assert is_node_conflict_witness(t, read, insert)
        assert is_tree_conflict_witness(t, read, insert)

    def test_disjoint_modification_no_tree_conflict(self):
        t = build_tree(("a", "b", "d"))
        read = Read("a/d")
        insert = Insert("a/b", "<x/>")
        assert not is_tree_conflict_witness(t, read, insert)

    def test_delete_below_read_result(self):
        t = build_tree(("a", ("b", "c")))
        read = Read("a/b")
        delete = Delete("a/b/c")
        assert not is_node_conflict_witness(t, read, delete)
        assert is_tree_conflict_witness(t, read, delete)


class TestValueConflictWitness:
    def test_figure3_value_silent_delete(self):
        """Figure 3: reference semantics conflicts, value semantics doesn't.

        The read selects all γ descendants; the delete removes a δ child
        whose γ subtree is isomorphic to a surviving one.
        """
        w = build_tree(("r", ("d", ("c", "x")), ("c", "x")))
        read = Read("r//c")
        delete = Delete("r/d")
        assert is_node_conflict_witness(w, read, delete)
        assert is_tree_conflict_witness(w, read, delete)
        assert not is_value_conflict_witness(w, read, delete)

    def test_value_conflict_when_subtree_unique(self):
        w = build_tree(("r", ("d", ("c", "x")), ("c", "y")))
        read = Read("r//c")
        delete = Delete("r/d")
        assert is_value_conflict_witness(w, read, delete)

    def test_insert_changes_selected_subtree_value(self):
        t = build_tree(("a", ("b", "c")))
        read = Read("a/b")
        insert = Insert("a/b/c", "<x/>")
        assert is_value_conflict_witness(t, read, insert)

    def test_insert_into_duplicate_still_value_conflict(self):
        """Inserting into one of two isomorphic selected subtrees.

        After insertion the set of forms grows: {b(c)} vs {b(c), b(c(x))}.
        """
        t = build_tree(("a", ("b", "c"), ("b", "c")))
        read = Read("a/b")
        insert = Insert("a/*/c", "<x/>")
        # Both subtrees get the insert -> both forms change identically;
        # the before/after form-sets differ, so a value conflict.
        assert is_value_conflict_witness(t, read, insert)


class TestDispatch:
    def test_is_witness_dispatch(self):
        t = build_tree(("a", "B"))
        read = Read("a")
        insert = Insert("a/B", "<x/>")
        assert not is_witness(t, read, insert, ConflictKind.NODE)
        assert is_witness(t, read, insert, ConflictKind.TREE)
        assert is_witness(t, read, insert, ConflictKind.VALUE)


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(25))
    def test_insert_grows_delete_shrinks(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng.randint(1, 10), ("a", "b", "c"), seed=rng)
        read = random_read(rng.randint(1, 4), ("a", "b", "c"), seed=rng)
        insert = random_insert(rng.randint(1, 3), alphabet=("a", "b", "c"), seed=rng)
        delete = random_delete(rng.randint(2, 4), ("a", "b", "c"), seed=rng)
        assert check_monotonicity(tree, read, insert), f"seed {seed} (insert)"
        assert check_monotonicity(tree, read, delete), f"seed {seed} (delete)"


class TestConflictReport:
    def test_conflict_property(self):
        yes = ConflictReport(Verdict.CONFLICT, ConflictKind.NODE)
        no = ConflictReport(Verdict.NO_CONFLICT, ConflictKind.NODE)
        unknown = ConflictReport(Verdict.UNKNOWN, ConflictKind.NODE)
        assert yes.conflict and not no.conflict
        with pytest.raises(ValueError):
            _ = unknown.conflict
