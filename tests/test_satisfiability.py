"""Tests for satisfiability and its conflict encoding (Section 6)."""

from __future__ import annotations

import pytest

from repro.conflicts.satisfiability import (
    is_satisfiable,
    satisfiability_via_conflict,
    universal_read,
)
from repro.conflicts.semantics import ConflictKind, is_witness
from repro.operations.ops import Delete
from repro.patterns.embedding import embeds, evaluate
from repro.patterns.xpath import parse_xpath
from repro.xml.tree import build_tree


class TestIsSatisfiable:
    @pytest.mark.parametrize(
        "xpath", ["a", "a/b", "a//b[c]", "*//*", "a[.//b][c/d]//e"]
    )
    def test_always_satisfiable_with_model(self, xpath):
        pattern = parse_xpath(xpath)
        ok, model = is_satisfiable(pattern)
        assert ok
        assert embeds(pattern, model)


class TestUniversalRead:
    def test_selects_every_non_root_node(self):
        t = build_tree(("a", ("b", "c"), "d"))
        result = universal_read().apply(t)
        assert result == set(t.nodes()) - {t.root}

    def test_single_node_tree(self):
        assert universal_read().apply(build_tree("x")) == set()


class TestEncoding:
    @pytest.mark.parametrize("xpath", ["a/b", "a//b", "*/x[y]", "a[b]/c//d"])
    def test_every_delete_conflicts_with_universal_read(self, xpath):
        """Section 6: in this fragment every deletion pattern is
        satisfiable, so the universal read always conflicts with it."""
        delete = Delete(xpath)
        satisfiable, witness = satisfiability_via_conflict(delete)
        assert satisfiable
        assert witness is not None
        assert is_witness(witness, universal_read(), delete, ConflictKind.NODE)

    def test_witness_is_deletion_model(self):
        delete = Delete("a/b")
        _, witness = satisfiability_via_conflict(delete)
        assert evaluate(delete.pattern, witness)
