"""Unit tests for the NFA substrate (:mod:`repro.automata.nfa`)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA


def _literal_nfa(word: str, alphabet: tuple[str, ...]) -> NFA:
    nfa = NFA(alphabet)
    state = nfa.add_state(start=True)
    for symbol in word:
        nxt = nfa.add_state()
        nfa.add_transition(state, symbol, nxt)
        state = nxt
    nfa.accepting.add(state)
    return nfa


class TestBasics:
    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            NFA([])

    def test_accepts_literal(self):
        nfa = _literal_nfa("ab", ("a", "b"))
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b", "a"])
        assert not nfa.accepts(["a", "b", "a"])

    def test_accepts_requires_start(self):
        nfa = NFA(("a",))
        with pytest.raises(ValueError):
            nfa.accepts(["a"])

    def test_unknown_symbol_rejected(self):
        nfa = NFA(("a",))
        s = nfa.add_state(start=True)
        with pytest.raises(ValueError):
            nfa.add_transition(s, "z", s)

    def test_any_transitions_cover_alphabet(self):
        nfa = NFA(("a", "b"))
        s = nfa.add_state(start=True)
        t = nfa.add_state(accepting=True)
        nfa.add_any_transitions(s, t)
        assert nfa.accepts(["a"]) and nfa.accepts(["b"])


class TestEmptinessAndWitness:
    def test_empty_language(self):
        nfa = NFA(("a",))
        nfa.add_state(start=True)
        nfa.add_state(accepting=True)  # unreachable
        assert nfa.is_empty()
        assert nfa.shortest_accepted_word() is None

    def test_epsilon_acceptance(self):
        nfa = NFA(("a",))
        nfa.add_state(start=True, accepting=True)
        assert nfa.shortest_accepted_word() == []

    def test_shortest_word_is_shortest(self):
        # Accepts a+ ; shortest is ["a"].
        nfa = NFA(("a",))
        s = nfa.add_state(start=True)
        t = nfa.add_state(accepting=True)
        nfa.add_transition(s, "a", t)
        nfa.add_transition(t, "a", t)
        assert nfa.shortest_accepted_word() == ["a"]

    def test_witness_is_accepted(self):
        nfa = _literal_nfa("abba", ("a", "b"))
        word = nfa.shortest_accepted_word()
        assert word is not None
        assert nfa.accepts(word)


class TestIntersection:
    def test_disjoint_literals(self):
        a = _literal_nfa("ab", ("a", "b"))
        b = _literal_nfa("ba", ("a", "b"))
        assert a.intersect(b).is_empty()

    def test_common_word(self):
        a = _literal_nfa("ab", ("a", "b"))
        b = _literal_nfa("ab", ("a", "b"))
        inter = a.intersect(b)
        assert inter.shortest_accepted_word() == ["a", "b"]

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _literal_nfa("a", ("a",)).intersect(_literal_nfa("a", ("a", "b")))

    def test_star_intersection(self):
        # L1 = a(.)*  ; L2 = (.)*b  over {a,b}; intersection: a...b.
        alphabet = ("a", "b")
        l1 = NFA(alphabet)
        s0 = l1.add_state(start=True)
        s1 = l1.add_state(accepting=True)
        l1.add_transition(s0, "a", s1)
        l1.add_any_transitions(s1, s1)

        l2 = NFA(alphabet)
        t0 = l2.add_state(start=True)
        t1 = l2.add_state(accepting=True)
        l2.add_any_transitions(t0, t0)
        l2.add_transition(t0, "b", t1)

        word = l1.intersect(l2).shortest_accepted_word()
        assert word == ["a", "b"]


class TestAnySuffix:
    def test_extends_language(self):
        nfa = _literal_nfa("ab", ("a", "b"))
        ext = nfa.with_any_suffix()
        assert ext.accepts(["a", "b"])
        assert ext.accepts(["a", "b", "a", "a"])
        assert not ext.accepts(["a"])

    def test_original_not_mutated(self):
        nfa = _literal_nfa("a", ("a",))
        nfa.with_any_suffix()
        assert not nfa.accepts(["a", "a"])
