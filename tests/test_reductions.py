"""Tests for the NP-hardness reduction gadgets (Theorems 4 and 6).

The central property: for patterns ``p, p'`` the gadget operations conflict
**iff** ``p ⊄ p'``.  We check both directions on hand-picked and random
instances, using the exact containment oracle and, for the conflict side,
either the constructed Figure 7d/8c witnesses (non-containment direction)
or exhaustive search up to the Lemma 11 bound (containment direction, on
small instances).
"""

from __future__ import annotations

import random

import pytest

from repro.conflicts.reductions import (
    read_delete_gadget,
    read_delete_witness_from_noncontainment,
    read_insert_gadget,
    read_insert_witness_from_noncontainment,
)
from repro.conflicts.semantics import ConflictKind, is_witness
from repro.patterns.containment import contains, non_containment_witness
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import containment_pair

#: (p, p', p ⊆ p') triples with small minimal counterexamples.
KNOWN = [
    ("a/b", "a//b", True),
    ("a//b", "a/b", False),
    ("a/b", "a/*", True),
    ("a/*", "a/b", False),
    ("a[b][c]", "a[b]", True),
    ("a[b]", "a[b][c]", False),
    ("a/b/c", "a//c", True),
    ("a//c", "a/b/c", False),
    ("a", "b", False),
    ("a/b", "a/b", True),
]


class TestGadgetShapes:
    def test_insert_gadget_components(self):
        p, q = parse_xpath("a/b"), parse_xpath("a//b")
        read, insert, labels = read_insert_gadget(p, q)
        # q_I = α[β[p][γ]]/β[p']: 2 + (|p|+1) + (1+|q|) nodes.
        assert insert.pattern.size == 2 + p.size + 1 + 1 + q.size
        assert insert.subtree.size == 1
        assert insert.subtree.label(insert.subtree.root) == labels.gamma
        # q_R = α[β[p'][γ]].
        assert read.pattern.size == 2 + q.size + 1
        assert read.pattern.output == read.pattern.root

    def test_delete_gadget_components(self):
        p, q = parse_xpath("a/b"), parse_xpath("a//b")
        read, delete, labels = read_delete_gadget(p, q)
        assert delete.pattern.size == 2 + p.size + 1 + q.size
        assert delete.pattern.label(delete.pattern.output) == labels.gamma
        assert read.pattern.size == 2 + q.size

    def test_gadget_labels_fresh(self):
        p, q = parse_xpath("galpha/gbeta"), parse_xpath("galpha//gbeta")
        _, _, labels = read_insert_gadget(p, q)
        assert labels.alpha not in {"galpha", "gbeta"}
        assert labels.beta not in {"galpha", "gbeta"}

    def test_tree_kind_adds_delta_output(self):
        p, q = parse_xpath("a"), parse_xpath("b")
        read, _, labels = read_insert_gadget(p, q, ConflictKind.TREE)
        assert read.pattern.label(read.pattern.output) == labels.delta


class TestReadInsertReduction:
    @pytest.mark.parametrize("p,q,contained", KNOWN)
    def test_noncontainment_implies_conflict(self, p, q, contained):
        pp, qq = parse_xpath(p), parse_xpath(q)
        assert contains(pp, qq) is contained  # oracle sanity
        read, insert, labels = read_insert_gadget(pp, qq)
        if contained:
            return
        t_p = non_containment_witness(pp, qq)
        assert t_p is not None
        witness = read_insert_witness_from_noncontainment(
            t_p, qq.model(), labels
        )
        assert is_witness(witness, read, insert, ConflictKind.NODE), (
            f"p={p} p'={q}: Figure 7d witness must demonstrate the conflict"
        )

    @pytest.mark.parametrize(
        "p,q", [(p, q) for p, q, contained in KNOWN if contained]
    )
    def test_containment_implies_no_conflict(self, p, q):
        """When p ⊆ p', no tree may witness the gadget conflict.

        Full exhaustive refutation is exponential in the gadget alphabet,
        so the search is capped at witnesses of 5 nodes — large enough to
        cover the Figure 7d shape for these small instances — and the
        heuristic candidate family is screened as well.
        """
        from repro.conflicts.general import (
            find_witness_exhaustive,
            find_witness_heuristic,
        )

        pp, qq = parse_xpath(p), parse_xpath(q)
        read, insert, _ = read_insert_gadget(pp, qq)
        witness = find_witness_exhaustive(
            read, insert, ConflictKind.NODE, max_size=5
        ) or find_witness_heuristic(read, insert, ConflictKind.NODE)
        assert witness is None, (
            f"p={p} ⊆ p'={q} but the gadget conflicts:\n{witness and witness.sketch()}"
        )


class TestReadDeleteReduction:
    @pytest.mark.parametrize("p,q,contained", KNOWN)
    def test_noncontainment_implies_conflict(self, p, q, contained):
        pp, qq = parse_xpath(p), parse_xpath(q)
        read, delete, labels = read_delete_gadget(pp, qq)
        if contained:
            return
        t_p = non_containment_witness(pp, qq)
        assert t_p is not None
        witness = read_delete_witness_from_noncontainment(
            t_p, qq.model(), labels
        )
        assert is_witness(witness, read, delete, ConflictKind.NODE), (
            f"p={p} p'={q}: Figure 8c witness must demonstrate the conflict"
        )

    @pytest.mark.parametrize(
        "p,q", [(p, q) for p, q, contained in KNOWN if contained]
    )
    def test_containment_implies_no_conflict(self, p, q):
        from repro.conflicts.general import (
            find_witness_exhaustive,
            find_witness_heuristic,
        )

        pp, qq = parse_xpath(p), parse_xpath(q)
        read, delete, _ = read_delete_gadget(pp, qq)
        witness = find_witness_exhaustive(
            read, delete, ConflictKind.NODE, max_size=5
        ) or find_witness_heuristic(read, delete, ConflictKind.NODE)
        assert witness is None, (
            f"p={p} ⊆ p'={q} but the gadget conflicts:\n{witness and witness.sketch()}"
        )


class TestRandomizedReduction:
    @pytest.mark.parametrize("seed", range(25))
    def test_insert_gadget_random(self, seed):
        rng = random.Random(seed)
        p, q = containment_pair(rng.randint(1, 3), ("a", "b"), seed=rng)
        read, insert, labels = read_insert_gadget(p, q)
        if contains(p, q):
            return  # conflict-freedom checked on KNOWN (search is pricey)
        t_p = non_containment_witness(p, q)
        assert t_p is not None
        witness = read_insert_witness_from_noncontainment(t_p, q.model(), labels)
        assert is_witness(witness, read, insert, ConflictKind.NODE), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(25))
    def test_delete_gadget_random(self, seed):
        rng = random.Random(seed + 999)
        p, q = containment_pair(rng.randint(1, 3), ("a", "b"), seed=rng)
        read, delete, labels = read_delete_gadget(p, q)
        if contains(p, q):
            return
        t_p = non_containment_witness(p, q)
        assert t_p is not None
        witness = read_delete_witness_from_noncontainment(t_p, q.model(), labels)
        assert is_witness(witness, read, delete, ConflictKind.NODE), f"seed {seed}"
