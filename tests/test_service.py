"""Tests for the long-running conflict service (:mod:`repro.service`).

Most tests run a real :class:`ConflictService` on an ephemeral loopback
port and talk to it with :class:`ServiceClient` — the HTTP layer,
admission control, and drain ordering are exactly what is under test, so
nothing is mocked.  One test exercises the full ``repro serve`` SIGTERM
path as a subprocess.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.conflicts.batch import BatchAnalyzer
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.obs.prometheus import validate_exposition
from repro.errors import (
    CacheCorruptWarning,
    ServiceError,
    ServiceOverloaded,
    ServiceProtocolError,
)
from repro.operations.ops import Delete, Insert, Read
from repro.resilience import faults
from repro.service import ConflictService, ServiceClient, ServiceConfig
from repro.service.config import DEFAULT_PORT
from repro.service.protocol import (
    catalogue_from_specs,
    detector_config_from,
    op_from_spec,
    op_to_spec,
)

CATALOGUE = {
    "titles": {"op": "read", "xpath": "bib/book/title"},
    "restock": {"op": "insert", "xpath": "bib/book", "xml": "<restock/>"},
    "purge": {"op": "delete", "xpath": "bib/book"},
}


def make_service(**overrides) -> ConflictService:
    overrides.setdefault("workers", 2)
    config = ServiceConfig(port=0, **overrides)
    service = ConflictService(config)
    service.start_background()
    return service


@pytest.fixture
def service():
    svc = make_service()
    yield svc
    svc.drain(snapshot=False)


@pytest.fixture
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


class TestProtocol:
    def test_op_specs_round_trip(self):
        for op in (Read("a/b//c"), Insert("a/b", "<x><y/></x>"), Delete("a//b")):
            rebuilt = op_from_spec(op_to_spec(op))
            assert type(rebuilt) is type(op)
            assert op_to_spec(rebuilt) == op_to_spec(op)

    def test_bad_specs_rejected(self):
        with pytest.raises(ServiceProtocolError, match="'op' and 'xpath'"):
            op_from_spec({"xpath": "a"})
        with pytest.raises(ServiceProtocolError, match="unknown op"):
            op_from_spec({"op": "move", "xpath": "a"})
        with pytest.raises(ServiceProtocolError, match="'xpath' must be"):
            op_from_spec({"op": "read", "xpath": 7})
        with pytest.raises(ServiceProtocolError, match="operation 'bad'"):
            catalogue_from_specs({"bad": []})

    def test_deadline_ms_becomes_deadline_s(self):
        config = detector_config_from(
            {"deadline_ms": 250},
            kind=ServiceConfig().kind,
            exhaustive_cap=5,
            default_deadline_ms=None,
        )
        assert config.deadline_s == pytest.approx(0.25)
        # Budget knobs are excluded from the cache fingerprint, so two
        # deadlines share one verdict-cache namespace.
        other = detector_config_from(
            {"deadline_ms": 9000},
            kind=ServiceConfig().kind,
            exhaustive_cap=5,
            default_deadline_ms=None,
        )
        assert config.fingerprint() == other.fingerprint()

    def test_bad_knobs_rejected(self):
        kwargs = dict(
            kind=ServiceConfig().kind, exhaustive_cap=5, default_deadline_ms=None
        )
        with pytest.raises(ServiceProtocolError, match="deadline_ms"):
            detector_config_from({"deadline_ms": -1}, **kwargs)
        with pytest.raises(ServiceProtocolError, match="'budget'"):
            detector_config_from({"budget": True}, **kwargs)
        with pytest.raises(ServiceProtocolError, match="unknown kind"):
            detector_config_from({"kind": "nope"}, **kwargs)


class TestConfigValidation:
    def test_rejects_nonsense(self):
        with pytest.raises(ServiceError):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ServiceError):
            ServiceConfig(port=-1)
        with pytest.raises(ServiceError):
            ServiceConfig(snapshot_interval_s=0)

    def test_default_port(self):
        assert ServiceConfig().port == DEFAULT_PORT


class TestCheck:
    def test_verdict_matches_direct_detector(self, client):
        reference = ConflictDetector().read_update(
            Read("bib/book/title"), Delete("bib/book")
        )
        result = client.check(
            {"op": "read", "xpath": "bib/book/title"},
            {"op": "delete", "xpath": "bib/book"},
        )
        assert result["verdict"] == reference.verdict.value
        assert result["degraded"] is False
        assert result["cached"] is False

    def test_accepts_live_operations(self, client):
        result = client.check(Read("a/b"), Insert("a", "<c/>"), witness=True)
        assert result["verdict"] in ("conflict", "no-conflict", "unknown")
        if result["verdict"] == "conflict":
            assert result["witness"] is not None

    def test_second_identical_check_is_cached(self, client):
        first = client.check(Read("x/y/z"), Delete("x/y"))
        again = client.check(Read("x/y/z"), Delete("x/y"))
        assert again["verdict"] == first["verdict"]
        assert again["cached"] is True
        assert again["method"] == "verdict-cache"

    def test_read_read_never_conflicts(self, client):
        result = client.check(Read("a//b"), {"op": "read", "xpath": "c"})
        assert result["verdict"] == "no-conflict"
        assert result["method"] == "read-read-trivial"

    def test_zero_deadline_degrades_to_unknown(self, client):
        result = client.check(
            Read("deadline/only/pair"), Delete("deadline/only"), deadline_ms=0
        )
        assert result["verdict"] == "unknown"
        assert result["reason"] == "timeout"
        assert result["degraded"] is True
        # Degraded verdicts are never cached: a real budget later must
        # get a chance to decide the pair for real.
        retry = client.check(Read("deadline/only/pair"), Delete("deadline/only"))
        assert retry["cached"] is False
        assert retry["degraded"] is False

    def test_bad_spec_raises_protocol_error(self, client):
        with pytest.raises(ServiceProtocolError, match="unknown op"):
            client.check({"op": "rename", "xpath": "a"}, {"op": "read", "xpath": "b"})

    def test_bad_xpath_is_client_error_not_500(self, client):
        with pytest.raises(ServiceProtocolError):
            client.check(
                {"op": "read", "xpath": "///"}, {"op": "delete", "xpath": "a/b"}
            )


class TestMatrixAndSchedule:
    def test_matrix_matches_batch_analyzer(self, client):
        reference = BatchAnalyzer(DetectorConfig()).analyze(
            catalogue_from_specs(CATALOGUE)
        )
        result = client.matrix(CATALOGUE)
        assert result["stats"]["operations"] == 3
        assert result["verdicts"], "matrix returned no pairs"
        for entry in result["verdicts"]:
            reference_verdict = reference.verdicts[
                (entry["first"], entry["second"])
            ]
            assert entry["verdict"] == reference_verdict.value

    def test_schedule_covers_catalogue(self, client):
        result = client.schedule(CATALOGUE)
        names = [name for batch in result["batches"] for name in batch]
        assert sorted(names) == sorted(CATALOGUE)
        assert result["stats"]["batches"] == len(result["batches"])

    def test_matrix_carries_discharge_schema(self, client):
        spread = dict(CATALOGUE)
        spread["faraway"] = {"op": "delete", "xpath": "inv/item/stale"}
        result = client.matrix(spread)
        assert "discharged" in result["stats"]
        by_pair = {
            (e["first"], e["second"]): e["discharge"]
            for e in result["verdicts"]
        }
        # Disjoint root labels: the chain rule fires at position 0.
        pair = ("titles", "faraway")
        key = pair if pair in by_pair else pair[::-1]
        assert by_pair[key] == "index:chain"

    def test_matrix_index_toggle(self, client):
        spread = dict(CATALOGUE)
        spread["faraway"] = {"op": "delete", "xpath": "inv/item/stale"}
        default = client.matrix(spread)
        plain = client.matrix(spread, index=False, containment=False)
        assert default["stats"]["discharged"] >= 1
        assert plain["stats"]["discharged"] == 0
        assert all(
            not e["discharge"].startswith(("index:", "containment:"))
            for e in plain["verdicts"]
        )
        for on, off in zip(default["verdicts"], plain["verdicts"]):
            assert (on["first"], on["second"], on["verdict"]) == (
                off["first"],
                off["second"],
                off["verdict"],
            )

    def test_missing_ops_is_400(self, client):
        with pytest.raises(ServiceProtocolError, match="'ops'"):
            client._request("POST", "/v1/matrix", {"operations": {}})


class TestHttpSurface:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_metrics_counters_grow(self, client):
        client.check(Read("m/a"), Delete("m/a/b"))
        before = client.metrics()["counters"]
        client.check(Read("m/a"), Delete("m/a/b"))  # cache hit
        client.check(Read("m/c"), Delete("m/c/d"))  # cache miss
        after = client.metrics()["counters"]
        key = "service.requests_total{route=check}"
        assert after[key] == before[key] + 2
        assert (
            after["service.verdict_cache_hits"]
            >= before.get("service.verdict_cache_hits", 0) + 1
        )
        assert after["service.verdict_cache_misses"] > 0
        assert after["service.admitted_total"] == after[key]

    def test_status_codes(self, service):
        import http.client

        def status(method, path, body=None):
            conn = http.client.HTTPConnection(
                "127.0.0.1", service.port, timeout=10
            )
            try:
                headers = {"Content-Type": "application/json"} if body else {}
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                response.read()
                return response.status
            finally:
                conn.close()

        assert status("GET", "/nope") == 404
        assert status("GET", "/v1/check") == 405
        assert status("POST", "/healthz", b"{}") == 405
        assert status("POST", "/v1/check", b"not json") == 400
        assert status("POST", "/v1/check", b"[1, 2]") == 400


class TestOverload:
    def test_queue_overflow_returns_429_and_admitted_work_completes(self):
        faults.install(faults.FaultInjector.parse("slow_decide:1.0:delay=0.3"))
        service = make_service(workers=1, queue_depth=1)
        try:
            total = 6
            barrier = threading.Barrier(total)
            outcomes: list[str] = []
            lock = threading.Lock()

            def fire(index: int) -> None:
                with ServiceClient(port=service.port, timeout=30.0) as c:
                    barrier.wait()
                    try:
                        result = c.check(
                            Read(f"load/p{index}/x"), Delete(f"load/p{index}")
                        )
                        outcome = f"ok:{result['verdict']}"
                    except ServiceOverloaded:
                        outcome = "429"
                with lock:
                    outcomes.append(outcome)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(total)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(outcomes) == total
            rejected = [o for o in outcomes if o == "429"]
            accepted = [o for o in outcomes if o.startswith("ok:")]
            # 1 worker + 1 queue slot against 6 simultaneous requests:
            # overflow must be rejected immediately, never parked.
            assert rejected, outcomes
            assert accepted, outcomes
            for outcome in accepted:
                assert outcome.split(":", 1)[1] in (
                    "conflict", "no-conflict", "unknown"
                )
        finally:
            faults.uninstall()
            service.drain(snapshot=False)

    def test_healthz_still_answers_under_load(self):
        faults.install(faults.FaultInjector.parse("slow_decide:1.0:delay=0.5"))
        service = make_service(workers=1, queue_depth=1)
        try:
            started = threading.Event()

            def slow_check() -> None:
                with ServiceClient(port=service.port, timeout=30.0) as c:
                    started.set()
                    c.check(Read("busy/a/b"), Delete("busy/a"))

            thread = threading.Thread(target=slow_check)
            thread.start()
            started.wait(timeout=10)
            time.sleep(0.1)  # let the check reach the worker
            with ServiceClient(port=service.port, timeout=5.0) as c:
                assert c.healthz()["status"] == "ok"
            thread.join(timeout=30)
        finally:
            faults.uninstall()
            service.drain(snapshot=False)


class TestDrain:
    def test_drain_finishes_inflight_then_rejects(self):
        faults.install(faults.FaultInjector.parse("slow_decide:1.0:delay=0.4"))
        service = make_service(workers=2, queue_depth=8)
        try:
            results: dict[int, dict] = {}
            lock = threading.Lock()
            launched = threading.Barrier(4)

            def fire(index: int) -> None:
                with ServiceClient(port=service.port, timeout=30.0) as c:
                    launched.wait()
                    result = c.check(
                        Read(f"drain/p{index}/x"), Delete(f"drain/p{index}")
                    )
                with lock:
                    results[index] = result

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            launched.wait()
            time.sleep(0.15)  # let the requests be admitted
            service.drain(snapshot=False)
            for t in threads:
                t.join(timeout=60)
            # Every admitted request produced a real response.
            assert sorted(results) == [0, 1, 2]
            for result in results.values():
                assert result["verdict"] in ("conflict", "no-conflict", "unknown")
            # After drain the listener is gone (or answers 503 mid-close):
            # either way no new work is accepted.
            with pytest.raises(ServiceError):
                with ServiceClient(port=service.port, timeout=5.0) as c:
                    c.check(Read("late/a/b"), Delete("late/a"))
        finally:
            faults.uninstall()
            service.drain(snapshot=False)

    def test_drain_is_idempotent(self, service):
        service.drain(snapshot=False)
        service.drain(snapshot=False)


class TestPersistence:
    @pytest.fixture(autouse=True)
    def _no_env_faults(self, monkeypatch):
        """Exact snapshot-content assertions need uninjected writes.

        The CI fault job corrupts a fraction of cache snapshots
        (``cache_corrupt`` — salvage recovers the entries, which other
        tests rely on); here the *bytes on disk* are the subject, so the
        environment injector is removed for the duration.
        """
        monkeypatch.delenv(faults.ENV_SPEC, raising=False)
        faults.uninstall()
        yield
        faults.uninstall()

    def test_drain_writes_snapshot_and_restart_reuses_it(self, tmp_path):
        cache_path = tmp_path / "runs" / "cache.json"
        service = make_service(cache_path=str(cache_path))
        with ServiceClient(port=service.port) as c:
            c.check(Read("persist/a/b"), Delete("persist/a"))
        service.drain()
        assert cache_path.exists()
        payload = json.loads(cache_path.read_text())
        assert payload["version"] == 1
        assert payload["entries"]

        reborn = make_service(cache_path=str(cache_path))
        try:
            with ServiceClient(port=reborn.port) as c:
                result = c.check(Read("persist/a/b"), Delete("persist/a"))
            assert result["cached"] is True
        finally:
            reborn.drain(snapshot=False)

    def test_corrupt_snapshot_is_salvaged_on_boot(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        analyzer = BatchAnalyzer(DetectorConfig())
        analyzer.analyze(catalogue_from_specs(CATALOGUE))
        analyzer.cache.save(cache_path)
        text = cache_path.read_text()
        cache_path.write_text(text[: int(len(text) * 0.7)])

        with pytest.warns(CacheCorruptWarning):
            service = make_service(cache_path=str(cache_path))
        try:
            with ServiceClient(port=service.port) as c:
                health = c.healthz()
            # The valid prefix survived; the service booted regardless.
            assert health["status"] == "ok"
            assert (tmp_path / "cache.json.bak").exists()
        finally:
            service.drain(snapshot=False)

    def test_shard_mode_derives_per_shard_snapshot(self, tmp_path):
        base = tmp_path / "cache.json"
        service = make_service(cache_path=str(base), shard_id=2)
        try:
            with ServiceClient(port=service.port) as c:
                c.check(Read("shardmode/a/b"), Delete("shardmode/a"))
                health = c.healthz()
            assert health["shard_id"] == 2
            assert health["shard_generation"] == 0
        finally:
            service.drain()
        # The shard persists to <base>.shard2, never the shared base path.
        assert not base.exists()
        shard_path = tmp_path / "cache.json.shard2"
        assert shard_path.exists()
        assert json.loads(shard_path.read_text())["shard"] == 2

    def test_periodic_snapshot_thread_writes(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        service = make_service(
            cache_path=str(cache_path), snapshot_interval_s=0.2
        )
        try:
            with ServiceClient(port=service.port) as c:
                c.check(Read("periodic/a/b"), Delete("periodic/a"))
            deadline = time.monotonic() + 10
            while not cache_path.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert cache_path.exists(), "periodic snapshot never written"
        finally:
            service.drain(snapshot=False)


class TestServeSubprocess:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        cache_path = tmp_path / "svc" / "cache.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--workers", "2", "--cache", str(cache_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, f"unparseable boot line: {line!r}"
            port = int(match.group(2))
            with ServiceClient(port=port) as c:
                result = c.check(Read("sub/a/b"), Delete("sub/a"))
                assert result["verdict"] in (
                    "conflict", "no-conflict", "unknown"
                )
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            assert code == 0
            rest = proc.stdout.read()
            assert "draining" in rest
            assert "stopped" in rest
            assert cache_path.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------------------
# Request correlation
# ----------------------------------------------------------------------

class TestRequestCorrelation:
    def test_client_id_reaches_body_spans_and_access_log(self, tmp_path):
        """The acceptance path: one client-supplied id shows up in the
        response body, the server's spans, and the access log."""
        access_path = str(tmp_path / "access.jsonl")
        ring = obs.RingBufferSink(capacity=10_000)
        obs.enable(ring)
        service = make_service(access_log_path=access_path)
        try:
            with ServiceClient(port=service.port, request_id="cli-abc.1") as c:
                result = c.check(
                    {"op": "read", "xpath": "bib/book/title"},
                    {"op": "delete", "xpath": "bib/book"},
                )
                assert result["request_id"] == "cli-abc.1"
                c.healthz()
        finally:
            service.drain(snapshot=False)
            obs.disable()
        tagged = [
            r for r in ring.spans() if r.get("request_id") == "cli-abc.1"
        ]
        names = {r["name"] for r in tagged}
        assert "service.http" in names        # handler thread
        assert "detector.dispatch" in names   # admission worker thread
        records = [json.loads(line) for line in open(access_path)]
        (check_rec,) = [r for r in records if r["route"] == "check"]
        assert check_rec["request_id"] == "cli-abc.1"
        assert check_rec["status"] == 200
        assert check_rec["outcome"] == "ok"
        assert check_rec["verdict"] in ("conflict", "no-conflict", "unknown")
        assert check_rec["cached"] is False
        assert check_rec["queue_wait_ms"] >= 0.0
        assert check_rec["decide_ms"] >= 0.0
        assert check_rec["total_ms"] >= check_rec["decide_ms"]
        assert any(
            r["route"] == "healthz" and r["method"] == "GET" for r in records
        )

    def test_server_mints_id_when_absent(self, client):
        result = client.check(
            {"op": "read", "xpath": "mint/a/b"},
            {"op": "delete", "xpath": "mint/a"},
        )
        assert re.fullmatch(r"[0-9a-f]{12}", result["request_id"])

    def test_per_call_id_beats_client_default(self, service):
        first = {"op": "read", "xpath": "beat/a/b"}
        second = {"op": "delete", "xpath": "beat/a"}
        with ServiceClient(port=service.port, request_id="default-id") as c:
            assert c.check(first, second, request_id="override-id")[
                "request_id"
            ] == "override-id"
            assert c.check(first, second)["request_id"] == "default-id"

    def test_degraded_verdict_still_carries_the_id(self, client):
        result = client.check(
            Read("deg/pair/x"), Delete("deg/pair"),
            deadline_ms=0, request_id="deg-1",
        )
        assert result["degraded"] is True
        assert result["request_id"] == "deg-1"

    def test_malformed_id_is_rejected_not_rewritten(self, client):
        with pytest.raises(ServiceProtocolError, match="request id"):
            client.check(
                {"op": "read", "xpath": "a/b"},
                {"op": "delete", "xpath": "a"},
                request_id="bad id!",
            )

    def test_malformed_header_on_get_is_400(self, service):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10)
        try:
            conn.request("GET", "/healthz", headers={"X-Request-Id": "bad id!"})
            response = conn.getresponse()
            response.read()
            assert response.status == 400
        finally:
            conn.close()


# ----------------------------------------------------------------------
# /metrics content negotiation, introspection telemetry, size cap
# ----------------------------------------------------------------------

class TestMetricsExposition:
    def test_json_remains_the_default(self, client):
        snap = client.metrics()
        assert "counters" in snap and "histograms" in snap
        assert "uptime_s" in snap

    def test_prometheus_text_is_negotiated_and_valid(self, client):
        client.check(
            {"op": "read", "xpath": "expo/a/b"},
            {"op": "delete", "xpath": "expo/a"},
        )
        text = client.metrics_text()
        assert validate_exposition(text) == []
        assert "service_requests_total" in text
        assert "service_request_ms_bucket" in text
        assert 'le="+Inf"' in text
        # The JSON form's convenience fields become plain gauges.
        assert "service_uptime_s" in text

    def test_openmetrics_accept_also_yields_text(self, service):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10)
        try:
            conn.request(
                "GET", "/metrics",
                headers={"Accept": "application/openmetrics-text"},
            )
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert validate_exposition(body) == []
        finally:
            conn.close()

    def test_introspection_routes_are_instrumented(self, client):
        client.healthz()
        snap = client.metrics()
        counters = snap["counters"]
        assert counters.get("service.requests_total{route=healthz}", 0) >= 1
        assert counters.get("service.requests_total{route=metrics}", 0) >= 1
        assert "service.request_ms{route=healthz}" in snap["histograms"]


class TestMetricsSizeCap:
    def test_config_rejects_tiny_cap(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_metrics_bytes=10)

    def test_json_over_cap_is_500_and_prometheus_truncates(self):
        service = make_service(max_metrics_bytes=1024)
        try:
            with ServiceClient(port=service.port) as c:
                for index in range(6):
                    c.check(
                        {"op": "read", "xpath": f"cap/s{index}/x"},
                        {"op": "delete", "xpath": f"cap/s{index}"},
                    )
                with pytest.raises(ServiceError, match="max_metrics_bytes"):
                    c.metrics()
                text = c.metrics_text()
                assert text.endswith(
                    "# repro: exposition truncated at max_metrics_bytes\n"
                )
                # The cut lands on a line boundary: every retained sample
                # line still parses as "name{labels} value".
                for line in text.splitlines():
                    assert not line or line.startswith("#") or " " in line
        finally:
            service.drain(snapshot=False)
