"""Tests for the compile-once layer (:mod:`repro.compile`).

Covers the LRU substrate, interning identity rules (monotonic idents,
generation bumps, per-interner ownership), the compiler's memo families,
the detector cache-key/generation interplay (the aliasing regression),
artifact transport to pool workers — including a full batch round-trip
under ``REPRO_START_METHOD=spawn`` — and the configuration knobs on
:class:`DetectorConfig` and the CLI.
"""

from __future__ import annotations

import pickle

import pytest

from repro.automata.matching import matching_alphabet, matching_word
from repro.cli import main as cli_main
from repro.compile import (
    MISS,
    CompiledArtifact,
    LRUCache,
    PatternCompiler,
    PatternInterner,
    compiler_for_config,
    global_compiler,
    reset_global_compiler,
)
from repro.compile.intern import InternedPattern
from repro.conflicts.batch import (
    BatchAnalyzer,
    VerdictCache,
    reference_matrix,
)
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.linear_dp import matching_profile as raw_matching_profile
from repro.conflicts.semantics import Verdict
from repro.obs.metrics import MetricsRegistry
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.pattern import Axis
from repro.patterns.xpath import parse_xpath


def pattern(xpath: str):
    return parse_xpath(xpath)


# ----------------------------------------------------------------------
# LRU substrate
# ----------------------------------------------------------------------


class TestLRUCache:
    def test_miss_returns_sentinel_not_none(self):
        cache = LRUCache(4)
        assert cache.get("absent") is MISS
        cache.put("nothing", None)
        assert cache.get("nothing") is None  # None is a real cached value

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is MISS
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: "b" survives
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.get("a") == 10

    def test_registry_family_counters(self):
        registry = MetricsRegistry()
        cache = LRUCache(1, registry, family="compile.test")
        cache.get("x")
        cache.put("x", 1)
        cache.get("x")
        cache.put("y", 2)  # evicts x
        snap = registry.snapshot()["counters"]
        assert snap["compile.test.misses"] == 1
        assert snap["compile.test.hits"] == 1
        assert snap["compile.test.evictions"] == 1

    def test_clear_preserves_traffic_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.stats()["size"] == 0
        assert cache.stats()["maxsize"] == 4

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)


# ----------------------------------------------------------------------
# Interning identity
# ----------------------------------------------------------------------


class TestPatternInterner:
    def test_canonically_equal_patterns_share_one_handle(self):
        interner = PatternInterner(16)
        first = interner.intern(pattern("a/b//c"))
        second = interner.intern(pattern("a/b//c"))
        assert first is second
        assert len(interner) == 1

    def test_intern_is_idempotent_on_own_handles(self):
        interner = PatternInterner(16)
        handle = interner.intern(pattern("a//b"))
        assert interner.intern(handle) is handle

    def test_interned_copy_is_isolated_from_caller_mutation(self):
        interner = PatternInterner(16)
        original = pattern("a/b")
        handle = interner.intern(original)
        original.add_child(original.output, "mutant", Axis.CHILD)
        assert handle.pattern.canonical_form() == handle.key

    def test_precomputed_attributes(self):
        interner = PatternInterner(16)
        handle = interner.intern(pattern("a//*/c"))
        assert handle.labels == frozenset({"a", "c"})
        assert handle.is_linear
        assert handle.spine_len == 3
        assert handle.size == 3

    def test_idents_are_monotonic_across_evictions(self):
        interner = PatternInterner(1)
        a_old = interner.intern(pattern("a"))
        b = interner.intern(pattern("b"))  # evicts "a"
        a_new = interner.intern(pattern("a"))  # re-interned, fresh ident
        assert (a_old.ident, b.ident, a_new.ident) == (0, 1, 2)
        assert a_old != a_new  # a stale key can only miss, never alias

    def test_reset_bumps_generation_and_invalidates_handles(self):
        interner = PatternInterner(16)
        before = interner.intern(pattern("a/b"))
        interner.reset()
        after = interner.intern(pattern("c/d"))
        assert interner.generation == 1
        # Same ident slot, different generation: never equal, never aliased.
        assert before.ident == after.ident == 0
        assert before != after
        assert hash(before) != hash(after)
        # A pre-reset handle is re-interned from its canonical form.
        revived = interner.intern(before)
        assert revived.generation == 1
        assert revived.key == before.key

    def test_identities_never_cross_interners(self):
        left = PatternInterner(16).intern(pattern("a"))
        right = PatternInterner(16).intern(pattern("a"))
        assert left.ident == right.ident and left.key == right.key
        assert left != right

    def test_equality_against_foreign_types(self):
        handle = PatternInterner(16).intern(pattern("a"))
        assert handle != "a"
        assert (handle == 42) is False


# ----------------------------------------------------------------------
# The compiler's memo families
# ----------------------------------------------------------------------


class TestPatternCompiler:
    def test_disabled_compiler_is_a_passthrough(self):
        comp = PatternCompiler(enabled=False)
        p = pattern("a/b//c")
        assert comp.handle(p) is p
        assert comp.generation == 0
        assert comp.stats() == {}
        comp.reset()  # no-op, must not raise
        assert comp.trunk(p).canonical_form() == p.trunk().canonical_form()
        calls = []
        assert comp.edge_scan("t", p, p, lambda: calls.append(1) or 7) == 7
        comp.edge_scan("t", p, p, lambda: calls.append(1) or 7)
        assert len(calls) == 2  # never memoized
        assert comp.precompile(Read(pattern("a//b"))) is None
        assert comp.seed(comp.artifact(Delete(pattern("a/b")))) is None

    def test_trunk_is_interned_and_memoized(self):
        comp = PatternCompiler()
        p = pattern("a/b[c]/d")
        first = comp.trunk(p)
        second = comp.trunk(p)
        assert first is second
        assert isinstance(first, InternedPattern)
        assert first.key == p.trunk().canonical_form()

    def test_spine_prefixes_and_suffixes_match_uncached(self):
        comp = PatternCompiler()
        raw = PatternCompiler(enabled=False)
        p = pattern("a//b/*/c")
        for index in range(len(p.spine())):
            cached_pre = comp.as_pattern(comp.spine_prefix(p, index))
            plain_pre = raw.spine_prefix(p, index)
            assert cached_pre.canonical_form() == plain_pre.canonical_form()
            cached_suf = comp.as_pattern(comp.spine_suffix(p, index))
            plain_suf = raw.spine_suffix(p, index)
            assert cached_suf.canonical_form() == plain_suf.canonical_form()

    def test_nfa_and_dfa_are_built_once(self):
        comp = PatternCompiler()
        p = pattern("a//b")
        alphabet = ("a", "b", "z")
        assert comp.nfa(p, alphabet) is comp.nfa(p, alphabet)
        strong = comp.dfa(p, alphabet, weak=False)
        weak = comp.dfa(p, alphabet, weak=True)
        assert strong is comp.dfa(p, alphabet, weak=False)
        assert weak is comp.dfa(p, alphabet, weak=True)
        assert strong is not weak
        assert not strong.accepts(["a", "b", "z"])
        assert weak.accepts(["a", "b", "z"])

    def test_alphabet_matches_matching_alphabet(self):
        comp = PatternCompiler()
        left, right = pattern("a//b"), pattern("c/*")
        expected = matching_alphabet(left, right)
        assert comp.alphabet(left, right) == expected
        assert comp.alphabet(comp.intern(left), comp.intern(right)) == expected

    def test_matching_word_agrees_with_module_level_and_is_cached(self):
        comp = PatternCompiler()
        left, right = pattern("a//b"), pattern("a/*/b")
        for weak in (False, True):
            expected = matching_word(left, right, weak)
            got = comp.matching_word(left, right, weak)
            assert got == expected
            again = comp.matching_word(left, right, weak)
            assert again == got
            if got is not None:
                assert again is not got  # hits return a defensive copy
        assert comp.stats()["compile.match"]["hits"] >= 2

    def test_negative_matching_results_are_cached(self):
        comp = PatternCompiler()
        left, right = pattern("a/b"), pattern("c/d")
        assert comp.matching_word(left, right, weak=False) is None
        assert comp.matching_word(left, right, weak=False) is None
        assert comp.stats()["compile.match"]["hits"] == 1
        assert not comp.match(left, right, weak=False)

    def test_matching_profile_agrees_with_raw_dp(self):
        comp = PatternCompiler()
        trunk, read = pattern("a/b/c"), pattern("a//c")
        strong_raw, weak_raw = raw_matching_profile(trunk, read)
        strong, weak = comp.matching_profile(trunk, read)
        assert strong == frozenset(strong_raw) and weak == frozenset(weak_raw)
        assert comp.matching_profile(trunk, read) == (strong, weak)
        assert comp.stats()["compile.profile"]["hits"] == 1

    def test_edge_scan_computes_once_per_pair(self):
        comp = PatternCompiler()
        read, trunk = pattern("a//b"), pattern("a/b")
        calls = []
        value = comp.edge_scan("tag", read, trunk, lambda: calls.append(1) or 3)
        again = comp.edge_scan("tag", read, trunk, lambda: calls.append(1) or 9)
        assert value == again == 3
        assert len(calls) == 1
        # A different tag is a different memo entry.
        assert comp.edge_scan("other", read, trunk, lambda: 5) == 5

    def test_reset_clears_memos_and_bumps_generation(self):
        comp = PatternCompiler()
        p = pattern("a/b")
        before = comp.intern(p)
        comp.trunk(p)
        comp.reset()
        assert comp.generation == 1
        assert comp.intern(p) != before
        assert comp.stats()["compile.derived"]["size"] == 0

    def test_stats_lists_every_family(self):
        families = set(PatternCompiler().stats())
        assert families == {
            "compile.intern", "compile.nfa", "compile.dfa", "compile.bitmask",
            "compile.match", "compile.profile", "compile.derived",
            "compile.edge",
        }


# ----------------------------------------------------------------------
# Compiled-artifact transport (parent -> pool worker)
# ----------------------------------------------------------------------


class TestCompiledArtifacts:
    def test_artifact_round_trip_rebuilds_identical_interned_pattern(self):
        parent = PatternCompiler()
        op = Delete(pattern("a/b//c"))
        artifact = parent.artifact(op)
        wire = pickle.loads(pickle.dumps(artifact))
        assert wire == artifact

        worker = PatternCompiler()
        interned = worker.seed(wire)
        assert interned is not None
        assert interned.key == artifact.pattern_key
        assert interned.key == parent.intern(op.pattern).key
        # The trunk arrived pre-derived: deriving it now is a cache hit.
        hits_before = worker.stats()["compile.derived"]["hits"]
        trunk = worker.trunk(interned)
        assert worker.stats()["compile.derived"]["hits"] == hits_before + 1
        assert trunk.key == parent.trunk(op.pattern).key

    def test_read_artifact_seeds_spine_prefixes_and_suffixes(self):
        parent = PatternCompiler()
        read = Read(pattern("a//b/c"))
        artifact = parent.artifact(read)
        assert artifact.kind == "Read"
        assert artifact.trunk_xpath is None
        worker = PatternCompiler()
        worker.seed(artifact)
        hits_before = worker.stats()["compile.derived"]["hits"]
        worker.spine_prefix(read.pattern, 1)
        worker.spine_suffix(read.pattern, 1)
        assert worker.stats()["compile.derived"]["hits"] == hits_before + 2

    def test_insert_artifact_carries_trunk(self):
        comp = PatternCompiler()
        insert = Insert(pattern("a/b"), "<c/>")
        artifact = comp.artifact(insert)
        assert artifact.kind == "Insert"
        assert artifact.trunk_xpath is not None
        assert artifact.linear

    def test_seed_refuses_a_mismatched_key(self):
        comp = PatternCompiler()
        good = comp.artifact(Delete(pattern("a/b")))
        tampered = CompiledArtifact(
            kind=good.kind,
            xpath=good.xpath,
            pattern_key="not-the-real-key",
            trunk_xpath="z/z",
            linear=good.linear,
        )
        worker = PatternCompiler()
        interned = worker.seed(tampered)
        assert interned is not None  # the pattern itself still interns
        # ... but the suspicious trunk was not adopted.
        trunk = worker.trunk(interned)
        assert trunk.key == pattern("a/b").trunk().canonical_form()

    def test_disabled_compiler_still_builds_artifacts(self):
        comp = PatternCompiler(enabled=False)
        artifact = comp.artifact(Delete(pattern("a/b")))
        assert artifact.pattern_key == pattern("a/b").canonical_form()
        assert artifact.trunk_xpath is not None


# ----------------------------------------------------------------------
# Configuration plumbing: compiler_for_config, detector knobs, CLI
# ----------------------------------------------------------------------


class TestConfigurationKnobs:
    def test_compiler_for_config_disabled_paths(self):
        assert not compiler_for_config(False, None).enabled
        assert not compiler_for_config(True, 0).enabled
        assert not compiler_for_config(True, -3).enabled

    def test_compiler_for_config_private_and_global(self):
        registry = MetricsRegistry()
        private = compiler_for_config(True, 64, registry)
        assert private.enabled and private is not global_compiler()
        assert private.registry is registry
        assert compiler_for_config(True, None) is global_compiler()

    def test_global_compiler_is_a_singleton_until_reset(self):
        first = global_compiler()
        assert global_compiler() is first
        generation = first.generation
        reset_global_compiler()
        assert global_compiler() is first
        assert first.generation == generation + 1

    def test_detector_config_carries_compile_knobs(self):
        config = DetectorConfig(compile_cache=False, compile_cache_size=7)
        detector = config.build()
        assert not detector.compiler.enabled
        assert detector.config.compile_cache is False
        assert detector.config.compile_cache_size == 7

    def test_compile_knobs_do_not_change_the_fingerprint(self):
        # The compile cache is a speed knob: verdicts are identical either
        # way, so VerdictCache entries must stay shareable across settings.
        assert (
            DetectorConfig(compile_cache=False).fingerprint()
            == DetectorConfig(compile_cache_size=9).fingerprint()
            == DetectorConfig().fingerprint()
        )

    def test_detector_private_size_gets_private_compiler(self):
        detector = ConflictDetector(compile_cache_size=32)
        assert detector.compiler.enabled
        assert detector.compiler is not global_compiler()

    def test_detector_default_shares_the_global_compiler(self):
        assert ConflictDetector().compiler is global_compiler()

    def test_cli_compile_cache_size_flag(self, capsys):
        argv = ["check", "--read", "*//C", "--insert", "*/B", "--xml", "<C/>"]
        assert cli_main(argv) == 1
        assert cli_main(argv + ["--compile-cache-size", "64"]) == 1
        assert cli_main(argv + ["--compile-cache-size", "0"]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# Detector cache keys vs compile-cache generations (the aliasing bug)
# ----------------------------------------------------------------------


class TestDetectorCacheKeyGenerations:
    def test_structurally_equal_queries_share_a_cache_entry(self):
        detector = ConflictDetector(compile_cache_size=64)
        first = detector.read_delete(Read(pattern("a//b")), Delete(pattern("a/b")))
        again = detector.read_delete(Read(pattern("a//b")), Delete(pattern("a/b")))
        assert first.verdict is again.verdict
        assert detector.cache_hits == 1

    def test_compile_cache_reset_cannot_alias_detector_entries(self):
        """Regression: interned idents restart after a reset.

        Before generations were part of interned identity, pattern pairs
        interned *after* a compiler reset reused idents 0, 1, ... and
        collided with detector-cache keys minted before the reset,
        silently serving the wrong pair's verdict.
        """
        compiler = PatternCompiler(maxsize=64)
        detector = ConflictDetector(compiler=compiler)
        conflicting = detector.read_delete(
            Read(pattern("a//b")), Delete(pattern("a/b"))
        )
        assert conflicting.verdict is Verdict.CONFLICT

        compiler.reset()
        # These operands now intern to the same fresh idents the first
        # pair held before the reset; the key must still be distinct.
        disjoint = detector.read_delete(
            Read(pattern("x/y")), Delete(pattern("p/q"))
        )
        assert disjoint.verdict is Verdict.NO_CONFLICT
        assert detector.cache_hits == 0

        # And the first pair, re-asked post-reset, is recomputed correctly.
        recomputed = detector.read_delete(
            Read(pattern("a//b")), Delete(pattern("a/b"))
        )
        assert recomputed.verdict is Verdict.CONFLICT

    def test_cached_entries_export_plain_string_keys(self):
        detector = ConflictDetector(compile_cache_size=64)
        detector.read_delete(Read(pattern("a//b")), Delete(pattern("a/b")))
        entries = list(detector.cached_entries())
        assert entries
        for _fingerprint, key_a, key_b, verdict in entries:
            assert isinstance(key_a[1], str) and isinstance(key_b[1], str)
            assert isinstance(verdict, Verdict)

    def test_verdict_cache_absorbs_compiled_detector(self):
        detector = ConflictDetector(compile_cache_size=64)
        detector.read_delete(Read(pattern("a//b")), Delete(pattern("a/b")))
        cache = VerdictCache()
        assert cache.absorb_detector(detector) == 1
        key = VerdictCache.pair_key(
            detector.config.fingerprint(),
            ("Read", pattern("a//b").canonical_form(), None),
            ("Delete", pattern("a/b").canonical_form(), None),
        )
        assert cache.get(key) is Verdict.CONFLICT


# ----------------------------------------------------------------------
# Batch round-trip under spawn (satellite: worker seeding equivalence)
# ----------------------------------------------------------------------

SPAWN_OPS = {
    "titles": Read(parse_xpath("bib/book/title")),
    "prices": Read(parse_xpath("bib//price")),
    "restock": Insert(parse_xpath("bib/book"), "<restock/>"),
    "tag": Insert(parse_xpath("bib//author"), "<tagged/>"),
    "purge": Delete(parse_xpath("bib/book")),
}

# The spawn tests exercise artifact transport, not search depth: a small
# exhaustive cap keeps the NP-side update-update pairs cheap while still
# deciding every pair the same way on both sides of the comparison.
SPAWN_CONFIG = DetectorConfig(exhaustive_cap=4)


class TestSpawnRoundTrip:
    def test_spawn_workers_receive_seeded_compilers(self, monkeypatch):
        """A spawn pool (no inherited memory) must match the reference.

        Workers rebuild their compile caches purely from the shipped
        :class:`CompiledArtifact` list, so verdict equality here proves
        the transport reconstructs every pattern identically.
        """
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        cache = VerdictCache()
        analyzer = BatchAnalyzer(SPAWN_CONFIG, jobs=2, cache=cache)
        matrix = analyzer.analyze(SPAWN_OPS)

        reference = reference_matrix(
            SPAWN_OPS,
            ConflictDetector(exhaustive_cap=4, compile_cache=False),
        )
        assert matrix.verdicts == reference.verdicts
        assert len(cache) > 0
        assert analyzer.metrics()["counters"].get("batch.ops_precompiled") == len(
            SPAWN_OPS
        )

        # A second analyzer sharing the verdict cache answers everything
        # from it — no pool, same matrix.
        warm = BatchAnalyzer(SPAWN_CONFIG, jobs=2, cache=cache)
        assert warm.analyze(SPAWN_OPS).verdicts == matrix.verdicts

    def test_fork_and_spawn_agree(self, monkeypatch):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        monkeypatch.setenv("REPRO_START_METHOD", "fork")
        forked = BatchAnalyzer(SPAWN_CONFIG, jobs=2).analyze(SPAWN_OPS)
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        spawned = BatchAnalyzer(SPAWN_CONFIG, jobs=2).analyze(SPAWN_OPS)
        assert forked.verdicts == spawned.verdicts
