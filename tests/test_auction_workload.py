"""Tests for the auction-site workload and detector caching behavior."""

from __future__ import annotations

import pytest

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.semantics import Verdict
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.embedding import evaluate
from repro.patterns.xpath import parse_xpath
from repro.xml.random_trees import auction_site
from repro.xml.serializer import serialize
from repro.xml.parser import parse


class TestAuctionSite:
    def test_shape(self):
        doc = auction_site(items=8, people=4, seed=1)
        doc.validate()
        top = sorted(doc.label(c) for c in doc.children(doc.root))
        assert top == ["open_auctions", "people", "regions"]

    def test_item_count(self):
        doc = auction_site(items=12, people=3, seed=2)
        items = evaluate(parse_xpath("//item"), doc)
        assert len(items) == 12

    def test_people_count(self):
        doc = auction_site(items=4, people=9, seed=3)
        persons = evaluate(parse_xpath("site/people/person"), doc)
        assert len(persons) == 9

    def test_deterministic(self):
        assert auction_site(seed=4).equivalent(auction_site(seed=4))

    def test_nested_parlists_exist(self):
        doc = auction_site(items=30, people=2, seed=5)
        nested = evaluate(parse_xpath("//parlist//parlist"), doc)
        assert nested, "recursive descriptions should occur at this size"

    def test_round_trips_through_xml(self):
        doc = auction_site(items=3, people=2, seed=6)
        from repro.xml.isomorphism import isomorphic

        assert isomorphic(doc, parse(serialize(doc)))

    def test_conflict_analysis_on_auctions(self):
        detector = ConflictDetector()
        close_auctions = Delete("site/open_auctions/open_auction")
        read_bidders = Read("//bidder/increase")
        read_people = Read("site/people/person/name")
        assert (
            detector.read_delete(read_bidders, close_auctions).verdict
            is Verdict.CONFLICT
        )
        assert (
            detector.read_delete(read_people, close_auctions).verdict
            is Verdict.NO_CONFLICT
        )


class TestDetectorCache:
    def test_cache_hit_on_repeat_query(self):
        detector = ConflictDetector()
        read, insert = Read("a/b"), Insert("a", "<b/>")
        first = detector.read_insert(read, insert)
        hits_before = detector.cache_hits
        second = detector.read_insert(Read("a/b"), Insert("a", "<b/>"))
        assert detector.cache_hits == hits_before + 1
        assert first.verdict == second.verdict

    def test_cache_respects_structure_not_identity(self):
        detector = ConflictDetector()
        detector.read_insert(Read("a/b"), Insert("a", "<b/>"))
        # Same structure built differently must hit.
        pattern = parse_xpath("a/b")
        detector.read_insert(Read(pattern), Insert(parse_xpath("a"), parse("<b/>")))
        assert detector.cache_hits >= 1

    def test_different_x_misses(self):
        detector = ConflictDetector()
        detector.read_insert(Read("a//b"), Insert("a", "<b/>"))
        misses = detector.cache_misses
        detector.read_insert(Read("a//b"), Insert("a", "<c/>"))
        assert detector.cache_misses == misses + 1

    def test_cache_can_be_disabled(self):
        detector = ConflictDetector(cache=False)
        detector.read_insert(Read("a/b"), Insert("a", "<b/>"))
        detector.read_insert(Read("a/b"), Insert("a", "<b/>"))
        assert detector.cache_hits == 0

    def test_cached_reports_are_independent(self):
        """Mutating one returned report must not corrupt the cache."""
        detector = ConflictDetector()
        first = detector.read_insert(Read("a/b"), Insert("a", "<b/>"))
        first.notes.append("caller scribbles")
        second = detector.read_insert(Read("a/b"), Insert("a", "<b/>"))
        assert "caller scribbles" not in second.notes
