"""Tests for read hoisting (code motion, Section 1's optimization)."""

from __future__ import annotations

import pytest

from repro.lang.analysis import hoist_reads
from repro.lang.ast import ReadStmt
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.workloads.generators import random_program


class TestHoisting:
    def test_safe_read_moves_above_insert(self):
        program = parse_program(
            """
            x = <doc><B/><A/></doc>
            insert $x/B, <C/>
            y = read $x//A
            """
        )
        result = hoist_reads(program)
        kinds = [type(s).__name__ for s in result.program]
        assert kinds == ["AssignStmt", "ReadStmt", "InsertStmt"]
        assert result.moves  # something moved

    def test_conflicting_read_stays_put(self):
        program = parse_program(
            """
            x = <doc><B/></doc>
            insert $x/B, <C/>
            z = read $x//C
            """
        )
        result = hoist_reads(program)
        kinds = [type(s).__name__ for s in result.program]
        assert kinds == ["AssignStmt", "InsertStmt", "ReadStmt"]
        assert not result.moves

    def test_read_never_crosses_assignment(self):
        program = parse_program(
            """
            x = <doc><A/></doc>
            y = read $x//A
            """
        )
        result = hoist_reads(program)
        assert not result.moves

    def test_same_target_reads_keep_order(self):
        program = parse_program(
            """
            x = <doc><A/><B/></doc>
            y = read $x//A
            y = read $x//B
            """
        )
        result = hoist_reads(program)
        reads = [s for s in result.program if isinstance(s, ReadStmt)]
        assert [str(r.pattern.label(r.pattern.output)) for r in reads] == ["A", "B"]

    def test_semantics_preserved_on_paper_fragment(self):
        program = parse_program(
            """
            x = <doc><B/><A/></doc>
            insert $x/B, <C/>
            y = read $x//A
            z = read $x//C
            delete $x//C
            w = read $x//A
            """
        )
        result = hoist_reads(program)
        original = run_program(program)
        hoisted = run_program(result.program)
        for name in original.reads:
            assert original.reads[name] == hoisted.reads[name], name
        assert original.trees["x"].equivalent(hoisted.trees["x"])

    @pytest.mark.parametrize("seed", range(10))
    def test_semantics_preserved_on_random_programs(self, seed):
        program = random_program(8, variables=2, seed=seed)
        result = hoist_reads(program)
        original = run_program(program)
        hoisted = run_program(result.program)
        for name in original.reads:
            assert original.reads[name] == hoisted.reads[name], (
                f"seed {seed}: read {name} diverged after hoisting"
            )
        for name in original.trees:
            assert original.trees[name].equivalent(hoisted.trees[name]), (
                f"seed {seed}: tree {name} diverged after hoisting"
            )

    def test_moves_map_is_consistent(self):
        program = parse_program(
            """
            x = <doc><B/><A/></doc>
            insert $x/B, <C/>
            y = read $x//A
            """
        )
        result = hoist_reads(program)
        # The read (old index 2) moved to slot 1; the insert to slot 2.
        assert result.moves == {2: 1, 1: 2}
