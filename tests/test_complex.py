"""Tests for update-update commutativity conflicts (Section 6)."""

from __future__ import annotations

import pytest

from repro.conflicts.complex import (
    detect_update_update,
    find_commutativity_witness_exhaustive,
    is_commutativity_witness,
)
from repro.conflicts.semantics import Verdict
from repro.operations.ops import Delete, Insert
from repro.xml.tree import build_tree


class TestWitnessCheck:
    def test_identical_inserts_commute(self):
        """The paper's motivating point: identical inserts must not conflict
        under value semantics (reference semantics would false-positive)."""
        t = build_tree(("a", "b"))
        ins = Insert("a/b", "<x/>")
        other = Insert("a/b", "<x/>")
        assert not is_commutativity_witness(t, ins, other)

    def test_insert_enables_insert(self):
        t = build_tree(("a", "b"))
        first = Insert("a/b", "<c/>")
        second = Insert("a/b/c", "<d/>")
        # Order matters: second fires only after first created the c.
        assert is_commutativity_witness(t, first, second)

    def test_delete_then_insert_vs_insert_then_delete(self):
        t = build_tree(("a", "b"))
        delete = Delete("a/b")
        insert = Insert("a/b", "<c/>")
        # delete-first removes b so the insert is a no-op; insert-first
        # grafts c under b and then the delete removes both: results equal
        # (both end at bare a)?  insert(delete(t)) = a; delete(insert(t)) =
        # a.  Isomorphic -> not a witness.
        assert not is_commutativity_witness(t, delete, insert)

    def test_delete_insert_genuine_conflict(self):
        t = build_tree(("a", "b"))
        delete = Delete("a/b/c")  # only fires after the insert adds c
        insert = Insert("a/b", "<c/>")
        # insert-then-delete: c added then removed -> a(b).
        # delete-then-insert: delete no-op, insert adds c -> a(b(c)).
        assert is_commutativity_witness(t, insert, delete)

    def test_disjoint_updates_commute(self):
        t = build_tree(("a", "b", "d"))
        assert not is_commutativity_witness(
            t, Insert("a/b", "<x/>"), Insert("a/d", "<y/>")
        )

    def test_delete_delete_overlap_commutes(self):
        """Deletions commute even when nested (both orders yield the same)."""
        t = build_tree(("a", ("b", "c")))
        d1 = Delete("a/b")
        d2 = Delete("a/b/c")
        assert not is_commutativity_witness(t, d1, d2)


class TestExhaustiveSearch:
    def test_finds_insert_insert_conflict(self):
        first = Insert("a/b", "<c/>")
        second = Insert("a/b/c", "<d/>")
        witness = find_commutativity_witness_exhaustive(first, second, max_size=3)
        assert witness is not None
        assert is_commutativity_witness(witness, first, second)

    def test_no_witness_for_commuting_pair(self):
        first = Insert("a/b", "<x/>")
        second = Insert("a/d", "<y/>")
        witness = find_commutativity_witness_exhaustive(first, second, max_size=4)
        assert witness is None


class TestDetect:
    def test_conflict_detected(self):
        report = detect_update_update(
            Insert("a/b", "<c/>"), Insert("a/b/c", "<d/>")
        )
        assert report.verdict is Verdict.CONFLICT
        assert report.witness is not None

    def test_unknown_for_commuting_pair(self):
        """No witness-size bound is proved, so the engine cannot say NO."""
        report = detect_update_update(
            Insert("a/b", "<x/>"), Insert("a/d", "<y/>"), exhaustive_cap=3
        )
        assert report.verdict is Verdict.UNKNOWN
        assert report.notes

    def test_heuristic_path(self):
        report = detect_update_update(
            Insert("a/b", "<c/>"),
            Delete("a/b/c"),
            exhaustive_cap=None,
        )
        assert report.verdict in (Verdict.CONFLICT, Verdict.UNKNOWN)
        if report.verdict is Verdict.CONFLICT:
            assert report.method == "heuristic"


class TestReductionStyleInstances:
    """Insert-insert conflicts built from containment instances (§6 remark)."""

    @pytest.mark.parametrize(
        "p,q,contained",
        [("a/b", "a//b", True), ("a//b", "a/b", False)],
    )
    def test_gadget_like_pair(self, p, q, contained):
        """I1 inserts a marker where p holds; I2 inserts where p' holds then
        reads... simplified: I2's pattern extends I1's marker, so conflict
        arises exactly when I1 can fire where I2's pattern then applies."""
        first = Insert(f"{p}", "<marker/>")
        second = Insert(f"{q}/marker", "<inner/>")
        witness = find_commutativity_witness_exhaustive(first, second, max_size=4)
        # first-then-second nests inner under marker; second-then-first
        # leaves inner out.  This requires p to fire somewhere q also
        # fires, which holds for both orientations here.
        assert witness is not None
