"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.compile.compiler import reset_global_compiler
from repro.xml.tree import XMLTree, build_tree


@pytest.fixture(autouse=True)
def _cold_global_compiler():
    """Start every test with a cold process-global compile cache.

    Several observability tests assert that inner instruments (NFA build
    counters, matching spans) fire on a fresh query; a compiler warmed by
    an earlier test would legitimately skip that work.  Resetting also
    keeps tests order-independent.
    """
    reset_global_compiler()
    yield


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def figure1_tree() -> XMLTree:
    """The bookstore document of Figure 1 (structure approximated).

    bib
    ├── book ── title, publisher ── name, quantity(3)
    └── book ── title, quantity(50)
    """
    return build_tree(
        (
            "bib",
            (
                "book",
                ("title", "#text:TCP/IP Illustrated"),
                ("publisher", ("name", "#text:Addison")),
                ("quantity", "#text:3"),
            ),
            (
                "book",
                ("title", "#text:Data on the Web"),
                ("quantity", "#text:50"),
            ),
        )
    )


@pytest.fixture
def figure2_tree() -> XMLTree:
    """A tree embedding the Figure 2 pattern ``a[.//c]/b[d][*//f]``."""
    return build_tree(
        ("a", ("x", "c"), ("b", "d", ("g", ("h", "f"))))
    )
