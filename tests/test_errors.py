"""Tests for the exception hierarchy (:mod:`repro.errors`)."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ConflictEngineError,
    LanguageError,
    NodeNotFoundError,
    NotLinearError,
    OperationError,
    PatternError,
    ProgramParseError,
    ProgramRuntimeError,
    ReproError,
    SearchBudgetExceeded,
    TreeStructureError,
    XMLError,
    XMLParseError,
    XPathSyntaxError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            XMLError,
            XMLParseError,
            NodeNotFoundError,
            TreeStructureError,
            PatternError,
            XPathSyntaxError,
            NotLinearError,
            OperationError,
            ConflictEngineError,
            SearchBudgetExceeded,
            LanguageError,
            ProgramParseError,
            ProgramRuntimeError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_xml_subtree(self):
        assert issubclass(XMLParseError, XMLError)
        assert issubclass(NodeNotFoundError, XMLError)
        assert issubclass(TreeStructureError, XMLError)

    def test_pattern_subtree(self):
        assert issubclass(XPathSyntaxError, PatternError)
        assert issubclass(NotLinearError, PatternError)

    def test_language_subtree(self):
        assert issubclass(ProgramParseError, LanguageError)
        assert issubclass(ProgramRuntimeError, LanguageError)


class TestErrorPayloads:
    def test_xml_parse_error_position(self):
        error = XMLParseError("boom", position=17)
        assert error.position == 17
        assert "offset 17" in str(error)

    def test_xml_parse_error_without_position(self):
        assert XMLParseError("boom").position is None

    def test_xpath_error_position(self):
        error = XPathSyntaxError("bad", position=3)
        assert error.position == 3
        assert "offset 3" in str(error)

    def test_program_parse_error_line(self):
        error = ProgramParseError("nope", line=4)
        assert error.line == 4
        assert str(error).startswith("line 4:")

    def test_search_budget_carries_count(self):
        error = SearchBudgetExceeded("too big", explored=123)
        assert error.explored == 123


class TestCatchability:
    def test_one_except_clause_covers_the_library(self):
        """The API-boundary pattern: catch ReproError once."""
        failures = 0
        for action in (
            lambda: repro.parse("<unclosed>"),
            lambda: repro.parse_xpath("]["),
            lambda: repro.Delete("a"),
            lambda: repro.build_tree((1, 2)),  # type: ignore[arg-type]
        ):
            try:
                action()
            except ReproError:
                failures += 1
        assert failures == 4
