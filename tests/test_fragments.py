"""Tests for the wildcard-free fragment P^{//,[]} (Section 6).

For patterns without ``*``, the homomorphism criterion decides containment
exactly in PTIME.  These tests validate the claim against the exact
canonical-model oracle and brute force on randomized wildcard-free pairs.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import PatternError
from repro.patterns.containment import (
    contains,
    contains_bruteforce,
    contains_no_wildcard,
)
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import containment_pair, random_branching_pattern


class TestKnownCases:
    @pytest.mark.parametrize(
        "p,q,expected",
        [
            ("a/b", "a//b", True),
            ("a//b", "a/b", False),
            ("a/b/c", "a//c", True),
            ("a[b][c]", "a[b]", True),
            ("a[b]", "a[b][c]", False),
            ("a[b/c]", "a[.//c]", True),
            ("a[.//c]", "a[b/c]", False),
            ("a//b//c", "a//c", True),
            ("a[b][b/c]", "a[b/c]", True),
        ],
    )
    def test_cases(self, p, q, expected):
        assert contains_no_wildcard(parse_xpath(p), parse_xpath(q)) is expected

    def test_wildcards_rejected(self):
        with pytest.raises(PatternError):
            contains_no_wildcard(parse_xpath("a/*"), parse_xpath("a/b"))
        with pytest.raises(PatternError):
            contains_no_wildcard(parse_xpath("a/b"), parse_xpath("a/*"))


class TestAgainstExactOracle:
    @pytest.mark.parametrize("seed", range(50))
    def test_matches_canonical_model_containment(self, seed):
        rng = random.Random(seed)
        p, q = containment_pair(rng.randint(1, 4), ("a", "b", "c"), seed=rng)
        if any(p.is_wildcard(n) for n in p.nodes()):
            return
        if any(q.is_wildcard(n) for n in q.nodes()):
            return
        assert contains_no_wildcard(p, q) == contains(p, q), f"seed {seed}"

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed + 777)
        p = random_branching_pattern(
            rng.randint(1, 3), ("a", "b"), p_wildcard=0.0, seed=rng, output="root"
        )
        q = random_branching_pattern(
            rng.randint(1, 3), ("a", "b"), p_wildcard=0.0, seed=rng, output="root"
        )
        fast = contains_no_wildcard(p, q)
        if fast:
            assert contains_bruteforce(p, q, max_size=5), f"seed {seed}"
        else:
            assert not contains(p, q), f"seed {seed}"
