"""Tests for the one-pass DP detectors (the REMARK after Theorem 1).

The DP detectors must agree with the per-edge NFA-based algorithms —
which are themselves cross-validated against exhaustive search — on every
instance, and the matching profile must agree with the per-prefix
weak/strong matching primitives.
"""

from __future__ import annotations

import random

import pytest

from repro.automata.matching import match_strongly, match_weakly
from repro.conflicts.linear import (
    detect_read_delete_linear,
    detect_read_insert_linear,
)
from repro.conflicts.linear_dp import (
    detect_read_delete_linear_dp,
    detect_read_insert_linear_dp,
    matching_profile,
)
from repro.conflicts.semantics import Verdict
from repro.errors import NotLinearError
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.xpath import parse_xpath
from repro.workloads.generators import (
    random_branching_pattern,
    random_linear_pattern,
)
from repro.xml.random_trees import random_tree

ALPHABET = ("a", "b", "c")


class TestMatchingProfile:
    @pytest.mark.parametrize("seed", range(60))
    def test_profile_matches_per_prefix_primitives(self, seed):
        rng = random.Random(seed)
        trunk = random_linear_pattern(rng.randint(1, 4), ALPHABET, seed=rng)
        read = random_linear_pattern(rng.randint(1, 5), ALPHABET, seed=rng)
        strong, weak = matching_profile(trunk, read)
        spine = read.spine()
        for j in range(1, len(spine) + 1):
            prefix = read.seq_root_to(spine[j - 1])
            assert (j in strong) == match_strongly(trunk, prefix), (
                f"seed {seed}, strong prefix {j}"
            )
            assert (j in weak) == match_weakly(trunk, prefix), (
                f"seed {seed}, weak prefix {j}"
            )

    def test_profile_known_case(self):
        trunk = parse_xpath("a/b")
        read = parse_xpath("a//c")
        strong, weak = matching_profile(trunk, read)
        # Prefix 'a' (1 node): trunk a/b ends strictly below -> weak only.
        assert 1 in weak and 1 not in strong
        # Prefix 'a//c' (2 nodes): trunk output b cannot be c -> no strong;
        # but b can sit below a c?  c needs to be below a... chain a,c,b:
        # trunk a/b requires b child of a -- fails; chain a,b: c nowhere.
        assert 2 not in strong

    def test_rejects_branching(self):
        with pytest.raises(NotLinearError):
            matching_profile(parse_xpath("a[b]/c"), parse_xpath("a/b"))


class TestAgreementWithNFAAlgorithms:
    @pytest.mark.parametrize("seed", range(80))
    def test_read_delete_agreement(self, seed):
        rng = random.Random(seed)
        read = Read(random_linear_pattern(rng.randint(1, 5), ALPHABET, seed=rng))
        delete = Delete(
            random_branching_pattern(
                rng.randint(2, 4), ALPHABET, seed=rng, output="leaf"
            )
            if rng.random() < 0.5
            else random_linear_pattern(rng.randint(2, 4), ALPHABET, seed=rng)
        )
        nfa_answer = (
            detect_read_delete_linear(read, delete).verdict is Verdict.CONFLICT
        )
        dp_answer = detect_read_delete_linear_dp(read, delete)
        assert nfa_answer == dp_answer, f"seed {seed}"

    @pytest.mark.parametrize("seed", range(80))
    def test_read_insert_agreement(self, seed):
        rng = random.Random(seed + 50_000)
        read = Read(random_linear_pattern(rng.randint(1, 5), ALPHABET, seed=rng))
        pattern = (
            random_branching_pattern(rng.randint(1, 3), ALPHABET, seed=rng)
            if rng.random() < 0.5
            else random_linear_pattern(rng.randint(1, 3), ALPHABET, seed=rng)
        )
        insert = Insert(pattern, random_tree(rng.randint(1, 3), ALPHABET, seed=rng))
        nfa_answer = (
            detect_read_insert_linear(read, insert).verdict is Verdict.CONFLICT
        )
        dp_answer = detect_read_insert_linear_dp(read, insert)
        assert nfa_answer == dp_answer, f"seed {seed}"

    @pytest.mark.parametrize(
        "read,delete,expected",
        [
            ("a/b", "a/b", True),
            ("a//c", "a/b", True),
            ("a/b", "a/c", False),
            ("a", "a/b", False),
            ("a/*", "a/b", True),
        ],
    )
    def test_read_delete_known(self, read, delete, expected):
        assert detect_read_delete_linear_dp(Read(read), Delete(delete)) is expected

    @pytest.mark.parametrize(
        "read,insert,x,expected",
        [
            ("*//C", "*/B", "<C/>", True),
            ("*//A", "*/B", "<C/>", False),
            ("a/b/x", "a/b", "<x><y/></x>", True),
            ("a/b/y", "a/b", "<x><y/></x>", False),
        ],
    )
    def test_read_insert_known(self, read, insert, x, expected):
        assert (
            detect_read_insert_linear_dp(Read(read), Insert(insert, x)) is expected
        )
