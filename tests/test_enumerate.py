"""Unit tests for canonical tree enumeration (:mod:`repro.xml.enumerate`)."""

from __future__ import annotations

import pytest

from repro.xml.enumerate import count_trees, enumerate_trees
from repro.xml.isomorphism import canonical_form


def _labeled_ordered_count(size: int, k: int) -> int:
    """Number of isomorphism classes of labeled unordered trees, brute math.

    For a sanity cross-check we compute the count independently via the
    recurrence: t(1) = k; a tree of size n is a root label (k choices)
    together with a multiset of subtrees of total size n-1.
    """
    from functools import lru_cache
    from itertools import combinations_with_replacement

    @lru_cache(maxsize=None)
    def classes(size_: int) -> int:
        if size_ == 1:
            return k
        total = 0
        # Partition n-1 into multisets of class-counted subtrees: count
        # multisets of classes with sizes summing to size_-1.  We count by
        # dynamic programming over sizes.
        total = k * forests(size_ - 1, size_ - 1)
        return total

    @lru_cache(maxsize=None)
    def forests(total_: int, max_part: int) -> int:
        """Multisets of trees with sizes summing to total_, parts <= max_part."""
        if total_ == 0:
            return 1
        out = 0
        for part in range(min(total_, max_part), 0, -1):
            c = classes(part)
            # Choose m >= 1 trees of size `part` (multiset from c classes),
            # then fill the rest with strictly smaller parts.
            for m in range(1, total_ // part + 1):
                ways = _multichoose(c, m)
                out += ways * forests(total_ - m * part, part - 1)
        return out

    def _multichoose(n: int, r: int) -> int:
        from math import comb

        return comb(n + r - 1, r)

    return classes(size)


class TestEnumeration:
    def test_size_one(self):
        trees = list(enumerate_trees(1, ("a", "b")))
        assert len(trees) == 2
        assert {t.label(t.root) for t in trees} == {"a", "b"}

    def test_all_within_bounds(self):
        for t in enumerate_trees(4, ("a", "b")):
            assert 1 <= t.size <= 4
            t.validate()

    def test_min_size_respected(self):
        sizes = {t.size for t in enumerate_trees(4, ("a",), min_size=3)}
        assert sizes == {3, 4}

    def test_no_isomorphic_duplicates(self):
        forms = [canonical_form(t) for t in enumerate_trees(5, ("a", "b"))]
        assert len(forms) == len(set(forms))

    @pytest.mark.parametrize("size,k", [(1, 1), (2, 1), (3, 1), (4, 1), (3, 2), (4, 2), (3, 3)])
    def test_counts_match_independent_recurrence(self, size, k):
        alphabet = tuple("abcdef"[:k])
        ours = sum(1 for t in enumerate_trees(size, alphabet) if t.size == size)
        assert ours == _labeled_ordered_count(size, k)

    def test_unlabeled_tree_counts_oeis(self):
        """With one label, counts must match OEIS A000081 (rooted trees)."""
        expected = [1, 1, 2, 4, 9, 20]  # sizes 1..6
        for size, want in zip(range(1, 7), expected):
            got = sum(1 for t in enumerate_trees(size, ("a",)) if t.size == size)
            assert got == want, f"size {size}"

    def test_count_trees_matches_enumeration(self):
        alphabet = ("a", "b")
        assert count_trees(4, alphabet) == sum(
            1 for _ in enumerate_trees(4, alphabet)
        )

    def test_exhaustive_coverage_small(self):
        """Every 2-node labeled tree over {a,b} appears: 4 classes."""
        twos = [t for t in enumerate_trees(2, ("a", "b")) if t.size == 2]
        forms = {canonical_form(t) for t in twos}
        assert len(forms) == 4

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_trees(2, ()))

    def test_max_below_min_yields_nothing(self):
        assert list(enumerate_trees(1, ("a",), min_size=2)) == []
