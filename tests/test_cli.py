"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import main

BOOK_XML = (
    "<bib><book><title>T</title><quantity>5</quantity></book>"
    "<book><quantity>50</quantity></book></bib>"
)

BOOK_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title?, quantity)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
"""

PROGRAM = """
x = <doc><B/><A/></doc>
y = read $x//A
insert $x/B, <C/>
z = read $x//C
u = read $x//A
"""


class TestEval:
    def test_eval_inline(self, capsys):
        code = main(["eval", "--xpath", "bib/book", "--xml-text", BOOK_XML])
        assert code == 0
        assert "2 node(s) selected" in capsys.readouterr().out

    def test_eval_file(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text(BOOK_XML)
        code = main(["eval", "--xpath", "//quantity", "--file", str(doc)])
        assert code == 0
        assert "2 node(s)" in capsys.readouterr().out

    def test_eval_subtrees(self, capsys):
        code = main(
            ["eval", "--xpath", "bib/book[.//quantity < 10]",
             "--xml-text", BOOK_XML, "--subtrees"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 node(s)" in out
        assert "<book>" in out


class TestCheck:
    def test_conflict_exit_code(self, capsys):
        code = main(
            ["check", "--read", "*//C", "--insert", "*/B", "--xml", "<C/>"]
        )
        assert code == 1
        assert "conflict" in capsys.readouterr().out

    def test_no_conflict_exit_code(self, capsys):
        code = main(
            ["check", "--read", "*//A", "--insert", "*/B", "--xml", "<C/>"]
        )
        assert code == 0
        assert "no-conflict" in capsys.readouterr().out

    def test_delete_check(self):
        assert main(["check", "--read", "a//c", "--delete", "a/b"]) == 1

    def test_witness_printed(self, capsys):
        code = main(
            ["check", "--read", "a//c", "--delete", "a/b", "--witness"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "witness document" in out
        assert "as XML:" in out

    def test_kind_flag(self, capsys):
        # Node-silent but tree-loud instance.
        node_code = main(["check", "--read", "a", "--insert", "a/B"])
        tree_code = main(
            ["check", "--read", "a", "--insert", "a/B", "--kind", "tree"]
        )
        assert node_code == 0
        assert tree_code == 1

    def test_unknown_exit_code(self):
        # The patterns genuinely overlap (the trunk prefilter cannot
        # discharge the pair) and the smallest witness has 5 nodes, so a
        # budget of 2 leaves the question open.
        code = main(
            ["check", "--read", "a[b]/c//d", "--delete", "a/c/c/d",
             "--budget", "2"]
        )
        assert code == 2

    def test_bad_xpath_reports_error(self, capsys):
        code = main(["check", "--read", "][", "--delete", "a/b"])
        assert code == 64
        assert "error:" in capsys.readouterr().err

    def test_schema_constrained_check(self, tmp_path):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(BOOK_DTD)
        # Nested books: conflicts unconstrained, silenced by the schema.
        plain = main(["check", "--read", "bib/book/book", "--delete", "bib/book"])
        constrained = main(
            ["check", "--read", "bib/book/book", "--delete", "bib/book",
             "--schema", str(dtd)]
        )
        assert plain == 1
        assert constrained == 2  # no valid witness within the budget

    def test_schema_constrained_conflict_persists(self, tmp_path, capsys):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(BOOK_DTD)
        code = main(
            ["check", "--read", "//quantity", "--delete", "bib/book",
             "--schema", str(dtd), "--witness"]
        )
        assert code == 1
        assert "witness document" in capsys.readouterr().out


class TestCommute:
    def test_conflicting_inserts(self):
        code = main(
            ["commute", "--insert1", "a/b", "--xml1", "<c/>",
             "--insert2", "a/b/c", "--xml2", "<d/>"]
        )
        assert code == 1

    def test_commuting_pair_is_unknown(self):
        # The engine cannot prove commutation (no witness bound), so 2.
        code = main(
            ["commute", "--insert1", "a/b", "--xml1", "<x/>",
             "--insert2", "a/d", "--xml2", "<y/>", "--budget", "3"]
        )
        assert code == 2

    def test_insert_delete_pair(self):
        code = main(
            ["commute", "--insert1", "a/b", "--xml1", "<c/>",
             "--delete2", "a/b/c"]
        )
        assert code == 1


class TestAnalyze:
    def test_analysis_output(self, tmp_path, capsys):
        source = tmp_path / "prog.xup"
        source.write_text(PROGRAM)
        code = main(["analyze", str(source)])
        assert code == 0
        out = capsys.readouterr().out
        assert "read-insert" in out
        assert "redundant read" in out

    def test_optimize_flag(self, tmp_path, capsys):
        source = tmp_path / "prog.xup"
        source.write_text(PROGRAM)
        code = main(["analyze", str(source), "--optimize"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized program" in out
        assert "aliases: {'u': 'y'}" in out

    def test_hoist_flag(self, tmp_path, capsys):
        source = tmp_path / "prog.xup"
        source.write_text(
            "x = <doc><B/><A/></doc>\ninsert $x/B, <C/>\ny = read $x//A\n"
        )
        code = main(["analyze", str(source), "--hoist"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hoisted program" in out
        assert "moves" in out


class TestValidate:
    def test_valid_document(self, tmp_path, capsys):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(BOOK_DTD)
        code = main(
            ["validate", "--dtd", str(dtd), "--xml-text", BOOK_XML]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_document(self, tmp_path, capsys):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(BOOK_DTD)
        code = main(
            ["validate", "--dtd", str(dtd), "--xml-text", "<bib><pirate/></bib>"]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check",
             "--read", "*//C", "--insert", "*/B", "--xml", "<C/>"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "conflict" in proc.stdout


class TestObservabilityFlags:
    """Tier-1 smoke coverage for --stats / --trace (details in test_obs.py)."""

    def test_stats_smoke_in_process(self, capsys):
        code = main(
            ["check", "--read", "*//C", "--insert", "*/B", "--xml", "<C/>",
             "--stats"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "--- stats ---" in out
        assert "path: linear" in out
        assert "detector.dispatch" in out
        assert "conflict.queries_total{path=linear}" in out

    def test_stats_smoke_subprocess(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check",
             "--read", "*//C", "--insert", "*/B", "--xml", "<C/>", "--stats"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "--- stats ---" in proc.stdout
        assert "conflict.queries_total{path=linear}" in proc.stdout

    def test_trace_smoke_jsonl(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        code = main(
            ["check", "--read", "*//C", "--insert", "*/B", "--xml", "<C/>",
             "--trace", str(path)]
        )
        assert code == 1
        names = {json.loads(line)["name"] for line in path.read_text().splitlines()}
        assert {"detector.dispatch", "linear.read_insert",
                "detector.cache.lookup"} <= names


CATALOGUE = """
{"titles":  {"op": "read",   "xpath": "bib/book/title"},
 "prices":  {"op": "read",   "xpath": "bib/book/price"},
 "restock": {"op": "insert", "xpath": "bib/book", "xml": "<restock/>"},
 "purge":   {"op": "delete", "xpath": "bib/book"}}
"""


def _write_catalogue(tmp_path, text=CATALOGUE):
    path = tmp_path / "ops.json"
    path.write_text(text)
    return str(path)


class TestMatrix:
    def test_conflict_exit_code_and_summary(self, tmp_path, capsys):
        code = main(["matrix", "--ops", _write_catalogue(tmp_path)])
        assert code == 1  # titles <-> purge conflicts
        out = capsys.readouterr().out
        assert "4 operation(s), 6 pair(s)" in out
        assert "titles <-> purge: conflict" in out

    def test_render_flag(self, tmp_path, capsys):
        code = main(["matrix", "--ops", _write_catalogue(tmp_path), "--render"])
        assert code == 1
        assert "conflict" in capsys.readouterr().out

    def test_json_schema(self, tmp_path, capsys):
        import json

        code = main(["matrix", "--ops", _write_catalogue(tmp_path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "matrix"
        assert sorted(payload["names"]) == ["prices", "purge", "restock", "titles"]
        verdicts = {
            (entry["first"], entry["second"]): entry["verdict"]
            for entry in payload["verdicts"]
        }
        assert verdicts[("titles", "purge")] == "conflict"
        assert verdicts[("titles", "prices")] == "no-conflict"
        assert payload["stats"]["operations"] == 4
        assert payload["stats"]["conflict"] >= 1

    def test_no_conflict_exit_code(self, tmp_path):
        path = _write_catalogue(
            tmp_path,
            '{"r1": {"op": "read", "xpath": "a/b"},'
            ' "r2": {"op": "read", "xpath": "a//c"}}',
        )
        assert main(["matrix", "--ops", path]) == 0

    def test_unknown_exit_code(self, tmp_path):
        path = _write_catalogue(
            tmp_path,
            '{"i1": {"op": "insert", "xpath": "a/b", "xml": "<x/>"},'
            ' "i2": {"op": "insert", "xpath": "a/b", "xml": "<y/>"}}',
        )
        assert main(["matrix", "--ops", path, "--budget", "1"]) == 2

    def test_cache_file_roundtrip(self, tmp_path, capsys):
        ops = _write_catalogue(tmp_path)
        cache = tmp_path / "verdicts.json"
        main(["matrix", "--ops", ops, "--cache", str(cache)])
        assert cache.exists()
        code = main(["matrix", "--ops", ops, "--cache", str(cache), "--json"])
        assert code == 1  # warm run, same verdicts

    def test_bad_catalogue_reports_error(self, tmp_path, capsys):
        path = _write_catalogue(tmp_path, '{"x": {"op": "merge", "xpath": "a"}}')
        assert main(["matrix", "--ops", path]) == 64
        assert "unknown op" in capsys.readouterr().err

    def test_malformed_json_reports_error(self, tmp_path, capsys):
        path = _write_catalogue(tmp_path, "{nope")
        assert main(["matrix", "--ops", path]) == 64
        assert "not valid JSON" in capsys.readouterr().err


class TestSchedule:
    def test_phases_printed(self, tmp_path, capsys):
        code = main(["schedule", "--ops", _write_catalogue(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase 1:" in out
        assert "purge" in out

    def test_json_schema(self, tmp_path, capsys):
        import json

        code = main(["schedule", "--ops", _write_catalogue(tmp_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "schedule"
        flat = sorted(name for batch in payload["batches"] for name in batch)
        assert flat == ["prices", "purge", "restock", "titles"]
        assert payload["stats"]["batches"] == len(payload["batches"])

    def test_jobs_flag_accepted(self, tmp_path):
        code = main(
            ["schedule", "--ops", _write_catalogue(tmp_path), "--jobs", "2"]
        )
        assert code == 0


class TestJsonReports:
    def test_check_json(self, capsys):
        import json

        code = main(
            ["check", "--read", "*//C", "--insert", "*/B", "--xml", "<C/>",
             "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "check"
        assert payload["verdict"] == "conflict"
        assert payload["kind"] == "node"
        assert payload["method"]
        assert payload["witness"] is not None
        assert "<" in payload["witness"]["xml"]

    def test_check_json_no_conflict(self, capsys):
        import json

        code = main(
            ["check", "--read", "a/b", "--insert", "a/b", "--xml", "<c/>",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "no-conflict"
        assert payload["witness"] is None

    def test_commute_json(self, capsys):
        import json

        code = main(
            ["commute", "--insert1", "a/b", "--xml1", "<x/>",
             "--delete2", "a/b", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "commute"
        assert payload["verdict"] in {"conflict", "no-conflict", "unknown"}
        assert code == {"no-conflict": 0, "conflict": 1, "unknown": 2}[
            payload["verdict"]
        ]


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def _no_env_faults(self, monkeypatch):
        # inspect/merge assert exact snapshot contents; the CI fault
        # job's cache_corrupt injection would (legitimately) trip the
        # corrupt-snapshot path these tests pin down explicitly.
        from repro.resilience import faults

        monkeypatch.delenv(faults.ENV_SPEC, raising=False)
        faults.uninstall()
        yield
        faults.uninstall()

    @pytest.fixture
    def snapshot(self, tmp_path, capsys):
        ops = tmp_path / "ops.json"
        ops.write_text(
            '{"titles": {"op": "read", "xpath": "bib/book/title"},'
            ' "purge": {"op": "delete", "xpath": "bib/book"}}'
        )
        path = tmp_path / "cache.json"
        main(["matrix", "--ops", str(ops), "--cache", str(path)])
        capsys.readouterr()  # drop the matrix output
        return path

    def test_inspect_text(self, snapshot, capsys):
        code = main(["cache", "inspect", str(snapshot)])
        assert code == 0
        out = capsys.readouterr().out
        assert "version 1" in out
        assert "Delete/Read" in out

    def test_inspect_json(self, snapshot, capsys):
        import json

        code = main(["cache", "inspect", str(snapshot), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "cache-inspect"
        assert payload["version"] == 1
        assert payload["corrupt"] is False
        assert payload["entries"] == sum(payload["by_kind"].values())
        assert payload["entries"] == sum(payload["by_verdict"].values())
        assert payload["configs"] == 1

    def test_inspect_corrupt_snapshot_exits_1(self, snapshot, capsys):
        import json

        text = snapshot.read_text()
        snapshot.write_text(text[: int(len(text) * 0.7)])
        code = main(["cache", "inspect", str(snapshot), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt"] is True
        assert "salvaged" in payload["salvage"]

    def test_inspect_missing_file(self, tmp_path, capsys):
        code = main(["cache", "inspect", str(tmp_path / "absent.json")])
        assert code == 64
        assert "cannot read snapshot" in capsys.readouterr().err

    def test_merge(self, snapshot, tmp_path, capsys):
        import json

        ops = tmp_path / "more-ops.json"
        ops.write_text(
            '{"reads": {"op": "read", "xpath": "q/w"},'
            ' "drop": {"op": "delete", "xpath": "q/w"}}'
        )
        other = tmp_path / "other.json"
        main(["matrix", "--ops", str(ops), "--cache", str(other)])
        capsys.readouterr()
        out = tmp_path / "merged" / "all.json"  # parents created by save
        code = main(
            ["cache", "merge", "--out", str(out), str(snapshot), str(other),
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "cache-merge"
        assert [item["added"] for item in payload["inputs"]] == [1, 1]
        assert payload["entries"] == 2
        assert out.exists()
        # The merged snapshot answers both catalogues.
        code = main(["cache", "inspect", str(out), "--json"])
        merged = json.loads(capsys.readouterr().out)
        assert merged["entries"] == 2
