"""Unit tests for the XML parser and serializer."""

from __future__ import annotations

import pytest

from repro.errors import XMLParseError
from repro.xml.parser import ATTR_PREFIX, TEXT_PREFIX, parse
from repro.xml.serializer import serialize
from repro.xml.isomorphism import isomorphic


class TestParseBasics:
    def test_single_element(self):
        t = parse("<a/>")
        assert t.size == 1
        assert t.label(t.root) == "a"

    def test_nested_elements(self):
        t = parse("<a><b/><c><d/></c></a>")
        assert t.size == 4
        labels = sorted(t.label(c) for c in t.children(t.root))
        assert labels == ["b", "c"]

    def test_open_close_empty(self):
        t = parse("<a></a>")
        assert t.size == 1

    def test_whitespace_tolerated(self):
        t = parse("  <a>\n  <b/>\n</a>  ")
        assert t.size == 2

    def test_text_content_becomes_text_node(self):
        t = parse("<a>hello</a>")
        assert t.size == 2
        child = t.children(t.root)[0]
        assert t.label(child) == f"{TEXT_PREFIX}hello"

    def test_text_can_be_discarded(self):
        t = parse("<a>hello</a>", keep_text=False)
        assert t.size == 1

    def test_mixed_content(self):
        t = parse("<a>one<b/>two</a>")
        labels = {t.label(c) for c in t.children(t.root)}
        assert f"{TEXT_PREFIX}one" in labels
        assert f"{TEXT_PREFIX}two" in labels
        assert "b" in labels

    def test_attributes_become_children(self):
        t = parse('<a x="1" y="two"/>')
        labels = sorted(t.label(c) for c in t.children(t.root))
        assert labels == [f"{ATTR_PREFIX}x=1", f"{ATTR_PREFIX}y=two"]

    def test_attributes_can_be_discarded(self):
        t = parse('<a x="1"/>', keep_attributes=False)
        assert t.size == 1

    def test_entities_unescaped(self):
        t = parse("<a>&lt;tag&gt; &amp; more</a>")
        child = t.children(t.root)[0]
        assert t.label(child) == f"{TEXT_PREFIX}<tag> & more"

    def test_comments_and_pis_skipped(self):
        t = parse("<?xml version='1.0'?><!-- hi --><a><!-- inner --><b/></a>")
        assert t.size == 2

    def test_doctype_skipped(self):
        t = parse("<!DOCTYPE a><a/>")
        assert t.size == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a x=1/>",
            '<a x="1/>',
            "<a/>trailing",
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(XMLParseError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as info:
            parse("<a></b>")
        assert info.value.position is not None


class TestSerializeRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "<a/>",
            "<a><b/><c/></a>",
            "<a>text</a>",
            '<a x="1"><b/></a>',
            "<bib><book><title>T</title><quantity>5</quantity></book></bib>",
        ],
    )
    def test_parse_serialize_parse_is_isomorphic(self, text):
        first = parse(text)
        second = parse(serialize(first))
        assert isomorphic(first, second)

    def test_serialize_compact_single_line(self):
        out = serialize(parse("<a><b/></a>"))
        assert "\n" not in out
        assert out == "<a><b/></a>"

    def test_serialize_pretty_has_indentation(self):
        out = serialize(parse("<a><b><c/></b></a>"), indent=2)
        lines = out.splitlines()
        assert lines[0] == "<a>"
        assert lines[1].startswith("  ")

    def test_serialize_subtree(self):
        t = parse("<a><b><c/></b></a>")
        b = t.children(t.root)[0]
        assert serialize(t, node=b) == "<b><c/></b>"

    def test_text_escaped_on_output(self):
        t = parse("<a>&lt;x&gt;</a>")
        assert "&lt;x&gt;" in serialize(t)

    def test_attribute_rendering(self):
        out = serialize(parse('<a x="v"/>'))
        assert out == '<a x="v"/>'
