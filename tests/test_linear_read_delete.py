"""Tests for the PTIME read-delete algorithm (Theorem 1, Corollary 1)."""

from __future__ import annotations

import pytest

from repro.conflicts.linear import detect_read_delete_linear
from repro.conflicts.semantics import ConflictKind, Verdict, is_witness
from repro.errors import NotLinearError
from repro.operations.ops import Delete, Read


class TestKnownNodeConflicts:
    @pytest.mark.parametrize(
        "read,delete,expected",
        [
            # Deleting exactly what is read.
            ("a/b", "a/b", True),
            # Deleting an ancestor of what is read.
            ("a/b/c", "a/b", True),
            # Read descendants swept away by a subtree delete.
            ("a//c", "a/b", True),
            # Disjoint labels, child-only: no overlap possible.
            ("a/b", "a/c", False),
            # Same label, different depth, child-only edges.
            ("a/b", "a/c/b", False),
            # Descendant read can reach below any deletion point.
            ("a//b", "a//c", True),
            # Deletion of a leaf cannot affect a read of a different leaf
            # unless the read passes through it; sibling reads are safe.
            ("a/b", "a/b/c", False),
            # Wildcards make everything reachable.
            ("a/*", "a/b", True),
            ("a//*", "a/b", True),
            # Root read never conflicts (deletes cannot remove the root).
            ("a", "a/b", False),
            # Deeper mixed case.
            ("a/b//d", "a//c", True),
            ("a/b/c", "x/y", False),  # roots can never both match
        ],
    )
    def test_cases(self, read, delete, expected):
        report = detect_read_delete_linear(Read(read), Delete(delete))
        assert report.verdict is (
            Verdict.CONFLICT if expected else Verdict.NO_CONFLICT
        ), f"read={read} delete={delete}"

    def test_witness_returned_and_valid(self):
        read, delete = Read("a//c"), Delete("a/b")
        report = detect_read_delete_linear(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert report.witness is not None
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    def test_method_tag(self):
        report = detect_read_delete_linear(Read("a/b"), Delete("a/b"))
        assert report.method == "linear-ptime"


class TestBranchingDeletePattern:
    """Corollary 1: the delete may branch; only the read must be linear."""

    def test_branching_delete_conflict(self):
        read = Read("a//c")
        delete = Delete("a[x]/b[y]")  # trunk a/b with predicates
        report = detect_read_delete_linear(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert report.witness is not None
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    def test_branching_delete_no_conflict(self):
        read = Read("a/b")
        delete = Delete("a[x]/c[y]")
        report = detect_read_delete_linear(read, delete)
        assert report.verdict is Verdict.NO_CONFLICT

    def test_branching_read_rejected(self):
        with pytest.raises(NotLinearError):
            detect_read_delete_linear(Read("a[x]/b"), Delete("a/b"))

    def test_deep_predicates(self):
        read = Read("a/b/c")
        delete = Delete("a[p[q]]/b[.//r]")
        report = detect_read_delete_linear(read, delete)
        assert report.verdict is Verdict.CONFLICT
        assert is_witness(report.witness, read, delete, ConflictKind.NODE)


class TestTreeSemantics:
    def test_delete_below_read_result(self):
        """No node conflict, but the selected subtree is modified."""
        read = Read("a/b")
        delete = Delete("a/b/c")
        node_report = detect_read_delete_linear(read, delete, ConflictKind.NODE)
        tree_report = detect_read_delete_linear(read, delete, ConflictKind.TREE)
        assert node_report.verdict is Verdict.NO_CONFLICT
        assert tree_report.verdict is Verdict.CONFLICT
        assert is_witness(tree_report.witness, read, delete, ConflictKind.TREE)

    def test_disjoint_delete_no_tree_conflict(self):
        read = Read("a/b")
        delete = Delete("a/c/d")
        report = detect_read_delete_linear(read, delete, ConflictKind.TREE)
        assert report.verdict is Verdict.NO_CONFLICT

    def test_node_conflict_is_tree_conflict(self):
        read = Read("a/b")
        delete = Delete("a/b")
        report = detect_read_delete_linear(read, delete, ConflictKind.TREE)
        assert report.verdict is Verdict.CONFLICT


class TestValueSemantics:
    def test_value_matches_tree_decision_linear(self):
        """Lemma 2: tree and value conflicts coincide for linear patterns."""
        pairs = [
            ("a/b", "a/b"),
            ("a/b", "a/b/c"),
            ("a//c", "a/b"),
            ("a/b", "a/c"),
            ("a", "a/b"),
            ("a//*", "a/b"),
        ]
        for read_path, delete_path in pairs:
            read, delete = Read(read_path), Delete(delete_path)
            tree_v = detect_read_delete_linear(read, delete, ConflictKind.TREE).verdict
            value_v = detect_read_delete_linear(read, delete, ConflictKind.VALUE).verdict
            assert tree_v == value_v, f"{read_path} vs {delete_path}"

    def test_value_witness_verified(self):
        read, delete = Read("a/b"), Delete("a/b/c")
        report = detect_read_delete_linear(read, delete, ConflictKind.VALUE)
        assert report.verdict is Verdict.CONFLICT
        if report.witness is not None:
            assert is_witness(report.witness, read, delete, ConflictKind.VALUE)


class TestEdgeCases:
    def test_single_node_read(self):
        report = detect_read_delete_linear(Read("*"), Delete("a/b"))
        assert report.verdict is Verdict.NO_CONFLICT

    def test_wildcard_heavy(self):
        report = detect_read_delete_linear(Read("*//*"), Delete("*/x"))
        assert report.verdict is Verdict.CONFLICT

    def test_long_chains(self):
        read = Read("a/" + "/".join("b" * 1 for _ in range(10)))
        delete = Delete("a//b")
        report = detect_read_delete_linear(read, delete)
        assert report.verdict is Verdict.CONFLICT
