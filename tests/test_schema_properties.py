"""Property-based tests for the schema subsystem."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.schema.dtd import DTD, Occurrence, UNBOUNDED
from repro.schema.generator import enumerate_valid_trees, random_valid_tree
from repro.schema.validator import is_valid, validate
from repro.xml.isomorphism import canonical_form

LABELS = ("r", "a", "b", "c")


@st.composite
def dtds(draw) -> DTD:
    """Random well-founded DTDs rooted at 'r'.

    Element i may only require elements with larger index (so required
    content always bottoms out), keeping every generated DTD satisfiable
    within a shallow depth budget.
    """
    dtd = DTD("r")
    for index, label in enumerate(LABELS):
        children: dict[str, Occurrence] = {}
        for child in LABELS[index + 1:]:
            kind = draw(st.sampled_from(["absent", "?", "*", "1", "+"]))
            if kind == "absent":
                continue
            children[child] = {
                "?": Occurrence(0, 1),
                "*": Occurrence(0, UNBOUNDED),
                "1": Occurrence(1, 1),
                "+": Occurrence(1, UNBOUNDED),
            }[kind]
        dtd.element(label, children, text=draw(st.booleans()))
    return dtd


class TestGeneratorProperties:
    @given(dtds(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_random_valid_trees_validate(self, dtd, seed):
        tree = random_valid_tree(dtd, seed=seed, max_depth=len(LABELS) + 1)
        assert is_valid(tree, dtd), "\n".join(
            str(v) for v in validate(tree, dtd)
        )

    @given(dtds(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_yields_only_valid_trees(self, dtd, max_size):
        for tree in enumerate_valid_trees(dtd, max_size):
            assert tree.size <= max_size
            assert is_valid(tree, dtd)

    @given(dtds(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_has_no_duplicates(self, dtd, max_size):
        forms = [
            canonical_form(t) for t in enumerate_valid_trees(dtd, max_size)
        ]
        assert len(forms) == len(set(forms))

    @given(dtds(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_enumeration_complete_vs_filter(self, dtd, max_size):
        """Schema-driven enumeration finds exactly the valid trees that a
        brute-force filter over all labeled trees finds."""
        from repro.xml.enumerate import enumerate_trees

        direct = {
            canonical_form(t) for t in enumerate_valid_trees(dtd, max_size)
        }
        filtered = {
            canonical_form(t)
            for t in enumerate_trees(max_size, LABELS)
            if t.label(t.root) == dtd.root and is_valid(t, dtd)
        }
        assert direct == filtered


class TestValidatorProperties:
    @given(dtds(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_adding_undeclared_child_breaks_validity(self, dtd, seed):
        tree = random_valid_tree(dtd, seed=seed, max_depth=len(LABELS) + 1)
        tree.add_child(tree.root, "pirate")
        assert not is_valid(tree, dtd)

    @given(dtds(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_relabeling_root_breaks_validity(self, dtd, seed):
        tree = random_valid_tree(dtd, seed=seed, max_depth=len(LABELS) + 1)
        tree.relabel(tree.root, "zzz")
        assert not is_valid(tree, dtd)
