"""Tests for the pidgin language: parser, interpreter, dependence analysis."""

from __future__ import annotations

import pytest

from repro.errors import ProgramParseError, ProgramRuntimeError
from repro.lang.analysis import (
    can_swap,
    dependence_graph,
    find_redundant_reads,
    optimize,
)
from repro.lang.ast import AssignStmt, DeleteStmt, InsertStmt, ReadStmt
from repro.lang.interp import Environment, run_program
from repro.lang.parser import parse_program
from repro.workloads.generators import random_program

PAPER_FRAGMENT = """
# The imperative fragment from Section 1 of the paper.
x = <doc><B/><A/></doc>
y = read $x//A
insert $x/B, <C/>
z = read $x//C
"""


class TestParser:
    def test_paper_fragment_parses(self):
        program = parse_program(PAPER_FRAGMENT)
        assert len(program) == 4
        assert isinstance(program.statements[0], AssignStmt)
        assert isinstance(program.statements[1], ReadStmt)
        assert isinstance(program.statements[2], InsertStmt)
        assert isinstance(program.statements[3], ReadStmt)

    def test_read_statement_fields(self):
        program = parse_program("x = <a/>\ny = read $x//A")
        read = program.statements[1]
        assert isinstance(read, ReadStmt)
        assert read.target == "y" and read.source == "x"
        assert read.pattern.size == 2  # wildcard root + A

    def test_delete_statement(self):
        program = parse_program("delete $x//junk")
        assert isinstance(program.statements[0], DeleteStmt)

    def test_delete_of_root_rejected(self):
        with pytest.raises(ProgramParseError):
            parse_program("delete $x")

    def test_comments_and_blanks_skipped(self):
        program = parse_program("\n# comment only\n\nx = <a/>  # trailing\n")
        assert len(program) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "y = read x//A",        # missing $
            "insert $x/B <C/>",     # missing comma
            "y = read $x A",        # path must start with /
            "what is this",
            "x = not xml",
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(ProgramParseError):
            parse_program(line)

    def test_error_carries_line_number(self):
        with pytest.raises(ProgramParseError) as info:
            parse_program("x = <a/>\nbad line here")
        assert info.value.line == 2

    def test_statements_render_back(self):
        program = parse_program(PAPER_FRAGMENT)
        rendered = str(program)
        reparsed = parse_program(rendered)
        assert len(reparsed) == len(program)


class TestInterpreter:
    def test_paper_fragment_semantics(self):
        env = run_program(parse_program(PAPER_FRAGMENT))
        x = env.trees["x"]
        # The insert added a C under the B child.
        b = next(n for n in x.nodes() if x.label(n) == "B")
        assert [x.label(c) for c in x.children(b)] == ["C"]
        # y saw the A node; z saw the fresh C node.
        assert len(env.reads["y"].nodes) == 1
        assert len(env.reads["z"].nodes) == 1

    def test_order_sensitivity(self):
        """Reading //C before vs after the insert differs — the conflict."""
        before = run_program(
            parse_program("x = <doc><B/></doc>\nz = read $x//C\ninsert $x/B, <C/>")
        )
        after = run_program(
            parse_program("x = <doc><B/></doc>\ninsert $x/B, <C/>\nz = read $x//C")
        )
        assert before.reads["z"].nodes == frozenset()
        assert len(after.reads["z"].nodes) == 1

    def test_delete_execution(self):
        env = run_program(
            parse_program("x = <a><b><c/></b></a>\ndelete $x/b\ny = read $x//c")
        )
        assert env.trees["x"].size == 1
        assert env.reads["y"].nodes == frozenset()

    def test_undefined_variable(self):
        with pytest.raises(ProgramRuntimeError):
            run_program(parse_program("y = read $nope//A"))

    def test_whole_document_read(self):
        env = run_program(parse_program("x = <a><b/></a>\ny = read $x"))
        assert len(env.reads["y"].nodes) == 1  # the root

    def test_snapshot_equality(self):
        program = parse_program(PAPER_FRAGMENT)
        assert run_program(program).snapshot_equal(run_program(program))


class TestDependenceAnalysis:
    def test_paper_fragment_edges(self):
        program = parse_program(PAPER_FRAGMENT)
        report = dependence_graph(program)
        # read //A (1) vs insert (2): no conflict -> swappable.
        assert not report.conflicts_between(1, 2)
        assert can_swap(report, 1)
        # insert (2) vs read //C (3): conflict -> not swappable.
        assert report.conflicts_between(2, 3)
        assert not can_swap(report, 2)

    def test_different_variables_never_conflict(self):
        program = parse_program(
            "x = <a><b/></a>\ny = <a><b/></a>\nr = read $x//b\ndelete $y/b"
        )
        report = dependence_graph(program)
        assert not report.conflicts_between(2, 3)

    def test_assignment_blocks_everything(self):
        program = parse_program("x = <a/>\nr = read $x//b")
        report = dependence_graph(program)
        assert report.conflicts_between(0, 1)

    def test_reads_never_conflict_with_reads(self):
        program = parse_program(
            "x = <a><b/></a>\nr1 = read $x//b\nr2 = read $x//b"
        )
        report = dependence_graph(program)
        assert not report.conflicts_between(1, 2)

    def test_swap_bounds_checked(self):
        report = dependence_graph(parse_program("x = <a/>"))
        with pytest.raises(IndexError):
            can_swap(report, 0)


class TestOptimizer:
    def test_finds_duplicate_read(self):
        program = parse_program(
            """
            x = <doc><A/><B/></doc>
            y = read $x//A
            insert $x/B, <C/>
            u = read $x//A
            """
        )
        report = dependence_graph(program)
        redundant = find_redundant_reads(report)
        assert len(redundant) == 1
        assert (redundant[0].original, redundant[0].duplicate) == (1, 3)

    def test_conflicting_update_blocks_cse(self):
        program = parse_program(
            """
            x = <doc><B/></doc>
            y = read $x//C
            insert $x/B, <C/>
            u = read $x//C
            """
        )
        report = dependence_graph(program)
        assert find_redundant_reads(report) == []

    def test_optimize_preserves_semantics(self):
        source = """
        x = <doc><A/><B/></doc>
        y = read $x//A
        insert $x/B, <C/>
        u = read $x//A
        z = read $x//C
        """
        program = parse_program(source)
        original = run_program(program)
        result = optimize(program)
        assert result.aliases == {"u": "y"}
        optimized = run_program(result.program)
        # Aliased reads must equal the originals they replace.
        for dropped, kept in result.aliases.items():
            assert original.reads[dropped] == optimized.reads[kept]
        # All other state identical.
        assert original.trees["x"].equivalent(optimized.trees["x"])
        for name, value in optimized.reads.items():
            assert original.reads[name] == value

    @pytest.mark.parametrize("seed", range(6))
    def test_optimize_sound_on_random_programs(self, seed):
        program = random_program(6, variables=2, seed=seed)
        original = run_program(program)
        result = optimize(program)
        optimized = run_program(result.program)
        for name in optimized.reads:
            assert original.reads[name] == optimized.reads[name], (
                f"seed {seed}: read {name} diverged"
            )
        for dropped, kept in result.aliases.items():
            assert original.reads[dropped] == optimized.reads[kept], (
                f"seed {seed}: alias {dropped}->{kept} unsound"
            )
        for name in original.trees:
            assert original.trees[name].equivalent(optimized.trees[name]), (
                f"seed {seed}: tree {name} diverged"
            )


class TestEnvironment:
    def test_tree_lookup_error(self):
        with pytest.raises(ProgramRuntimeError):
            Environment().tree("ghost")
