"""Property-based tests (hypothesis) for core invariants.

Strategies generate random unordered labeled trees and random patterns;
the properties are the load-bearing invariants of the paper's formalism:

* monotonicity of the positive pattern language under inserts/deletes,
* soundness of every reported conflict witness (Lemma 1 re-check),
* canonical-form/isomorphism coherence,
* XPath round-tripping,
* matching implementations agreeing (NFA vs DP),
* Lemma 9's reparenting containment.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.automata.matching import match_dp, matching_word
from repro.conflicts.linear import (
    detect_read_delete_linear,
    detect_read_insert_linear,
)
from repro.conflicts.semantics import (
    ConflictKind,
    Verdict,
    is_witness,
)
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.embedding import evaluate, evaluate_bruteforce
from repro.patterns.pattern import WILDCARD, Axis, TreePattern
from repro.patterns.xpath import parse_xpath, to_xpath
from repro.xml.isomorphism import canonical_form, isomorphic
from repro.xml.tree import XMLTree

LABELS = ("a", "b", "c")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def trees(draw, max_nodes: int = 10) -> XMLTree:
    """Random labeled unordered tree with 1..max_nodes nodes."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    tree = XMLTree(draw(st.sampled_from(LABELS)))
    nodes = [tree.root]
    for _ in range(n - 1):
        parent = nodes[draw(st.integers(0, len(nodes) - 1))]
        nodes.append(tree.add_child(parent, draw(st.sampled_from(LABELS))))
    return tree


@st.composite
def linear_patterns(draw, max_len: int = 4) -> TreePattern:
    length = draw(st.integers(min_value=1, max_value=max_len))
    label_pool = LABELS + (WILDCARD,)
    pattern = TreePattern(draw(st.sampled_from(label_pool)))
    node = pattern.root
    for _ in range(length - 1):
        axis = draw(st.sampled_from((Axis.CHILD, Axis.DESCENDANT)))
        node = pattern.add_child(node, draw(st.sampled_from(label_pool)), axis)
    pattern.set_output(node)
    return pattern


@st.composite
def branching_patterns(draw, max_nodes: int = 5) -> TreePattern:
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    label_pool = LABELS + (WILDCARD,)
    pattern = TreePattern(draw(st.sampled_from(label_pool)))
    nodes = [pattern.root]
    for _ in range(n - 1):
        parent = nodes[draw(st.integers(0, len(nodes) - 1))]
        axis = draw(st.sampled_from((Axis.CHILD, Axis.DESCENDANT)))
        nodes.append(
            pattern.add_child(parent, draw(st.sampled_from(label_pool)), axis)
        )
    pattern.set_output(nodes[draw(st.integers(0, len(nodes) - 1))])
    return pattern


# ----------------------------------------------------------------------
# Tree / isomorphism properties
# ----------------------------------------------------------------------

class TestTreeProperties:
    @given(trees())
    def test_copy_is_equivalent(self, t):
        assert t.copy().equivalent(t)

    @given(trees())
    def test_validate_passes(self, t):
        t.validate()

    @given(trees())
    def test_canonical_form_invariant_under_copy(self, t):
        assert canonical_form(t) == canonical_form(t.copy())

    @given(trees(), st.sampled_from(LABELS))
    def test_adding_node_changes_form(self, t, label):
        before = canonical_form(t)
        t.add_child(t.root, label)
        assert canonical_form(t) != before

    @given(trees())
    def test_isomorphic_reflexive(self, t):
        assert isomorphic(t, t)

    @given(trees(max_nodes=6), trees(max_nodes=6))
    def test_isomorphism_agrees_with_canonical_forms(self, a, b):
        assert isomorphic(a, b) == (canonical_form(a) == canonical_form(b))


# ----------------------------------------------------------------------
# Pattern / evaluation properties
# ----------------------------------------------------------------------

class TestPatternProperties:
    @given(branching_patterns())
    def test_xpath_round_trip(self, p):
        assert parse_xpath(to_xpath(p)) == p

    @given(branching_patterns())
    def test_pattern_embeds_into_model(self, p):
        assert evaluate(p, p.model())

    @given(branching_patterns(max_nodes=4), trees(max_nodes=8))
    @settings(max_examples=60)
    def test_evaluator_matches_bruteforce(self, p, t):
        assert evaluate(p, t) == evaluate_bruteforce(p, t)

    @given(branching_patterns())
    def test_trunk_is_linear_prefix(self, p):
        trunk = p.trunk()
        assert trunk.is_linear
        assert trunk.size == len(p.spine())

    @given(branching_patterns(), trees(max_nodes=8))
    def test_trunk_evaluation_superset(self, p, t):
        """Dropping side branches can only widen the result (Lemma 4's core)."""
        assert evaluate(p, t) <= evaluate(p.trunk(), t)


# ----------------------------------------------------------------------
# Operation monotonicity
# ----------------------------------------------------------------------

class TestOperationProperties:
    @given(linear_patterns(), linear_patterns(max_len=3), trees(max_nodes=8))
    @settings(max_examples=60)
    def test_insert_monotone(self, read_p, ins_p, t):
        read = Read(read_p)
        insert = Insert(ins_p, XMLTree("c"))
        before = read.apply(t)
        after = read.apply(insert.apply(t).tree)
        assert after >= before

    @given(linear_patterns(), linear_patterns(max_len=3), trees(max_nodes=8))
    @settings(max_examples=60)
    def test_delete_antitone(self, read_p, del_p, t):
        if del_p.output == del_p.root:
            return  # not a legal deletion pattern
        read = Read(read_p)
        delete = Delete(del_p)
        before = read.apply(t)
        after = read.apply(delete.apply(t).tree)
        assert after <= before

    @given(linear_patterns(max_len=3), trees(max_nodes=8))
    def test_insert_preserves_original_ids(self, ins_p, t):
        insert = Insert(ins_p, XMLTree("x"))
        result = insert.apply(t)
        assert set(t.nodes()) <= set(result.tree.nodes())


# ----------------------------------------------------------------------
# Conflict-engine properties
# ----------------------------------------------------------------------

class TestConflictProperties:
    @given(linear_patterns(), linear_patterns(max_len=3))
    @settings(max_examples=60, deadline=None)
    def test_insert_witnesses_verify(self, read_p, ins_p):
        read = Read(read_p)
        insert = Insert(ins_p, XMLTree("c"))
        report = detect_read_insert_linear(read, insert)
        if report.verdict is Verdict.CONFLICT:
            assert report.witness is not None
            assert is_witness(report.witness, read, insert, ConflictKind.NODE)

    @given(linear_patterns(), linear_patterns(max_len=3))
    @settings(max_examples=60, deadline=None)
    def test_delete_witnesses_verify(self, read_p, del_p):
        if del_p.output == del_p.root:
            return
        read = Read(read_p)
        delete = Delete(del_p)
        report = detect_read_delete_linear(read, delete)
        if report.verdict is Verdict.CONFLICT:
            assert report.witness is not None
            assert is_witness(report.witness, read, delete, ConflictKind.NODE)

    @given(linear_patterns(), linear_patterns(max_len=3))
    @settings(max_examples=40, deadline=None)
    def test_node_conflict_implies_tree_conflict(self, read_p, upd_p):
        """Semantics hierarchy: node conflicts are tree conflicts."""
        read = Read(read_p)
        insert = Insert(upd_p, XMLTree("c"))
        node_v = detect_read_insert_linear(read, insert, ConflictKind.NODE).verdict
        tree_v = detect_read_insert_linear(read, insert, ConflictKind.TREE).verdict
        if node_v is Verdict.CONFLICT:
            assert tree_v is Verdict.CONFLICT

    @given(linear_patterns(max_len=3), linear_patterns(max_len=3))
    @settings(max_examples=40, deadline=None)
    def test_lemma2_tree_equals_value_for_linear(self, read_p, upd_p):
        read = Read(read_p)
        insert = Insert(upd_p, XMLTree("c"))
        tree_v = detect_read_insert_linear(read, insert, ConflictKind.TREE).verdict
        value_v = detect_read_insert_linear(read, insert, ConflictKind.VALUE).verdict
        assert tree_v == value_v


# ----------------------------------------------------------------------
# Matching properties
# ----------------------------------------------------------------------

class TestMatchingProperties:
    @given(linear_patterns(), linear_patterns())
    @settings(max_examples=80, deadline=None)
    def test_nfa_agrees_with_dp(self, l, r):
        for weak in (False, True):
            assert (matching_word(l, r, weak=weak) is not None) == match_dp(
                l, r, weak=weak
            )

    @given(linear_patterns(), linear_patterns())
    @settings(max_examples=60, deadline=None)
    def test_strong_implies_weak(self, l, r):
        if matching_word(l, r, weak=False) is not None:
            assert matching_word(l, r, weak=True) is not None

    @given(linear_patterns())
    @settings(max_examples=40, deadline=None)
    def test_self_match_strong(self, l):
        assert matching_word(l, l, weak=False) is not None

    @given(linear_patterns(), linear_patterns())
    @settings(max_examples=40, deadline=None)
    def test_matching_word_realizes_match(self, l, r):
        word = matching_word(l, r, weak=False)
        if word is None:
            return
        chain = XMLTree(word[0])
        node = chain.root
        for label in word[1:]:
            node = chain.add_child(node, label)
        assert evaluate(l, chain) & evaluate(r, chain)
