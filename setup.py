"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package installs editably on environments without the ``wheel`` package
(``pip install -e . --no-build-isolation`` falls back to
``setup.py develop`` when PEP 517 wheel building is unavailable).
"""

from setuptools import setup

setup()
