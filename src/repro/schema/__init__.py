"""Schema (DTD) substrate and schema-constrained conflict detection."""

from repro.schema.conflicts import (
    breaks_validity,
    decide_conflict_under_schema,
    find_schema_witness,
)
from repro.schema.dtd import DTD, DTDSyntaxError, ElementDecl, Occurrence, UNBOUNDED
from repro.schema.generator import (
    SchemaGenerationError,
    enumerate_valid_trees,
    random_valid_tree,
)
from repro.schema.validator import Violation, is_valid, validate

__all__ = [
    "DTD",
    "ElementDecl",
    "Occurrence",
    "UNBOUNDED",
    "DTDSyntaxError",
    "validate",
    "is_valid",
    "Violation",
    "random_valid_tree",
    "enumerate_valid_trees",
    "SchemaGenerationError",
    "find_schema_witness",
    "decide_conflict_under_schema",
    "breaks_validity",
]
