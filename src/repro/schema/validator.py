"""Validation of trees against a :class:`~repro.schema.dtd.DTD`.

The validator applies the unordered reading of content models documented
in :mod:`repro.schema.dtd`: per-label occurrence bounds on each node's
children, text-permission, and the root-label constraint.  It reports
*all* violations (useful in tests and for the incremental-validation
experiment), with :func:`is_valid` as the boolean shortcut.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.schema.dtd import DTD
from repro.xml.parser import TEXT_PREFIX
from repro.xml.tree import NodeId, XMLTree

__all__ = ["Violation", "validate", "is_valid"]


@dataclass(frozen=True)
class Violation:
    """One schema violation at one node."""

    node: NodeId
    label: str
    message: str

    def __str__(self) -> str:
        return f"node {self.node} <{self.label}>: {self.message}"


def validate(tree: XMLTree, dtd: DTD) -> list[Violation]:
    """All violations of ``dtd`` in ``tree`` (empty list = valid)."""
    violations: list[Violation] = []
    root_label = tree.label(tree.root)
    if root_label != dtd.root:
        violations.append(
            Violation(tree.root, root_label, f"root must be <{dtd.root}>")
        )
    for node in tree.preorder():
        label = tree.label(node)
        if label.startswith(TEXT_PREFIX):
            continue  # text nodes are judged at their parent
        violations.extend(_check_node(tree, node, label, dtd))
    return violations


def _check_node(tree: XMLTree, node: NodeId, label: str, dtd: DTD) -> list[Violation]:
    decl = dtd.declaration(label)
    out: list[Violation] = []
    element_children: Counter[str] = Counter()
    text_children = 0
    for child in tree.children(node):
        child_label = tree.label(child)
        if child_label.startswith(TEXT_PREFIX):
            text_children += 1
        else:
            element_children[child_label] += 1

    if decl is None:
        # Undeclared elements must be childless leaves (strict reading).
        if element_children or text_children:
            out.append(
                Violation(node, label, "undeclared element must be empty")
            )
        return out

    if decl.any_content:
        return out

    if text_children and not decl.allows_text:
        out.append(Violation(node, label, "text content not allowed"))

    for child_label, count in element_children.items():
        occurrence = decl.children.get(child_label)
        if occurrence is None:
            out.append(
                Violation(node, label, f"child <{child_label}> not allowed")
            )
        elif not occurrence.allows(count):
            out.append(
                Violation(
                    node,
                    label,
                    f"child <{child_label}> occurs {count}, allowed {occurrence}",
                )
            )
    for child_label, occurrence in decl.children.items():
        if occurrence.min > 0 and element_children[child_label] < occurrence.min:
            out.append(
                Violation(
                    node,
                    label,
                    f"child <{child_label}> occurs "
                    f"{element_children[child_label]}, requires at least "
                    f"{occurrence.min}",
                )
            )
    total = sum(element_children.values())
    if total < decl.min_total:
        out.append(
            Violation(
                node,
                label,
                f"requires at least {decl.min_total} children, has {total}",
            )
        )
    return out


def is_valid(tree: XMLTree, dtd: DTD) -> bool:
    """True when ``tree`` conforms to ``dtd``."""
    return not validate(tree, dtd)
