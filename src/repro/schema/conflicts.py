"""Schema-constrained conflict detection (the Section 6 open problem).

The paper leaves open "the complexity of conflicts when schema information
(for example, DTDs) is available", noting only that schemas tend to raise
complexities.  The *semantic* question is crisp, though: do the operations
conflict **on some document valid with respect to the DTD**?  A schema can
silence a conflict (no valid document realizes the witness shape) — the
phenomenon this module lets users and experiments explore.

Following the convention of the schema-containment literature, only the
*input* document is required to be valid; updates are allowed to take the
document out of the schema (revalidation is its own problem, cf. the
authors' EDBT 2004 paper).  :func:`breaks_validity` is provided for
callers who also want that second question answered.

The decision procedure mirrors the unconstrained engine: a heuristic pass
over schema-valid candidates (random samples from the DTD), then
exhaustive enumeration of valid trees up to a size cap.  No analogue of
the Lemma 11 bound is proved for the schema case (the paper leaves the
problem open), so absence of a witness yields ``UNKNOWN`` — unless the
cap exhausts the finite space of valid trees, which the enumerator can
detect for saturating caps.
"""

from __future__ import annotations

from repro.conflicts.semantics import (
    ConflictKind,
    ConflictReport,
    Verdict,
    is_witness,
)
from repro.operations.ops import Read, UpdateOp
from repro.schema.dtd import DTD
from repro.schema.generator import (
    SchemaGenerationError,
    enumerate_valid_trees,
    random_valid_tree,
)
from repro.schema.validator import is_valid

__all__ = [
    "find_schema_witness",
    "decide_conflict_under_schema",
    "breaks_validity",
]


def find_schema_witness(
    read: Read,
    update: UpdateOp,
    dtd: DTD,
    kind: ConflictKind = ConflictKind.NODE,
    max_size: int = 8,
    random_probes: int = 25,
):  # type: ignore[no-untyped-def]
    """A *valid* witness tree, or ``None`` if none was found.

    Random valid documents are probed first (cheap, catches most real
    conflicts), then all valid trees up to ``max_size`` nodes are
    enumerated.
    """
    for seed in range(random_probes):
        try:
            candidate = random_valid_tree(dtd, seed=seed, max_depth=6)
        except SchemaGenerationError:
            break
        if candidate.size <= 4 * max_size and is_witness(
            candidate, read, update, kind
        ):
            return candidate
    for candidate in enumerate_valid_trees(dtd, max_size):
        if is_witness(candidate, read, update, kind):
            return candidate
    return None


def decide_conflict_under_schema(
    read: Read,
    update: UpdateOp,
    dtd: DTD,
    kind: ConflictKind = ConflictKind.NODE,
    max_size: int = 8,
) -> ConflictReport:
    """Do the operations conflict on some ``dtd``-valid document?

    Returns ``CONFLICT`` with a valid witness, or ``UNKNOWN`` when no
    witness of at most ``max_size`` nodes exists (the schema-constrained
    problem has no proved witness-size bound).  A useful companion fact:
    if the *unconstrained* detector already says ``NO_CONFLICT``, that
    verdict carries over — valid documents are documents — so callers
    should consult :class:`~repro.conflicts.detector.ConflictDetector`
    first for definitive negatives.
    """
    witness = find_schema_witness(read, update, dtd, kind, max_size)
    if witness is not None:
        return ConflictReport(
            Verdict.CONFLICT,
            kind,
            witness=witness,
            method="schema-search",
        )
    return ConflictReport(
        Verdict.UNKNOWN,
        kind,
        method="schema-search",
        notes=[
            f"no valid witness with <= {max_size} nodes; larger valid "
            "witnesses remain possible (no witness bound is known for the "
            "schema-constrained problem)"
        ],
    )


def breaks_validity(update: UpdateOp, tree, dtd: DTD) -> bool:  # type: ignore[no-untyped-def]
    """Does applying ``update`` to the valid ``tree`` leave the schema?

    The revalidation companion question (cf. the paper's reference [14]).
    """
    if not is_valid(tree, dtd):
        raise ValueError("breaks_validity expects a valid input tree")
    return not is_valid(update.apply(tree).tree, dtd)
