"""A DTD-style schema formalism for unordered labeled trees.

Section 6 of the paper raises conflict detection *in the presence of
schema information* as an open problem, noting that DTDs tend to raise
complexities (containment under DTDs is coNP-complete).  This subpackage
supplies the substrate needed to explore that question experimentally: a
schema language, a validator, generators of valid documents, and a
schema-constrained conflict decision procedure
(:mod:`repro.schema.conflicts`).

**Substitution note** (recorded in DESIGN.md): real DTDs constrain the
*sequence* of children; the paper's data model is unordered, so ordered
content models are unexpressible.  We interpret a DTD content model as
per-label **occurrence bounds** on the multiset of children:

* ``(title, publisher?, quantity)``  →  exactly one ``title``, at most one
  ``publisher``, exactly one ``quantity``, nothing else;
* ``(book*)``  →  any number of ``book`` children, nothing else;
* ``(a | b)``  →  at most one of each, at least one in total;
* ``(#PCDATA)`` / mixed content  →  text children permitted;
* ``EMPTY``  →  no children;  ``ANY``  →  unconstrained.

This preserves exactly the part of DTD expressiveness that is meaningful
for unordered trees, which is what the conflict semantics can observe.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["DTD", "ElementDecl", "Occurrence", "DTDSyntaxError", "UNBOUNDED"]

#: Marker for "no upper bound" in occurrence constraints.
UNBOUNDED = math.inf


class DTDSyntaxError(ReproError):
    """Malformed DTD text."""


@dataclass(frozen=True)
class Occurrence:
    """Occurrence bounds for one child label: ``min <= count <= max``."""

    min: int
    max: float  # int or UNBOUNDED

    def allows(self, count: int) -> bool:
        return self.min <= count <= self.max

    def __str__(self) -> str:
        if self.min == 1 and self.max == 1:
            return "1"
        if (self.min, self.max) == (0, 1):
            return "?"
        if (self.min, self.max) == (0, UNBOUNDED):
            return "*"
        if (self.min, self.max) == (1, UNBOUNDED):
            return "+"
        upper = "inf" if self.max is UNBOUNDED else int(self.max)
        return f"{self.min}..{upper}"


#: Shorthand strings accepted wherever an :class:`Occurrence` is expected.
_SHORTHAND = {
    "1": Occurrence(1, 1),
    "?": Occurrence(0, 1),
    "*": Occurrence(0, UNBOUNDED),
    "+": Occurrence(1, UNBOUNDED),
}


@dataclass
class ElementDecl:
    """Declaration of one element label.

    Attributes:
        label: the element name.
        children: allowed child labels with their occurrence bounds.
        allows_text: whether ``#text:...`` children are permitted
            (``#PCDATA`` in DTD syntax).
        any_content: ``ANY`` — children unconstrained (overrides the rest).
        min_total: minimum number of (element) children in total; used to
            encode choice groups (``(a|b)`` requires at least one child).
    """

    label: str
    children: dict[str, Occurrence] = field(default_factory=dict)
    allows_text: bool = False
    any_content: bool = False
    min_total: int = 0

    def allowed_child_labels(self) -> set[str]:
        return set(self.children)


class DTD:
    """A schema: a set of element declarations plus a root label.

    Build programmatically::

        dtd = DTD(root="bib")
        dtd.element("bib", {"book": "*"})
        dtd.element("book", {"title": "1", "quantity": "1", "publisher": "?"})
        dtd.element("title", text=True)
        ...

    or parse DTD-ish text with :meth:`DTD.parse`.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._decls: dict[str, ElementDecl] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def element(
        self,
        label: str,
        children: dict[str, Occurrence | str] | None = None,
        text: bool = False,
        any_content: bool = False,
        min_total: int = 0,
    ) -> "DTD":
        """Declare an element; returns self for chaining."""
        normalized: dict[str, Occurrence] = {}
        for child, occurrence in (children or {}).items():
            if isinstance(occurrence, str):
                occurrence = _SHORTHAND[occurrence]
            normalized[child] = occurrence
        self._decls[label] = ElementDecl(
            label, normalized, text, any_content, min_total
        )
        return self

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def declaration(self, label: str) -> ElementDecl | None:
        """The declaration for ``label``, or ``None`` when undeclared.

        Undeclared elements are treated by the validator as
        content-free leaves (the strictest reading).
        """
        return self._decls.get(label)

    def labels(self) -> set[str]:
        """All declared element labels."""
        return set(self._decls)

    def __contains__(self, label: str) -> bool:
        return label in self._decls

    def __repr__(self) -> str:
        return f"DTD(root={self.root!r}, elements={sorted(self._decls)})"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    _ELEMENT_RE = re.compile(
        r"<!ELEMENT\s+([\w.:-]+)\s+(EMPTY|ANY|\([^>]*\)\s*[?*+]?)\s*>",
        re.DOTALL,
    )

    @classmethod
    def parse(cls, text: str, root: str | None = None) -> "DTD":
        """Parse ``<!ELEMENT ...>`` declarations into a DTD.

        Args:
            text: DTD source; only element declarations are read
                (``<!ATTLIST``/``<!ENTITY`` are ignored).
            root: document root label; defaults to the first declared
                element.

        Content models are interpreted per the module docstring's
        unordered reading.
        """
        matches = cls._ELEMENT_RE.findall(text)
        if not matches:
            raise DTDSyntaxError("no <!ELEMENT ...> declarations found")
        dtd = cls(root if root is not None else matches[0][0])
        for label, model in matches:
            decl = _parse_content_model(label, model.strip())
            dtd._decls[label] = decl
        if dtd.root not in dtd._decls:
            raise DTDSyntaxError(f"root element {dtd.root!r} is not declared")
        return dtd


def _parse_content_model(label: str, model: str) -> ElementDecl:
    if model == "EMPTY":
        return ElementDecl(label)
    if model == "ANY":
        return ElementDecl(label, any_content=True)
    group_suffix = ""
    if model and model[-1] in "?*+":
        group_suffix = model[-1]
        model = model[:-1].rstrip()
    if not (model.startswith("(") and model.endswith(")")):
        raise DTDSyntaxError(f"bad content model for {label!r}: {model!r}")
    body = model[1:-1].strip()
    decl = ElementDecl(label)
    if body:
        # Mixed content: (#PCDATA) or (#PCDATA | a | b)*
        if body.startswith("#PCDATA"):
            decl.allows_text = True
            rest = body[len("#PCDATA"):].strip()
            for item in filter(None, (s.strip() for s in rest.split("|"))):
                name, _ = _split_occurrence(item)
                decl.children[name] = Occurrence(0, UNBOUNDED)
        # Choice group: (a | b | c)  -> each 0..max, at least one in total.
        elif "|" in body and "," not in body:
            for item in (s.strip() for s in body.split("|")):
                name, occ = _split_occurrence(item)
                decl.children[name] = Occurrence(0, occ.max)
            decl.min_total = 1
        # Sequence group: (a, b?, c*) -> per-label bounds.
        else:
            for item in (s.strip() for s in body.split(",")):
                name, occ = _split_occurrence(item)
                if name in decl.children:
                    prev = decl.children[name]
                    occ = Occurrence(prev.min + occ.min, prev.max + occ.max)
                decl.children[name] = occ
    return _apply_group_suffix(decl, group_suffix)


def _apply_group_suffix(decl: ElementDecl, suffix: str) -> ElementDecl:
    """Apply a ``?``/``*``/``+`` suffix on a whole content group.

    ``?`` makes all content optional; ``*`` additionally unbounds every
    label; ``+`` unbounds labels but keeps the minima.
    """
    if not suffix:
        return decl
    if suffix in "?*":
        decl.children = {
            name: Occurrence(0, UNBOUNDED if suffix == "*" else occ.max)
            for name, occ in decl.children.items()
        }
        decl.min_total = 0
    else:  # '+'
        decl.children = {
            name: Occurrence(occ.min, UNBOUNDED)
            for name, occ in decl.children.items()
        }
    return decl


def _split_occurrence(item: str) -> tuple[str, Occurrence]:
    item = item.strip()
    if not item:
        raise DTDSyntaxError("empty item in content model")
    suffix = item[-1]
    if suffix in "?*+":
        name = item[:-1].strip().strip("()")
        return name, _SHORTHAND[suffix]
    return item.strip("()"), _SHORTHAND["1"]
