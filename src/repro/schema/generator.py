"""Generating and enumerating schema-valid documents.

Two producers back the schema-aware experiments:

* :func:`random_valid_tree` — a seeded sampler of documents conforming to
  a DTD, used for workload generation (the DTD must be *well-founded*:
  required content must be satisfiable within the depth budget);
* :func:`enumerate_valid_trees` — every valid unordered tree up to a size
  bound, one per isomorphism class; this is the candidate stream for the
  schema-constrained conflict search (the schema analogue of Lemma 11's
  guess-and-check).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.errors import ReproError
from repro.schema.dtd import DTD, UNBOUNDED
from repro.schema.validator import is_valid
from repro.xml.tree import NodeId, XMLTree

__all__ = ["random_valid_tree", "enumerate_valid_trees", "SchemaGenerationError"]


class SchemaGenerationError(ReproError):
    """The DTD's required content cannot be satisfied within the budget."""


def random_valid_tree(
    dtd: DTD,
    seed: int | random.Random | None = None,
    max_depth: int = 8,
    expansion_bias: float = 0.4,
    optional_cap: int = 3,
) -> XMLTree:
    """Sample a random document valid w.r.t. ``dtd``.

    Args:
        dtd: the schema; its required content must be satisfiable within
            ``max_depth`` levels or :class:`SchemaGenerationError` raises.
        seed: RNG seed or instance.
        max_depth: recursion budget.  Near the budget only *required*
            children are emitted, so recursive DTDs terminate whenever
            their mandatory core is non-recursive.
        expansion_bias: probability of emitting an optional child.
        optional_cap: cap on repetitions of unbounded child labels.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    tree = XMLTree(dtd.root)
    _fill(tree, tree.root, dtd, rng, max_depth, expansion_bias, optional_cap)
    if not is_valid(tree, dtd):  # pragma: no cover - defensive
        raise SchemaGenerationError("generator produced an invalid tree")
    return tree


def _fill(
    tree: XMLTree,
    node: NodeId,
    dtd: DTD,
    rng: random.Random,
    depth_left: int,
    expansion_bias: float,
    optional_cap: int,
) -> None:
    label = tree.label(node)
    decl = dtd.declaration(label)
    if decl is None or decl.any_content:
        return  # leaves / unconstrained
    if depth_left <= 0:
        if any(occ.min > 0 for occ in decl.children.values()) or decl.min_total:
            raise SchemaGenerationError(
                f"required content of <{label}> does not fit in the depth budget"
            )
        return
    emitted_total = 0
    for child_label in sorted(decl.children):
        occurrence = decl.children[child_label]
        count = occurrence.min
        ceiling = (
            optional_cap + occurrence.min
            if occurrence.max is UNBOUNDED
            else int(occurrence.max)
        )
        while count < ceiling and rng.random() < expansion_bias:
            count += 1
        for _ in range(count):
            child = tree.add_child(node, child_label)
            _fill(
                tree, child, dtd, rng, depth_left - 1, expansion_bias, optional_cap
            )
        emitted_total += count
    # Choice groups: ensure the minimum total (pick required-free labels).
    attempts = 0
    while emitted_total < decl.min_total:
        attempts += 1
        if attempts > 10 * decl.min_total:  # pragma: no cover - defensive
            raise SchemaGenerationError(
                f"cannot satisfy the choice group of <{label}>"
            )
        child_label = rng.choice(sorted(decl.children))
        occurrence = decl.children[child_label]
        current = sum(
            1 for c in tree.children(node) if tree.label(c) == child_label
        )
        if not occurrence.allows(current + 1):
            continue
        child = tree.add_child(node, child_label)
        _fill(tree, child, dtd, rng, depth_left - 1, expansion_bias, optional_cap)
        emitted_total += 1
    if decl.allows_text and rng.random() < expansion_bias:
        tree.add_child(node, f"#text:{rng.randrange(1000)}")


def enumerate_valid_trees(
    dtd: DTD,
    max_size: int,
    extra_labels: tuple[str, ...] = (),
) -> Iterator[XMLTree]:
    """Every valid element tree with at most ``max_size`` nodes, up to iso.

    The enumeration is **schema-driven**: candidate trees are constructed
    from the DTD's content models directly, so only valid trees are ever
    materialized.  (A naive filter over all labeled trees would scan
    millions of candidates to find a handful of valid ones — the schema
    typically prunes the space by many orders of magnitude; experiment E11
    quantifies this.)

    Scope notes:

    * only element structure is enumerated — text children are omitted
      (they are never *required* by a DTD content model, and the conflict
      engine strips value tests, so they cannot affect structural
      conflict search);
    * ``extra_labels`` (e.g. a conflict alphabet) can appear only where
      the schema allows unconstrained content (``ANY``), as empty leaves —
      anywhere else they would be validator violations.

    Trees are yielded in increasing size, one per isomorphism class, and
    every yielded tree satisfies :func:`repro.schema.validator.is_valid`.
    """
    extras = tuple(sorted(set(extra_labels) - dtd.labels()))
    for size in range(1, max_size + 1):
        for spec in _valid_specs(dtd, dtd.root, size, extras, {}):
            yield _materialize_spec(spec)


# A spec is a nested tuple (label, child_spec, ...), children sorted
# non-increasingly by `_spec_key` so each unordered tree appears once.
_Spec = tuple


def _spec_size(spec: _Spec) -> int:
    return 1 + sum(_spec_size(child) for child in spec[1:])


def _spec_key(spec: _Spec) -> tuple:
    return (_spec_size(spec), spec)


def _valid_specs(
    dtd: DTD,
    label: str,
    size: int,
    extras: tuple[str, ...],
    memo: dict,
) -> list[_Spec]:
    """All valid subtrees rooted at ``label`` with exactly ``size`` nodes."""
    key = (label, size)
    if key in memo:
        return memo[key]
    out: list[_Spec] = []
    decl = dtd.declaration(label)
    if decl is None:
        # Undeclared elements (incl. extra labels) must be empty leaves.
        if size == 1:
            out.append((label,))
    elif decl.any_content:
        # ANY: children are any multiset of valid declared-label trees or
        # extra-label leaves.
        child_labels = tuple(sorted(dtd.labels() | set(extras)))
        for forest in _any_forests(dtd, child_labels, size - 1, extras, memo, None):
            out.append((label, *forest))
    else:
        for forest in _declared_forests(dtd, decl, size - 1, extras, memo):
            out.append((label, *forest))
    memo[key] = out
    return out


def _any_forests(
    dtd: DTD,
    child_labels: tuple[str, ...],
    total: int,
    extras: tuple[str, ...],
    memo: dict,
    bound: _Spec | None,
) -> Iterator[tuple[_Spec, ...]]:
    """Non-increasing multisets of valid trees with sizes summing to total."""
    if total == 0:
        yield ()
        return
    for head_size in range(total, 0, -1):
        for label in child_labels:
            for head in _valid_specs(dtd, label, head_size, extras, memo):
                if bound is not None and _spec_key(head) > _spec_key(bound):
                    continue
                for tail in _any_forests(
                    dtd, child_labels, total - head_size, extras, memo, head
                ):
                    yield (head, *tail)


def _declared_forests(
    dtd: DTD,
    decl,  # type: ignore[no-untyped-def]
    total: int,
    extras: tuple[str, ...],
    memo: dict,
) -> Iterator[tuple[_Spec, ...]]:
    """Child forests satisfying the declaration's occurrence bounds."""
    labels = sorted(decl.children)

    def assign(index: int, size_left: int, count_so_far: int) -> Iterator[tuple[_Spec, ...]]:
        if index == len(labels):
            if size_left == 0 and count_so_far >= decl.min_total:
                yield ()
            return
        label = labels[index]
        occurrence = decl.children[label]
        max_count = size_left if occurrence.max is UNBOUNDED else int(occurrence.max)
        max_count = min(max_count, size_left)
        for count in range(occurrence.min, max_count + 1):
            if count > size_left:
                break
            for group, used in _label_groups(dtd, label, count, size_left, extras, memo):
                for rest in assign(index + 1, size_left - used, count_so_far + count):
                    yield (*group, *rest)

    yield from assign(0, total, 0)


def _label_groups(
    dtd: DTD,
    label: str,
    count: int,
    size_budget: int,
    extras: tuple[str, ...],
    memo: dict,
) -> Iterator[tuple[tuple[_Spec, ...], int]]:
    """Multisets of exactly ``count`` valid ``label`` trees within budget.

    Yields ``(group, total_size)`` pairs; groups are non-increasing in
    spec key, so same-label siblings never repeat up to isomorphism.
    """

    def build(
        remaining: int, budget: int, bound: _Spec | None
    ) -> Iterator[tuple[tuple[_Spec, ...], int]]:
        if remaining == 0:
            yield ((), 0)
            return
        # Each remaining sibling needs at least one node.
        for head_size in range(budget - (remaining - 1), 0, -1):
            for head in _valid_specs(dtd, label, head_size, extras, memo):
                if bound is not None and _spec_key(head) > _spec_key(bound):
                    continue
                for tail, tail_size in build(
                    remaining - 1, budget - head_size, head
                ):
                    yield ((head, *tail), head_size + tail_size)

    yield from build(count, size_budget, None)


def _materialize_spec(spec: _Spec) -> XMLTree:
    tree = XMLTree(spec[0])
    stack = [(tree.root, child) for child in spec[1:]]
    while stack:
        parent, child_spec = stack.pop()
        node = tree.add_child(parent, child_spec[0])
        stack.extend((node, grandchild) for grandchild in child_spec[1:])
    return tree
