"""Where a sync round's pair classifications come from.

A :class:`ReplicationSession <repro.replication.session.ReplicationSession>`
never decides conflicts itself — it hands each batch of newly concurrent
pairs to a *decision backend*:

* :class:`InProcessBackend` routes the batch through :func:`repro.analyze`
  in pairs mode, so replication traffic exercises the whole catalogue
  pipeline (static index discharge, canonical dedup, the shared
  :class:`~repro.conflicts.batch.VerdictCache`) and repeated patterns
  across sync rounds hit the cache instead of the decision procedures.
* :class:`ServiceBackend` asks a live ``repro serve`` or ``repro cluster
  serve`` endpoint over ``POST /v1/check`` — the same engine behind a
  process boundary, so scenarios double as realistic service traffic.

Both return one :class:`~repro.conflicts.semantics.Verdict` per pair;
``UNKNOWN`` (including service-side degraded verdicts) is surfaced
verbatim — the session's ``unknown_policy`` decides whether such pairs
go to the resolver or apply in canonical order.
"""

from __future__ import annotations

from dataclasses import replace

from repro.conflicts.api import AnalysisConfig, analyze
from repro.conflicts.batch import VerdictCache
from repro.conflicts.detector import DetectorConfig
from repro.conflicts.semantics import Verdict
from repro.replication.log import LoggedOp, PairKey, pair_key

__all__ = ["DecisionBackend", "InProcessBackend", "ServiceBackend"]


class DecisionBackend:
    """The classification contract a session drives."""

    #: Recorded in scenario results and benchmarks as the verdict source.
    source = "abstract"

    def classify(
        self, pairs: "list[tuple[LoggedOp, LoggedOp]]"
    ) -> dict[PairKey, Verdict]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any held connections; idempotent."""


class InProcessBackend(DecisionBackend):
    """Classify pairs with :func:`repro.analyze` in this process.

    Holds one :class:`VerdictCache` for its whole lifetime, so a long
    session pays for each distinct operation pair once no matter how
    many sync rounds revisit it.

    The default detector disables the exhaustive commutativity-witness
    search (``exhaustive_cap=None``): replication classifies many pairs
    per sync and only *certified* conflicts change behavior, so the
    heuristic witness pass (microseconds, finds the realistic conflict
    shapes) is the right latency/recall trade — the deep search costs
    seconds per unproven pair to usually still answer ``UNKNOWN``.
    Pass an explicit :class:`AnalysisConfig` to override.
    """

    source = "in-process"

    def __init__(self, config: AnalysisConfig | None = None) -> None:
        if config is None:
            config = AnalysisConfig(
                detector=DetectorConfig(exhaustive_cap=None)
            )
        if config.cache is None:
            config = replace(config, cache=VerdictCache())
        self.config = config

    def classify(
        self, pairs: "list[tuple[LoggedOp, LoggedOp]]"
    ) -> dict[PairKey, Verdict]:
        if not pairs:
            return {}
        catalogue = {}
        for first, second in pairs:
            catalogue.setdefault(first.op_id, first.op)
            catalogue.setdefault(second.op_id, second.op)
        decided = analyze(catalogue, mode="pairs", config=self.config)
        verdicts = {pair_key(a, b): verdict for a, b, verdict in decided}
        return {
            pair_key(first, second): verdicts[pair_key(first, second)]
            for first, second in pairs
        }


class ServiceBackend(DecisionBackend):
    """Classify pairs through a live conflict service.

    Accepts an existing :class:`~repro.service.client.ServiceClient` (or
    :class:`~repro.cluster.client.ClusterClient`), or builds one from
    ``host``/``port``.  Each pair is one ``POST /v1/check`` round-trip on
    the client's persistent connection; against a cluster front the
    payload-derived routing key spreads distinct pairs across shards.

    The default ``budget=0`` disables the server-side exhaustive witness
    search per request (mirroring :class:`InProcessBackend`'s tuned
    detector): the heuristic pass still certifies the realistic conflict
    shapes, and unproven pairs answer fast instead of burning a worker
    for seconds each.  Pass ``budget=None`` to accept the server's
    configured cap.
    """

    source = "service"

    def __init__(
        self,
        client=None,
        *,
        port: int | None = None,
        host: str = "127.0.0.1",
        deadline_ms: float | None = None,
        budget: int | None = 0,
    ) -> None:
        if client is None:
            if port is None:
                raise ValueError("ServiceBackend needs a client or a port")
            from repro.service.client import ServiceClient

            client = ServiceClient(port=port, host=host)
            self._owns_client = True
        else:
            self._owns_client = False
        self.client = client
        self.deadline_ms = deadline_ms
        self.budget = budget

    def classify(
        self, pairs: "list[tuple[LoggedOp, LoggedOp]]"
    ) -> dict[PairKey, Verdict]:
        out: dict[PairKey, Verdict] = {}
        for first, second in pairs:
            key = pair_key(first, second)
            if key in out:
                continue
            result = self.client.check(
                first.spec,
                second.spec,
                budget=self.budget,
                deadline_ms=self.deadline_ms,
            )
            out[key] = Verdict(result["verdict"])
        return out

    def close(self) -> None:
        if self._owns_client:
            self.client.close()
