"""Pluggable conflict resolvers, modeled on couchbase-lite's custom
conflict-resolver contract.

A resolver is any callable ``resolver(conflict) -> ResolutionChoice``
where ``conflict`` is a :class:`ConflictPair` and the choice is one of:

* the string ``"local"`` or ``"remote"`` — keep that side's operation
  and drop the other (the couchbase ``local-wins`` / ``remote-wins``
  test specs);
* an :class:`~repro.operations.ops.Insert` / ``Delete`` (or a list of
  them, or their JSON specs) — drop *both* sides and replace them with
  the returned merge operations, which then replicate like ordinary
  edits;
* ``None`` — decline: the pair is recorded as ``unresolved`` and both
  operations are conservatively withheld from replay.

A resolver that **raises** is treated exactly like one that declines,
plus the error text is recorded on the decision — the session degrades,
it never crashes and never lets replicas diverge silently.

Convergence caveat (see ``docs/REPLICATION.md``): ``last-writer-wins``
is a pure function of the pair, so it rules identically no matter which
replica resolves, making it sync-order invariant.  ``local-wins`` and
``remote-wins`` depend on which replica happened to resolve first; they
still converge (decisions replicate, ties broken deterministically) but
the *winner* can depend on the sync schedule — same as couchbase.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.conflicts.semantics import ConflictKind, Verdict
from repro.errors import ReplicationError
from repro.operations.ops import UpdateOp
from repro.replication.log import LoggedOp

__all__ = [
    "ConflictPair",
    "Resolver",
    "local_wins",
    "remote_wins",
    "last_writer_wins",
    "BUILTIN_RESOLVERS",
    "resolver_by_name",
    "resolver_name",
]


@dataclass(frozen=True)
class ConflictPair:
    """Everything a resolver may consult about one conflicting pair.

    Attributes:
        local: the operation held by the replica running the resolver
            (the sync initiator's side).
        remote: the incoming operation from the peer.
        verdict: the engine's classification — ``CONFLICT``, or a
            conservative ``UNKNOWN`` the session treats as conflicting.
        kind: the conflict semantics the verdict was decided under.
        local_replica: id of the resolving replica.
        remote_replica: id of the peer.
    """

    local: LoggedOp
    remote: LoggedOp
    verdict: Verdict
    kind: ConflictKind
    local_replica: int
    remote_replica: int

    @property
    def is_delete_vs_update(self) -> bool:
        """True when exactly one side deleted what the other touched —
        the couchbase spec's hardest case (snippet 3)."""
        return {self.local.kind, self.remote.kind} == {"insert", "delete"}

    @property
    def deleter(self) -> LoggedOp | None:
        """The deleting side of a delete-vs-update pair, if any."""
        if not self.is_delete_vs_update:
            return None
        return self.local if self.local.kind == "delete" else self.remote

    @property
    def updater(self) -> LoggedOp | None:
        """The inserting side of a delete-vs-update pair, if any."""
        if not self.is_delete_vs_update:
            return None
        return self.local if self.local.kind == "insert" else self.remote


#: What a resolver may return; see the module docstring.
ResolutionChoice = str | UpdateOp | Mapping | list | None
#: The resolver callable contract.
Resolver = Callable[[ConflictPair], ResolutionChoice]


def local_wins(conflict: ConflictPair) -> str:
    """Keep the resolving replica's own operation (couchbase #1)."""
    return "local"


def remote_wins(conflict: ConflictPair) -> str:
    """Keep the incoming peer operation (couchbase #2)."""
    return "remote"


def last_writer_wins(conflict: ConflictPair) -> str:
    """Keep the operation with the larger ``(lamport, origin, seq)`` stamp.

    A pure function of the pair: every replica that resolves this pair
    rules the same way, which is what makes this resolver sync-order
    and replica-order invariant (the property the metamorphic tests pin).
    """
    return "local" if conflict.local.stamp > conflict.remote.stamp else "remote"


BUILTIN_RESOLVERS: dict[str, Resolver] = {
    "local-wins": local_wins,
    "remote-wins": remote_wins,
    "last-writer-wins": last_writer_wins,
}


def resolver_by_name(name: "str | Resolver") -> Resolver:
    """Look up a built-in resolver; passes callables through unchanged."""
    if callable(name):
        return name
    key = str(name).replace("_", "-")
    try:
        return BUILTIN_RESOLVERS[key]
    except KeyError:
        raise ReplicationError(
            f"unknown resolver {name!r} "
            f"(built-ins: {', '.join(sorted(BUILTIN_RESOLVERS))})"
        ) from None


def resolver_name(resolver: "str | Resolver") -> str:
    """A display name for decisions and reports."""
    if isinstance(resolver, str):
        return resolver.replace("_", "-")
    return getattr(resolver, "__name__", type(resolver).__name__).replace("_", "-")
