"""Replication & conflict-resolution scenario engine (ROADMAP item 4).

The paper gives a PTIME procedure for *detecting* conflicting XPath
updates; this package is the loop that *uses* it: N replicas of one
document edit independently, sync rounds exchange stamped op logs,
concurrent pairs are classified by the conflict engine (in-process
:func:`repro.analyze` or a live service/cluster endpoint), certified
conflicts go through pluggable resolvers, and every replica's tree is a
deterministic replay of the surviving operations — so quiescence implies
convergence by construction, verified with
:func:`repro.xml.isomorphism.canonical_form`.

Layers:

* :mod:`~repro.replication.log` — stamped :class:`LoggedOp` records,
  replicated :class:`Decision` rulings, vector-clock concurrency.
* :mod:`~repro.replication.resolvers` — the couchbase-lite-style
  resolver contract plus the built-ins (``local-wins``, ``remote-wins``,
  ``last-writer-wins``).
* :mod:`~repro.replication.backends` — where verdicts come from
  (:class:`InProcessBackend`, :class:`ServiceBackend`).
* :mod:`~repro.replication.session` — :class:`ReplicationSession`:
  edit/sync/partition/heal/crash/quiesce.
* :mod:`~repro.replication.scenario` — the declarative scenario DSL
  behind ``repro replay``.

See ``docs/REPLICATION.md`` for the DSL grammar, the resolver contract,
and precisely which convergence guarantees hold for which resolvers.
"""

from repro.replication.backends import (
    DecisionBackend,
    InProcessBackend,
    ServiceBackend,
)
from repro.replication.log import (
    Decision,
    LoggedOp,
    PairKey,
    concurrent,
    logged_op_from,
    merge_decisions,
    pair_key,
)
from repro.replication.resolvers import (
    BUILTIN_RESOLVERS,
    ConflictPair,
    Resolver,
    last_writer_wins,
    local_wins,
    remote_wins,
    resolver_by_name,
    resolver_name,
)
from repro.replication.scenario import (
    Scenario,
    ScenarioResult,
    load_scenario,
    run_scenario,
    scenario_from_dict,
    scenario_from_json,
)
from repro.replication.session import Replica, ReplicationSession, SyncReport

__all__ = [
    "BUILTIN_RESOLVERS",
    "ConflictPair",
    "Decision",
    "DecisionBackend",
    "InProcessBackend",
    "LoggedOp",
    "PairKey",
    "Replica",
    "ReplicationSession",
    "Resolver",
    "Scenario",
    "ScenarioResult",
    "ServiceBackend",
    "SyncReport",
    "concurrent",
    "last_writer_wins",
    "load_scenario",
    "local_wins",
    "logged_op_from",
    "merge_decisions",
    "pair_key",
    "remote_wins",
    "resolver_by_name",
    "resolver_name",
    "run_scenario",
    "scenario_from_dict",
    "scenario_from_json",
]
