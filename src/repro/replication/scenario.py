"""Declarative replication scenarios: parse, validate, run, report.

A scenario is a JSON document (or the equivalent dict) describing a
replicated editing session as an ordered list of steps::

    {
      "name": "partition-then-heal",
      "replicas": 3,
      "doc": "<doc><hot/><p0/><p1/><p2/></doc>",
      "resolver": "last-writer-wins",
      "steps": [
        {"step": "edit", "replica": 0,
         "op": {"op": "insert", "xpath": "doc/hot", "xml": "<item/>"}},
        {"step": "partition", "groups": [[0], [1, 2]]},
        {"step": "edit", "replica": 1,
         "op": {"op": "delete", "xpath": "doc/hot/item"}},
        {"step": "sync", "a": 1, "b": 2},
        {"step": "heal"},
        {"step": "assert_converged"}
      ]
    }

Step vocabulary (full grammar in ``docs/REPLICATION.md``):

``edit``
    ``{"step": "edit", "replica": R, "op": <op spec>}`` — author one
    insert/delete at replica ``R`` (the service-protocol spec format).
``sync``
    ``{"step": "sync", "a": A, "b": B}`` — one pairwise sync round;
    omit both endpoints for a full gossip round over every pair.
``partition`` / ``heal``
    ``{"step": "partition", "groups": [[...], [...]]}`` splits the
    network; ``{"step": "heal"}`` removes the split.
``crash`` / ``recover``
    ``{"step": "crash", "replica": R}`` takes a replica offline (its
    durable log survives); ``recover`` brings it back.
``quiesce``
    ``{"step": "quiesce", "max_rounds": N}`` — gossip until a full
    round changes nothing.
``assert_converged``
    Quiesce (unless ``"quiesce": false``), then require all live
    replicas pairwise isomorphic — raising
    :class:`~repro.errors.ConvergenceError` with the offending
    canonical forms otherwise.

:func:`run_scenario` executes steps in order against a
:class:`~repro.replication.session.ReplicationSession` and returns a
:class:`ScenarioResult` whose :meth:`~ScenarioResult.to_dict` is the
``repro replay --json`` payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConvergenceError, ScenarioError
from repro.obs.metrics import MetricsRegistry, quantile_from_snapshot
from repro.replication.backends import DecisionBackend
from repro.replication.resolvers import Resolver, resolver_name
from repro.replication.session import ReplicationSession

__all__ = [
    "Scenario",
    "ScenarioResult",
    "scenario_from_dict",
    "scenario_from_json",
    "load_scenario",
    "run_scenario",
]

_STEPS = (
    "edit",
    "sync",
    "partition",
    "heal",
    "crash",
    "recover",
    "quiesce",
    "assert_converged",
)


@dataclass(frozen=True)
class Scenario:
    """A validated scenario, ready to run."""

    name: str
    replicas: int
    doc: str
    steps: tuple[dict, ...]
    resolver: "str | Resolver" = "last-writer-wins"
    unknown_policy: str = "keep"
    seed: int | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "replicas": self.replicas,
            "doc": self.doc,
            "resolver": resolver_name(self.resolver),
            "unknown_policy": self.unknown_policy,
            "seed": self.seed,
            "steps": [dict(step) for step in self.steps],
        }


def _require(data: dict, key: str, kind: type, where: str):
    try:
        value = data[key]
    except KeyError:
        raise ScenarioError(f"{where}: missing required field {key!r}") from None
    if kind is int and isinstance(value, bool) or not isinstance(value, kind):
        raise ScenarioError(
            f"{where}: field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _check_replica(value: object, replicas: int, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{where}: replica id must be an int, got {value!r}")
    if not 0 <= value < replicas:
        raise ScenarioError(
            f"{where}: replica {value} out of range (scenario has {replicas})"
        )
    return value


def _validate_step(step: object, index: int, replicas: int) -> dict:
    where = f"steps[{index}]"
    if not isinstance(step, dict):
        raise ScenarioError(f"{where}: each step must be an object")
    kind = step.get("step")
    if kind not in _STEPS:
        raise ScenarioError(
            f"{where}: unknown step {kind!r} (expected one of {', '.join(_STEPS)})"
        )
    known = {"step"}
    if kind == "edit":
        _check_replica(step.get("replica"), replicas, where)
        op = _require(step, "op", dict, where)
        if op.get("op") not in ("insert", "delete"):
            raise ScenarioError(
                f"{where}: edit op must be an insert or delete spec, got {op!r}"
            )
        known |= {"replica", "op"}
    elif kind == "sync":
        if ("a" in step) != ("b" in step):
            raise ScenarioError(
                f"{where}: sync needs both endpoints 'a' and 'b', or neither"
            )
        if "a" in step:
            a = _check_replica(step["a"], replicas, where)
            b = _check_replica(step["b"], replicas, where)
            if a == b:
                raise ScenarioError(f"{where}: sync endpoints must differ")
        known |= {"a", "b"}
    elif kind == "partition":
        groups = _require(step, "groups", list, where)
        for group in groups:
            if not isinstance(group, list):
                raise ScenarioError(f"{where}: each partition group is a list")
            for rid in group:
                _check_replica(rid, replicas, where)
        known |= {"groups"}
    elif kind in ("crash", "recover"):
        _check_replica(step.get("replica"), replicas, where)
        known |= {"replica"}
    elif kind == "quiesce":
        if "max_rounds" in step:
            _require(step, "max_rounds", int, where)
        known |= {"max_rounds"}
    elif kind == "assert_converged":
        known |= {"quiesce", "max_rounds"}
    extra = set(step) - known
    if extra:
        raise ScenarioError(
            f"{where}: unknown field(s) for {kind!r}: {', '.join(sorted(extra))}"
        )
    return dict(step)


def scenario_from_dict(data: dict) -> Scenario:
    """Validate a scenario dict; raises :class:`ScenarioError` on any flaw."""
    if not isinstance(data, dict):
        raise ScenarioError(
            f"a scenario must be a JSON object, got {type(data).__name__}"
        )
    replicas = _require(data, "replicas", int, "scenario")
    if replicas < 1:
        raise ScenarioError("scenario: 'replicas' must be >= 1")
    doc = _require(data, "doc", str, "scenario")
    raw_steps = _require(data, "steps", list, "scenario")
    steps = tuple(
        _validate_step(step, index, replicas)
        for index, step in enumerate(raw_steps)
    )
    resolver = data.get("resolver", "last-writer-wins")
    if not (isinstance(resolver, str) or callable(resolver)):
        raise ScenarioError("scenario: 'resolver' must be a name or callable")
    unknown_policy = data.get("unknown_policy", "keep")
    if unknown_policy not in ("keep", "conflict"):
        raise ScenarioError(
            "scenario: 'unknown_policy' must be 'keep' or 'conflict'"
        )
    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise ScenarioError("scenario: 'seed' must be an int")
    extra = set(data) - {
        "name", "replicas", "doc", "steps", "resolver", "unknown_policy", "seed",
    }
    if extra:
        raise ScenarioError(
            f"scenario: unknown field(s): {', '.join(sorted(extra))}"
        )
    return Scenario(
        name=str(data.get("name", "scenario")),
        replicas=replicas,
        doc=doc,
        steps=steps,
        resolver=resolver,
        unknown_policy=unknown_policy,
        seed=seed,
    )


def scenario_from_json(text: str) -> Scenario:
    """Parse and validate a scenario from JSON text."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
    return scenario_from_dict(data)


def load_scenario(path: str) -> Scenario:
    """Read and validate a scenario file."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path!r}: {exc}") from exc
    return scenario_from_json(text)


@dataclass
class ScenarioResult:
    """Everything a scenario run observed, JSON-ready via :meth:`to_dict`."""

    name: str
    replicas: int
    resolver: str
    verdict_source: str
    converged: bool
    steps_executed: int
    edits: int
    syncs: int
    syncs_skipped: int
    pairs_classified: int
    pairs_conflicting: int
    pairs_unproven: int
    resolutions: dict[str, int]
    unresolved: list[dict]
    rounds_to_converge: int | None
    lost_updates: list[list]
    replica_summaries: list[dict] = field(default_factory=list)
    sync_ms: dict = field(default_factory=dict)
    seed: int | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "replicas": self.replicas,
            "resolver": self.resolver,
            "verdict_source": self.verdict_source,
            "converged": self.converged,
            "steps_executed": self.steps_executed,
            "edits": self.edits,
            "syncs": self.syncs,
            "syncs_skipped": self.syncs_skipped,
            "pairs_classified": self.pairs_classified,
            "pairs_conflicting": self.pairs_conflicting,
            "pairs_unproven": self.pairs_unproven,
            "resolutions": dict(self.resolutions),
            "unresolved": list(self.unresolved),
            "rounds_to_converge": self.rounds_to_converge,
            "lost_updates": [list(item) for item in self.lost_updates],
            "replicas_detail": list(self.replica_summaries),
            "sync_ms": dict(self.sync_ms),
            "seed": self.seed,
            "error": self.error,
        }


def _collect_result(
    scenario: Scenario,
    session: ReplicationSession,
    steps_executed: int,
    rounds: int | None,
    error: str | None,
) -> ScenarioResult:
    registry = session.registry
    snapshot = registry.snapshot()
    counters = snapshot.get("counters", {})

    def _counter_total(prefix: str) -> int:
        return sum(
            value
            for key, value in counters.items()
            if key == prefix or key.startswith(prefix + "{")
        )

    resolutions: dict[str, int] = {}
    for key, value in counters.items():
        if key.startswith("replication.resolutions{outcome="):
            outcome = key.split("outcome=", 1)[1].rstrip("}")
            resolutions[outcome] = resolutions.get(outcome, 0) + value
    hist = registry.histogram("replication.sync_ms")
    sync_ms = {}
    if hist:
        sync_ms = {
            "count": hist.get("count", 0),
            "p50": quantile_from_snapshot(hist, 0.5),
            "p95": quantile_from_snapshot(hist, 0.95),
        }
    forms = session.canonical_forms()
    summaries = [
        {
            "replica": rep.rid,
            "down": rep.down,
            "ops": len(rep.ops),
            "live_ops": len(rep.live_ops()),
            "decisions": len(rep.decisions),
            "canonical_size": len(forms[rep.rid]) if rep.rid in forms else None,
        }
        for rep in session.replicas
    ]
    return ScenarioResult(
        name=scenario.name,
        replicas=scenario.replicas,
        resolver=resolver_name(scenario.resolver),
        verdict_source=session.backend.source,
        converged=session.converged(),
        steps_executed=steps_executed,
        edits=_counter_total("replication.ops_edited"),
        syncs=_counter_total("replication.syncs_total"),
        syncs_skipped=_counter_total("replication.syncs_skipped"),
        pairs_classified=_counter_total("replication.pairs_classified"),
        pairs_conflicting=_counter_total("replication.pairs_conflicting"),
        pairs_unproven=_counter_total("replication.pairs_unproven"),
        resolutions=resolutions,
        unresolved=[decision.to_dict() for decision in session.unresolved()],
        rounds_to_converge=rounds,
        lost_updates=[list(item) for item in session.lost_updates()],
        replica_summaries=summaries,
        sync_ms=sync_ms,
        seed=scenario.seed,
        error=error,
    )


def run_scenario(
    scenario: Scenario,
    *,
    backend: DecisionBackend | None = None,
    resolver: "str | Resolver | None" = None,
    registry: MetricsRegistry | None = None,
    strict: bool = True,
) -> ScenarioResult:
    """Execute a scenario and report what happened.

    Args:
        scenario: a validated :class:`Scenario`.
        backend: decision backend override (defaults to in-process).
        resolver: resolver override — e.g. replay one scenario under
            every built-in resolver, as the convergence tests do.
        registry: metrics registry (private per run when ``None``, so
            counters in the result cover exactly this run).
        strict: when True a failing ``assert_converged`` raises
            :class:`ConvergenceError`; when False it is recorded on
            ``result.error`` and the run continues.
    """
    if resolver is not None:
        scenario = Scenario(
            name=scenario.name,
            replicas=scenario.replicas,
            doc=scenario.doc,
            steps=scenario.steps,
            resolver=resolver,
            unknown_policy=scenario.unknown_policy,
            seed=scenario.seed,
        )
    session = ReplicationSession(
        scenario.replicas,
        scenario.doc,
        resolver=scenario.resolver,
        backend=backend,
        registry=registry,
        unknown_policy=scenario.unknown_policy,
    )
    rounds: int | None = None
    error: str | None = None
    steps_executed = 0
    for step in scenario.steps:
        kind = step["step"]
        if kind == "edit":
            session.edit(step["replica"], step["op"])
        elif kind == "sync":
            if "a" in step:
                session.sync(step["a"], step["b"])
            else:
                session.sync_all()
        elif kind == "partition":
            session.partition(step["groups"])
        elif kind == "heal":
            session.heal()
        elif kind == "crash":
            session.crash(step["replica"])
        elif kind == "recover":
            session.recover(step["replica"])
        elif kind == "quiesce":
            rounds = session.quiesce(step.get("max_rounds", 16))
        elif kind == "assert_converged":
            if step.get("quiesce", True):
                rounds = session.quiesce(step.get("max_rounds", 16))
            if not session.converged():
                forms = session.canonical_forms()
                failure = ConvergenceError(
                    f"replicas diverged after step {steps_executed} "
                    f"({len(set(forms.values()))} distinct canonical forms "
                    f"across {len(forms)} live replicas)",
                    forms=forms,
                )
                if strict:
                    raise failure
                error = str(failure)
        steps_executed += 1
    return _collect_result(scenario, session, steps_executed, rounds, error)
