"""Multi-replica editing sessions with sync, resolution, and convergence.

A :class:`ReplicationSession` holds N replicas of one base document.
Each replica accumulates XPath update operations in a stamped log
(:mod:`repro.replication.log`); a *sync round* between two replicas

1. exchanges the log entries each side is missing,
2. classifies every **newly concurrent pair** (one op from each side,
   neither causally aware of the other) through a decision backend —
   :func:`repro.analyze` in pairs mode, or a live service endpoint,
3. routes conflicting pairs (verdict ``CONFLICT``, or a conservative
   ``UNKNOWN``) through the session's resolver, recording the ruling as
   a replicated :class:`~repro.replication.log.Decision`, and
4. rebuilds both trees by materializing the surviving operations with
   ``apply_in_place`` in canonical stamp order from the base document.

Step 4 is what makes convergence structural rather than hopeful: a
replica's tree is a pure function of (base document, known ops, known
decisions), so once quiescence propagates the same sets everywhere, the
trees are equal by construction — the isomorphism check in
:meth:`ReplicationSession.converged` verifies the implementation, not
the math.  The price is replay cost per sync, which is the right trade
for session-scale logs (see ``docs/REPLICATION.md`` for the limits).

Non-conflicting concurrent pairs are simply *both kept*: the engine's
verdict is precisely the proof that their relative order cannot be
observed, so the canonical replay order is as good as any other.  That
is the paper's detection procedure doing real work inside a replication
loop — every pair the index or the PTIME deciders discharge is a pair
no resolver (and no human) ever has to look at.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro import obs
from repro.conflicts.semantics import ConflictKind, Verdict
from repro.errors import ReplicationError
from repro.obs.metrics import MetricsRegistry
from repro.operations.ops import Read, UpdateOp
from repro.replication.backends import DecisionBackend, InProcessBackend
from repro.replication.log import (
    Decision,
    LoggedOp,
    PairKey,
    concurrent,
    logged_op_from,
    merge_decisions,
    pair_key,
)
from repro.replication.resolvers import (
    ConflictPair,
    Resolver,
    resolver_by_name,
    resolver_name,
)
from repro.service.protocol import op_from_spec, op_to_spec
from repro.xml.isomorphism import canonical_form
from repro.xml.parser import parse as parse_xml
from repro.xml.tree import XMLTree

__all__ = ["Replica", "SyncReport", "ReplicationSession"]

#: Resolution outcomes a sync can record (metric label values).
_OUTCOMES = ("local", "remote", "merged", "unresolved")


@dataclass
class Replica:
    """One replica: a stamped op log, known decisions, and the rebuilt tree."""

    rid: int
    tree: XMLTree
    ops: dict[str, LoggedOp] = field(default_factory=dict)
    decisions: dict[PairKey, Decision] = field(default_factory=dict)
    lamport: int = 0
    seq: int = 0
    down: bool = False

    def vector_clock(self) -> dict[int, int]:
        """Per-origin max sequence number over the known ops."""
        vc: dict[int, int] = {}
        for op in self.ops.values():
            if op.origin >= 0 and op.seq > vc.get(op.origin, 0):
                vc[op.origin] = op.seq
        return vc

    def dropped_ids(self) -> set[str]:
        out: set[str] = set()
        for decision in self.decisions.values():
            out.update(decision.dropped)
        return out

    def live_ops(self) -> list[LoggedOp]:
        """Surviving ops in canonical replay order."""
        dropped = self.dropped_ids()
        live = [op for op in self.ops.values() if op.op_id not in dropped]
        live.sort(key=lambda op: op.sort_key)
        return live


@dataclass
class SyncReport:
    """What one pairwise sync did (or why it was skipped)."""

    a: int
    b: int
    skipped: str | None = None
    ops_to_a: int = 0
    ops_to_b: int = 0
    pairs_classified: int = 0
    pairs_conflicting: int = 0
    resolutions: dict[str, int] = field(default_factory=dict)
    new_decisions: list[Decision] = field(default_factory=list)
    duration_ms: float = 0.0


class ReplicationSession:
    """N replicas of one document under a shared resolver and backend.

    Args:
        replicas: replica count (ids ``0 .. replicas-1``).
        doc: the base document — XML text or an :class:`XMLTree`.
        resolver: a built-in name (``"local-wins"``, ``"remote-wins"``,
            ``"last-writer-wins"``) or any callable honoring the
            :mod:`repro.replication.resolvers` contract.
        backend: a :class:`~repro.replication.backends.DecisionBackend`;
            defaults to a fresh :class:`InProcessBackend`.
        registry: metrics registry to record into (private when ``None``);
            see ``docs/REPLICATION.md`` for the emitted series.
        unknown_policy: what to do with pairs the engine could not
            certify either way.  The paper's update/update procedure is
            asymmetric — it *certifies* conflicts (by exhibiting a
            commutativity witness) but can never certify their absence —
            so ``UNKNOWN`` means "no demonstrated order-dependence within
            budget".  ``"keep"`` (default) applies both operations in
            canonical stamp order, which is deterministic and convergent;
            ``"conflict"`` routes every unproven pair through the
            resolver too, trading kept edits for strictness.
    """

    def __init__(
        self,
        replicas: int,
        doc: "str | XMLTree",
        *,
        resolver: "str | Resolver" = "last-writer-wins",
        backend: DecisionBackend | None = None,
        registry: MetricsRegistry | None = None,
        unknown_policy: str = "keep",
    ) -> None:
        if replicas < 1:
            raise ReplicationError("a session needs at least one replica")
        if unknown_policy not in ("keep", "conflict"):
            raise ReplicationError(
                f"unknown_policy must be 'keep' or 'conflict', "
                f"got {unknown_policy!r}"
            )
        self.unknown_policy = unknown_policy
        self._base = parse_xml(doc) if isinstance(doc, str) else doc.copy()
        self._resolver_spec = resolver
        self._resolver = resolver_by_name(resolver)
        self.backend = backend if backend is not None else InProcessBackend()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.replicas = [
            Replica(rid=rid, tree=self._base.copy()) for rid in range(replicas)
        ]
        self._groups: list[set[int]] | None = None
        self._verdicts: dict[PairKey, Verdict] = {}
        self.sync_history: list[SyncReport] = []

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------

    def edit(self, replica: int, op: "UpdateOp | dict") -> LoggedOp:
        """Author an update at ``replica`` and apply it locally."""
        rep = self._replica(replica)
        if rep.down:
            raise ReplicationError(f"replica {replica} is down (crashed)")
        if isinstance(op, dict):
            op = op_from_spec(op)
        if isinstance(op, Read) or not isinstance(op, UpdateOp):
            raise ReplicationError(
                "only insert/delete operations mutate a replica; "
                f"got {type(op).__name__}"
            )
        rep.lamport += 1
        rep.seq += 1
        vc = rep.vector_clock()
        vc[rep.rid] = rep.seq
        logged = logged_op_from(
            op, origin=rep.rid, seq=rep.seq, lamport=rep.lamport, vc=vc
        )
        rep.ops[logged.op_id] = logged
        logged.op.apply_in_place(rep.tree)
        self.registry.inc("replication.ops_edited")
        return logged

    # ------------------------------------------------------------------
    # Topology control
    # ------------------------------------------------------------------

    def partition(self, groups: "list[list[int]]") -> None:
        """Split the network: syncs only succeed within one group.

        Replicas not named in any group become singleton groups.
        """
        seen: set[int] = set()
        parsed: list[set[int]] = []
        for group in groups:
            members = set()
            for rid in group:
                self._replica(rid)
                if rid in seen:
                    raise ReplicationError(
                        f"replica {rid} appears in two partition groups"
                    )
                seen.add(rid)
                members.add(rid)
            if members:
                parsed.append(members)
        for rid in range(len(self.replicas)):
            if rid not in seen:
                parsed.append({rid})
        self._groups = parsed

    def heal(self) -> None:
        """Remove any partition; every pair may sync again."""
        self._groups = None

    def crash(self, replica: int) -> None:
        """Take a replica offline: it cannot edit and all its syncs skip.

        The log is durable — recovery loses nothing; what the replica
        missed while down arrives through ordinary syncs afterwards.
        """
        self._replica(replica).down = True

    def recover(self, replica: int) -> None:
        """Bring a crashed replica back online."""
        self._replica(replica).down = False

    def reachable(self, a: int, b: int) -> str | None:
        """``None`` when ``a`` and ``b`` may sync, else the reason not."""
        rep_a, rep_b = self._replica(a), self._replica(b)
        if a == b:
            return "self"
        if rep_a.down or rep_b.down:
            return "down"
        if self._groups is not None:
            for group in self._groups:
                if a in group:
                    return None if b in group else "partitioned"
        return None

    # ------------------------------------------------------------------
    # Sync
    # ------------------------------------------------------------------

    def sync(self, a: int, b: int) -> SyncReport:
        """One bidirectional sync round between replicas ``a`` and ``b``.

        ``a`` is the initiator: for every conflicting pair first
        classified in this round, ``a``'s op is the resolver's *local*
        side — the couchbase pull-replicator convention.
        """
        reason = self.reachable(a, b)
        if reason is not None:
            self.registry.inc("replication.syncs_skipped", reason=reason)
            report = SyncReport(a=a, b=b, skipped=reason)
            self.sync_history.append(report)
            return report
        start = time.perf_counter()
        rep_a, rep_b = self._replica(a), self._replica(b)
        with obs.span("replication.sync", a=a, b=b):
            report = self._sync_live(rep_a, rep_b)
        report.duration_ms = (time.perf_counter() - start) * 1000.0
        self.registry.inc("replication.syncs_total")
        self.registry.observe("replication.sync_ms", report.duration_ms)
        self.sync_history.append(report)
        return report

    def _sync_live(self, rep_a: Replica, rep_b: Replica) -> SyncReport:
        report = SyncReport(a=rep_a.rid, b=rep_b.rid)
        only_a = [op for key, op in rep_a.ops.items() if key not in rep_b.ops]
        only_b = [op for key, op in rep_b.ops.items() if key not in rep_a.ops]
        only_a.sort(key=lambda op: op.op_id)
        only_b.sort(key=lambda op: op.op_id)
        report.ops_to_a, report.ops_to_b = len(only_b), len(only_a)

        # Newly co-present pairs are exactly only_a x only_b: any other
        # pair already met inside one replica's log during an earlier
        # sync (or is causally ordered with a local edit).
        fresh = [
            (x, y) for x in only_a for y in only_b if concurrent(x, y)
        ]
        known = {key: None for key in rep_a.decisions}
        known.update(dict.fromkeys(rep_b.decisions))
        need = [
            (x, y)
            for x, y in fresh
            if pair_key(x, y) not in self._verdicts
        ]
        if need:
            self._verdicts.update(self.backend.classify(need))
        report.pairs_classified = len(fresh)
        self.registry.inc("replication.pairs_classified", len(fresh))

        new_decisions: list[Decision] = []
        for x, y in sorted(fresh, key=lambda pair: pair_key(*pair)):
            verdict = self._verdicts[pair_key(x, y)]
            if verdict is Verdict.NO_CONFLICT:
                continue
            if verdict is Verdict.UNKNOWN and self.unknown_policy == "keep":
                self.registry.inc("replication.pairs_unproven")
                continue
            report.pairs_conflicting += 1
            self.registry.inc(
                "replication.pairs_conflicting", verdict=verdict.value
            )
            if pair_key(x, y) in known:
                continue  # an earlier sync already ruled on this pair
            decision = self._resolve(x, y, verdict, rep_a, rep_b)
            new_decisions.append(decision)
            known[decision.pair] = None
            outcome = decision.outcome
            report.resolutions[outcome] = report.resolutions.get(outcome, 0) + 1
            self.registry.inc("replication.resolutions", outcome=outcome)

        # Union logs, then decisions (deterministic per-pair tiebreak).
        for op in only_b:
            rep_a.ops[op.op_id] = op
        for op in only_a:
            rep_b.ops[op.op_id] = op
        for decision in new_decisions:
            rep_a.decisions[decision.pair] = merge_decisions(
                rep_a.decisions.get(decision.pair), decision
            )
        all_pairs = set(rep_a.decisions) | set(rep_b.decisions)
        for key in all_pairs:
            merged = merge_decisions(
                rep_a.decisions.get(key),
                rep_b.decisions.get(key, rep_a.decisions.get(key)),
            )
            rep_a.decisions[key] = merged
            rep_b.decisions[key] = merged
            for op in merged.added:
                rep_a.ops.setdefault(op.op_id, op)
                rep_b.ops.setdefault(op.op_id, op)
        report.new_decisions = new_decisions

        clock = max(rep_a.lamport, rep_b.lamport)
        rep_a.lamport = rep_b.lamport = clock
        self._rebuild(rep_a)
        self._rebuild(rep_b)
        return report

    def sync_all(self) -> list[SyncReport]:
        """One full gossip round: every reachable unordered pair, in order."""
        reports = []
        for a in range(len(self.replicas)):
            for b in range(a + 1, len(self.replicas)):
                reports.append(self.sync(a, b))
        return reports

    def quiesce(self, max_rounds: int = 16) -> int:
        """Run full gossip rounds until a round changes nothing.

        Returns the number of rounds that *did* change state, and
        records it as the ``replication.rounds_to_converge`` gauge.
        Raises :class:`ReplicationError` when ``max_rounds`` full rounds
        were not enough (a resolver that keeps minting fresh merge ops
        that conflict again could in principle live-lock; the bound
        makes that loud instead of infinite).
        """
        changed = 0
        for _ in range(max_rounds):
            before = self._fingerprint()
            self.sync_all()
            if self._fingerprint() == before:
                self.registry.set_gauge("replication.rounds_to_converge", changed)
                return changed
            changed += 1
        raise ReplicationError(
            f"session did not quiesce within {max_rounds} full sync rounds"
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def tree(self, replica: int) -> XMLTree:
        """An independent copy of a replica's current tree."""
        return self._replica(replica).tree.copy()

    def canonical_forms(self) -> dict[int, str]:
        """Canonical form of every *live* replica's tree."""
        return {
            rep.rid: canonical_form(rep.tree)
            for rep in self.replicas
            if not rep.down
        }

    def converged(self) -> bool:
        """Are all live replicas pairwise isomorphic?"""
        return len(set(self.canonical_forms().values())) <= 1

    def unresolved(self) -> list[Decision]:
        """Every pair degraded to ``unresolved``, across all replicas."""
        seen: dict[PairKey, Decision] = {}
        for rep in self.replicas:
            for key, decision in rep.decisions.items():
                if decision.outcome == "unresolved":
                    seen[key] = decision
        return [seen[key] for key in sorted(seen)]

    def lost_updates(self) -> list[tuple[str, int]]:
        """Ops some live replica knows that another live replica lacks.

        Empty after a healed, quiesced session — the "0 lost updates"
        property the CI smoke asserts.  (Ops *dropped by a decision* are
        not lost: the decision that drops them is itself replicated and
        auditable.)
        """
        live = [rep for rep in self.replicas if not rep.down]
        union: set[str] = set()
        for rep in live:
            union.update(rep.ops)
        missing = [
            (op_id, rep.rid)
            for rep in live
            for op_id in sorted(union)
            if op_id not in rep.ops
        ]
        return sorted(missing)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _replica(self, rid: int) -> Replica:
        if not 0 <= rid < len(self.replicas):
            raise ReplicationError(
                f"no replica {rid} (session has {len(self.replicas)})"
            )
        return self.replicas[rid]

    def _rebuild(self, rep: Replica) -> None:
        """Recompute the tree: replay surviving ops from the base doc."""
        tree = self._base.copy()
        for logged in rep.live_ops():
            logged.op.apply_in_place(tree)
        rep.tree = tree
        self.registry.inc("replication.rebuilds")

    def _fingerprint(self) -> tuple:
        return tuple(
            (
                len(rep.ops),
                tuple(sorted(rep.ops)),
                tuple(
                    (key, rep.decisions[key].outcome, rep.decisions[key].dropped)
                    for key in sorted(rep.decisions)
                ),
                canonical_form(rep.tree),
            )
            for rep in self.replicas
        )

    def _resolve(
        self,
        local: LoggedOp,
        remote: LoggedOp,
        verdict: Verdict,
        rep_local: Replica,
        rep_remote: Replica,
    ) -> Decision:
        name = resolver_name(self._resolver_spec)
        conflict = ConflictPair(
            local=local,
            remote=remote,
            verdict=verdict,
            kind=ConflictKind.VALUE,
            local_replica=rep_local.rid,
            remote_replica=rep_remote.rid,
        )
        key = pair_key(local, remote)
        try:
            choice = self._resolver(conflict)
            return self._normalize_choice(choice, conflict, key, name)
        except ReplicationError:
            raise
        except Exception as exc:  # resolver contract: degrade, never crash
            self.registry.inc("replication.resolver_errors")
            return Decision(
                pair=key,
                outcome="unresolved",
                dropped=(local.op_id, remote.op_id),
                added=(),
                decided_by=rep_local.rid,
                resolver=name,
                note=f"resolver raised {type(exc).__name__}: {exc}",
            )

    def _normalize_choice(
        self, choice, conflict: ConflictPair, key: PairKey, name: str
    ) -> Decision:
        local, remote = conflict.local, conflict.remote
        decided_by = conflict.local_replica
        if choice == "local":
            return Decision(
                pair=key, outcome="local", dropped=(remote.op_id,), added=(),
                decided_by=decided_by, resolver=name,
            )
        if choice == "remote":
            return Decision(
                pair=key, outcome="remote", dropped=(local.op_id,), added=(),
                decided_by=decided_by, resolver=name,
            )
        if choice is None:
            return Decision(
                pair=key, outcome="unresolved",
                dropped=(local.op_id, remote.op_id), added=(),
                decided_by=decided_by, resolver=name,
                note="resolver declined",
            )
        replacements = choice if isinstance(choice, list) else [choice]
        added = tuple(
            self._merge_op(item, index, conflict, key)
            for index, item in enumerate(replacements)
        )
        return Decision(
            pair=key, outcome="merged",
            dropped=(local.op_id, remote.op_id), added=added,
            decided_by=decided_by, resolver=name,
        )

    def _merge_op(
        self, item, index: int, conflict: ConflictPair, key: PairKey
    ) -> LoggedOp:
        """Stamp one resolver-produced replacement operation.

        The stamp is a pure function of the pair, so any replica that
        runs the same merge resolver mints byte-identical replacements —
        a requirement for decision-set union to be convergent.
        """
        if isinstance(item, dict):
            item = op_from_spec(item)
        if isinstance(item, Read) or not isinstance(item, UpdateOp):
            raise TypeError(
                f"merge resolvers must return update operations, "
                f"got {type(item).__name__}"
            )
        local, remote = conflict.local, conflict.remote
        vc: dict[int, int] = local.vc_dict()
        for origin, seq in remote.vc:
            if seq > vc.get(origin, 0):
                vc[origin] = seq
        return LoggedOp(
            op_id=f"m{index}({key[0]},{key[1]})",
            origin=-1,
            seq=0,
            lamport=max(local.lamport, remote.lamport),
            vc=tuple(sorted(vc.items())),
            spec=op_to_spec(item),
        )
