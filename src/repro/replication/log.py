"""The replicated update log: stamped operations and resolution records.

A replica's durable state is *not* its tree — it is the set of update
operations it knows about plus the set of conflict-resolution decisions
it knows about.  The tree is a deterministic function of those two sets
(replay the surviving operations in canonical stamp order from the base
document), which is what makes convergence a set-union property: two
replicas that know the same operations and the same decisions *are* the
same replica.  This mirrors u1db's sync model (state = document + known
revisions, exchanged as deltas) rather than couchbase's revision trees,
because the paper's operations are cheap to replay and replaying sidesteps
undo entirely.

Stamps are Lamport clocks extended with the originating replica id and a
per-origin sequence number, so the canonical replay order
``(lamport, op_id)`` is a total order that respects causality.  Each
operation additionally carries the vector clock of its origin at creation
time; two operations are *concurrent* — and therefore candidates for
conflict classification — exactly when neither vector clock dominates the
other.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.operations.ops import UpdateOp
from repro.service.protocol import op_from_spec, op_to_spec

__all__ = [
    "LoggedOp",
    "Decision",
    "PairKey",
    "pair_key",
    "concurrent",
    "logged_op_from",
    "merge_decisions",
]

#: Canonical identity of an unordered operation pair: the two op ids, sorted.
PairKey = tuple[str, str]


@dataclass(frozen=True)
class LoggedOp:
    """One update operation as recorded in a replica's log.

    Attributes:
        op_id: globally unique id — ``"r<origin>.<seq>"`` for edits,
            ``"m(<id>,<id>)"`` for resolver-produced merge replacements.
        origin: id of the replica that created the operation (``-1`` for
            merge replacements, which no single replica authored).
        seq: per-origin sequence number (``0`` for merge replacements).
        lamport: Lamport timestamp at creation; the primary replay key.
        vc: the origin's vector clock at creation, as sorted
            ``(origin, max_seq)`` pairs — the causal context used to
            decide concurrency.
        spec: the operation's canonical JSON spec (the same wire form the
            service protocol uses), which doubles as the op's identity
            for caching and transport.
    """

    op_id: str
    origin: int
    seq: int
    lamport: int
    vc: tuple[tuple[int, int], ...]
    spec: dict = field(hash=False)

    @cached_property
    def op(self) -> UpdateOp:
        """The live operation object (parsed once per process)."""
        built = op_from_spec(self.spec)
        if not isinstance(built, UpdateOp):
            raise TypeError(f"logged op {self.op_id} is not an update: {self.spec}")
        return built

    @property
    def kind(self) -> str:
        """``"insert"`` or ``"delete"``."""
        return str(self.spec["op"])

    @property
    def stamp(self) -> tuple[int, int, int]:
        """The last-writer-wins total order: ``(lamport, origin, seq)``."""
        return (self.lamport, self.origin, self.seq)

    @property
    def sort_key(self) -> tuple[int, str]:
        """Canonical replay order (respects causality via the Lamport clock)."""
        return (self.lamport, self.op_id)

    def vc_dict(self) -> dict[int, int]:
        return dict(self.vc)

    def knows(self, other: "LoggedOp") -> bool:
        """Did this op's origin know ``other`` when this op was created?

        For an authored op that is a vector-clock lookup; for a merge
        replacement (which carries the pointwise-max clock of its pair)
        it is vector-clock dominance.
        """
        mine = self.vc_dict()
        if other.origin >= 0:
            return mine.get(other.origin, 0) >= other.seq
        return all(mine.get(origin, 0) >= seq for origin, seq in other.vc)

    def to_dict(self) -> dict:
        """JSON form (scenario replay artifacts, ``--json`` output)."""
        return {
            "op_id": self.op_id,
            "origin": self.origin,
            "seq": self.seq,
            "lamport": self.lamport,
            "vc": [list(pair) for pair in self.vc],
            "spec": dict(self.spec),
        }


def logged_op_from(
    op: UpdateOp, *, origin: int, seq: int, lamport: int, vc: dict[int, int]
) -> LoggedOp:
    """Stamp a freshly authored update into its log record."""
    return LoggedOp(
        op_id=f"r{origin}.{seq}",
        origin=origin,
        seq=seq,
        lamport=lamport,
        vc=tuple(sorted(vc.items())),
        spec=op_to_spec(op),
    )


def pair_key(a: LoggedOp | str, b: LoggedOp | str) -> PairKey:
    """The unordered pair's canonical key."""
    first = a if isinstance(a, str) else a.op_id
    second = b if isinstance(b, str) else b.op_id
    return (first, second) if first <= second else (second, first)


def concurrent(a: LoggedOp, b: LoggedOp) -> bool:
    """True when neither operation causally precedes the other."""
    if a.op_id == b.op_id:
        return False
    return not a.knows(b) and not b.knows(a)


@dataclass(frozen=True)
class Decision:
    """A resolution record for one conflicting concurrent pair.

    Decisions replicate exactly like operations do: a sync round unions
    the two replicas' decision sets.  When two replicas resolved the
    same pair independently (possible under a partition with an
    asymmetric resolver such as ``local-wins``), the union keeps the
    decision with the smallest ``(decided_by, outcome)`` — an arbitrary
    but *deterministic* tiebreak, so every replica converges on one
    ruling no matter the order decisions arrive in.

    Attributes:
        pair: the conflicting pair's :data:`PairKey`.
        outcome: ``"local"`` / ``"remote"`` (one side kept), ``"merged"``
            (both dropped, replacements added), or ``"unresolved"`` (both
            dropped conservatively — e.g. the resolver raised).
        dropped: op ids this decision removes from replay.
        added: merge-replacement operations this decision introduces;
            they join the regular op log and propagate like any edit.
        decided_by: replica that ran the resolver.
        resolver: resolver name, for the audit trail.
        note: human-readable detail (resolver error text, ...).
    """

    pair: PairKey
    outcome: str
    dropped: tuple[str, ...]
    added: tuple[LoggedOp, ...]
    decided_by: int
    resolver: str
    note: str = ""

    @property
    def merge_rank(self) -> tuple:
        """Deterministic priority when two decisions cover one pair.

        Only the decision's *core* ruling participates: ids outside the
        pair itself (loser replacements that :func:`merge_decisions`
        folds into ``dropped`` as tombstones) are excluded, so a
        decision's rank never changes as it accumulates tombstones —
        that stability is what keeps the union rule convergent.
        """
        return (
            self.decided_by,
            self.outcome,
            tuple(i for i in self.dropped if i in self.pair),
            tuple(op.op_id for op in self.added),
        )

    def to_dict(self) -> dict:
        return {
            "pair": list(self.pair),
            "outcome": self.outcome,
            "dropped": list(self.dropped),
            "added": [op.to_dict() for op in self.added],
            "decided_by": self.decided_by,
            "resolver": self.resolver,
            "note": self.note,
        }


def merge_decisions(mine: Decision | None, theirs: Decision) -> Decision:
    """Union rule for one pair's decisions (see :class:`Decision`).

    The smaller :attr:`Decision.merge_rank` wins.  The losing decision's
    merge-replacement ops — both the ones it ``added`` and any loser
    replacements it had itself already buried — are folded into the
    winner's ``dropped`` set, because those replacements may already be
    circulating in op logs and must not survive replay once their
    decision loses.  The winner's *own* pair ruling is never touched:
    only ids outside the pair are unioned in, never the two real pair
    ops, so a ``local``-wins ruling stays a ``local``-wins ruling.

    Min-by-(augmentation-stable)-rank plus monotone set-union of loser
    replacements is commutative and associative, so every replica
    reaches the same final decision regardless of arrival order.
    """
    if mine is None:
        return theirs
    winner, loser = (
        (mine, theirs)
        if mine.merge_rank <= theirs.merge_rank
        else (theirs, mine)
    )
    keep = {op.op_id for op in winner.added}
    buried = set(loser.dropped) - set(loser.pair)
    buried.update(op.op_id for op in loser.added)
    buried -= keep
    buried -= set(winner.dropped)
    if not buried:
        return winner
    return replace(winner, dropped=tuple(sorted({*winner.dropped, *buried})))
