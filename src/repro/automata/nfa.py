"""Nondeterministic finite automata over finite label alphabets.

Section 4.1 of the paper decides *weak* and *strong* matching of linear
patterns by building regular expressions from the patterns, intersecting
their languages, and testing emptiness.  This module supplies the automaton
substrate: a small explicit-transition NFA with product construction,
emptiness testing, and shortest-witness extraction (the witness word becomes
the chain tree used in conflict-witness construction).

The alphabet is always finite here.  The paper justifies this (Section 4.1):
an infinite-alphabet witness can be relabeled into ``Σ_l ∪ Σ_{l'}``, because
only wildcard pattern nodes can map to symbols outside that set.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.resilience.budget import checkpoint

__all__ = ["NFA"]


class NFA:
    """An NFA with integer states and explicit per-symbol transitions.

    States are created with :meth:`add_state`; transitions with
    :meth:`add_transition` (one symbol) or :meth:`add_any_transitions`
    (every symbol of the alphabet — the regex ``(.)``).
    """

    def __init__(self, alphabet: Iterable[str]) -> None:
        self.alphabet: tuple[str, ...] = tuple(sorted(set(alphabet)))
        if not self.alphabet:
            raise ValueError("NFA alphabet must be non-empty")
        self._transitions: list[dict[str, set[int]]] = []
        self.start: int | None = None
        self.accepting: set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_state(self, start: bool = False, accepting: bool = False) -> int:
        """Create a state; optionally mark it start and/or accepting."""
        state = len(self._transitions)
        self._transitions.append({})
        if start:
            self.start = state
        if accepting:
            self.accepting.add(state)
        return state

    def add_transition(self, source: int, symbol: str, target: int) -> None:
        """Add ``source --symbol--> target``."""
        if symbol not in self.alphabet:
            raise ValueError(f"symbol {symbol!r} not in alphabet")
        self._transitions[source].setdefault(symbol, set()).add(target)

    def add_any_transitions(self, source: int, target: int) -> None:
        """Add ``source --a--> target`` for every symbol ``a`` (regex ``(.)``)."""
        for symbol in self.alphabet:
            self._transitions[source].setdefault(symbol, set()).add(target)

    @property
    def state_count(self) -> int:
        """Number of states."""
        return len(self._transitions)

    def successors(self, state: int, symbol: str) -> set[int]:
        """States reachable from ``state`` on ``symbol``."""
        return self._transitions[state].get(symbol, set())

    # ------------------------------------------------------------------
    # Runs and decision procedures
    # ------------------------------------------------------------------

    def accepts(self, word: Sequence[str]) -> bool:
        """Standard subset-simulation acceptance test."""
        if self.start is None:
            raise ValueError("NFA has no start state")
        current = {self.start}
        for symbol in word:
            nxt: set[int] = set()
            for state in current:
                nxt |= self.successors(state, symbol)
            current = nxt
            if not current:
                return False
        return bool(current & self.accepting)

    def is_empty(self) -> bool:
        """True when the accepted language is empty (BFS reachability)."""
        return self.shortest_accepted_word() is None

    def shortest_accepted_word(self) -> list[str] | None:
        """The canonical shortest word in the language, or ``None`` when empty.

        BFS over *determinized subsets* with parent pointers, symbols in
        (sorted) alphabet order.  Determinizing makes each reachable
        subset correspond to exactly one word, so states are discovered
        in (length, lexicographic) order and the returned word is the
        (length, lex)-least accepted word — the same canonical witness
        :func:`repro.automata.dfa.joint_shortest_word` and the bitset
        kernel's :func:`repro.automata.bitkernel.joint_shortest_word_bits`
        produce.  (Per-state BFS cannot guarantee this: two states first
        reached by the *same* word may expand their successors in an
        order that inverts lexicographic order.)  The word is what the
        conflict algorithms turn into a witness chain, so canonicality
        here is what makes witnesses byte-identical across kernels and
        cache modes.
        """
        if self.start is None:
            raise ValueError("NFA has no start state")
        start = frozenset({self.start})
        if self.start in self.accepting:
            return []
        parent: dict[frozenset[int], tuple[frozenset[int], str]] = {}
        queue: deque[frozenset[int]] = deque([start])
        seen = {start}
        while queue:
            subset = queue.popleft()
            for symbol in self.alphabet:
                targets: set[int] = set()
                for state in subset:
                    targets |= self.successors(state, symbol)
                if not targets:
                    continue
                frozen = frozenset(targets)
                if frozen in seen:
                    continue
                parent[frozen] = (subset, symbol)
                if targets & self.accepting:
                    word: list[str] = []
                    current = frozen
                    while current in parent:
                        current, sym = parent[current]
                        word.append(sym)
                    word.reverse()
                    return word
                seen.add(frozen)
                queue.append(frozen)
        return None

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def intersect(self, other: "NFA") -> "NFA":
        """Product automaton recognizing ``L(self) ∩ L(other)``.

        The alphabets must agree; the matching layer guarantees this by
        constructing both automata over ``Σ_l ∪ Σ_{l'}``.
        """
        if self.alphabet != other.alphabet:
            raise ValueError("intersection requires identical alphabets")
        if self.start is None or other.start is None:
            raise ValueError("both NFAs need a start state")
        product = NFA(self.alphabet)
        index: dict[tuple[int, int], int] = {}

        def state_for(a: int, b: int) -> int:
            key = (a, b)
            if key not in index:
                index[key] = product.add_state(
                    start=(a == self.start and b == other.start),
                    accepting=(a in self.accepting and b in other.accepting),
                )
            return index[key]

        queue: deque[tuple[int, int]] = deque()
        state_for(self.start, other.start)
        queue.append((self.start, other.start))
        seen = {(self.start, other.start)}
        while queue:
            # Product construction is quadratic in states and is inside
            # the engine's hottest path; a cooperative budget checkpoint
            # per expanded product state keeps pathological intersections
            # abortable (see repro.resilience).
            checkpoint("nfa.intersect")
            a, b = queue.popleft()
            source = state_for(a, b)
            for symbol in self.alphabet:
                for ta in self.successors(a, symbol):
                    for tb in other.successors(b, symbol):
                        target = state_for(ta, tb)
                        product.add_transition(source, symbol, target)
                        if (ta, tb) not in seen:
                            seen.add((ta, tb))
                            queue.append((ta, tb))
        return product

    def with_any_suffix(self) -> "NFA":
        """Automaton for ``L(self)·(.)*`` — used for *weak* matching.

        Adds a fresh accepting sink reachable from every accepting state on
        any symbol, with an any-symbol self-loop.
        """
        clone = NFA(self.alphabet)
        clone._transitions = [
            {symbol: set(targets) for symbol, targets in table.items()}
            for table in self._transitions
        ]
        clone.start = self.start
        clone.accepting = set(self.accepting)
        sink = clone.add_state(accepting=True)
        clone.add_any_transitions(sink, sink)
        for state in list(self.accepting):
            clone.add_any_transitions(state, sink)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NFA(states={self.state_count}, alphabet={len(self.alphabet)}, "
            f"accepting={len(self.accepting)})"
        )
