"""Lazily-determinized view of an NFA (on-demand subset construction).

The matching layer decides weak/strong matching by intersecting two
regular languages (Section 4.1).  The reference implementation builds
the explicit NFA product and BFSes it; this module supplies the compiled
fast path: each linear-pattern NFA is determinized *lazily* — a DFA
state is a frozenset of NFA states, materialized (and cached on the
automaton) only when some query first steps into it — and intersection
emptiness plus shortest-witness extraction run as one joint BFS over
*pairs* of DFA states (:func:`joint_shortest_word`), never materializing
the product automaton.

Determinization is what makes the compile cache pay: a pattern's DFA is
built once per (pattern, alphabet) and every later query against it
walks already-materialized transitions.  The test-suite cross-validates
:meth:`LazyDFA.accepts` against :meth:`repro.automata.nfa.NFA.accepts`
on random linear patterns and words (the NFA-vs-DFA equivalence
property in ``tests/test_differential.py``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.automata.nfa import NFA
from repro.resilience.budget import checkpoint

__all__ = ["LazyDFA", "joint_shortest_word"]

#: Index of the start DFA state (the subset {nfa.start}).
_START = 0


class LazyDFA:
    """A DFA over the same language as ``nfa``, built state-by-state.

    States are small integers; ``None`` stands for the dead state (the
    empty subset), which is cached per (state, symbol) like any other
    transition so repeated dead-end probes cost one dict lookup.
    """

    __slots__ = ("_nfa", "_subsets", "_index", "_transitions", "_accepting")

    def __init__(self, nfa: NFA) -> None:
        if nfa.start is None:
            raise ValueError("cannot determinize an NFA without a start state")
        self._nfa = nfa
        start = frozenset({nfa.start})
        self._subsets: list[frozenset[int]] = [start]
        self._index: dict[frozenset[int], int] = {start: _START}
        self._transitions: list[dict[str, int | None]] = [{}]
        self._accepting: list[bool] = [bool(start & nfa.accepting)]

    @property
    def alphabet(self) -> tuple[str, ...]:
        return self._nfa.alphabet

    @property
    def nfa(self) -> NFA:
        return self._nfa

    @property
    def state_count(self) -> int:
        """DFA states materialized so far (grows as queries explore)."""
        return len(self._subsets)

    @property
    def start(self) -> int:
        return _START

    def is_accepting(self, state: int) -> bool:
        return self._accepting[state]

    def step(self, state: int, symbol: str) -> int | None:
        """The successor DFA state, or ``None`` for the dead state.

        Materializes (and caches) the subset transition on first use.
        """
        table = self._transitions[state]
        try:
            return table[symbol]
        except KeyError:
            pass
        subset: set[int] = set()
        for nfa_state in self._subsets[state]:
            subset |= self._nfa.successors(nfa_state, symbol)
        if not subset:
            table[symbol] = None
            return None
        frozen = frozenset(subset)
        target = self._index.get(frozen)
        if target is None:
            target = len(self._subsets)
            self._index[frozen] = target
            self._subsets.append(frozen)
            self._transitions.append({})
            self._accepting.append(bool(frozen & self._nfa.accepting))
        table[symbol] = target
        return target

    def accepts(self, word: Sequence[str]) -> bool:
        """Deterministic acceptance run (equivalent to the NFA's)."""
        state: int | None = _START
        for symbol in word:
            assert state is not None
            state = self.step(state, symbol)
            if state is None:
                return False
        return self._accepting[state]  # type: ignore[index]


def joint_shortest_word(left: LazyDFA, right: LazyDFA) -> list[str] | None:
    """A shortest word of ``L(left) ∩ L(right)``, or ``None`` when empty.

    BFS over pairs of DFA states with parent pointers — the compiled
    replacement for ``left.intersect(right).shortest_accepted_word()`` on
    explicit NFA products.  Symbols are tried in (sorted) alphabet order,
    so the result is deterministic.  A cooperative budget checkpoint per
    expanded pair keeps pathological products abortable, mirroring the
    eager product construction (see :mod:`repro.resilience`).
    """
    if left.alphabet != right.alphabet:
        raise ValueError("joint traversal requires identical alphabets")
    alphabet = left.alphabet
    start = (left.start, right.start)
    if left.is_accepting(left.start) and right.is_accepting(right.start):
        return []
    parent: dict[tuple[int, int], tuple[tuple[int, int], str]] = {}
    seen = {start}
    queue: deque[tuple[int, int]] = deque([start])
    while queue:
        checkpoint("dfa.product")
        pair = queue.popleft()
        ls, rs = pair
        for symbol in alphabet:
            lt = left.step(ls, symbol)
            if lt is None:
                continue
            rt = right.step(rs, symbol)
            if rt is None:
                continue
            target = (lt, rt)
            if target in seen:
                continue
            parent[target] = (pair, symbol)
            if left.is_accepting(lt) and right.is_accepting(rt):
                word: list[str] = []
                current = target
                while current in parent:
                    current, sym = parent[current]
                    word.append(sym)
                word.reverse()
                return word
            seen.add(target)
            queue.append(target)
    return None
