"""Weak and strong matching of linear patterns (Definition 7 of the paper).

Two linear patterns ``l`` and ``l'`` *match weakly* when some tree admits
embeddings of both such that ``E1(O(l))`` is the same node as, or a
descendant of, ``E2(O(l'))``; they *match strongly* when the output images
can coincide.  Matching is the primitive from which Section 4 builds both
PTIME conflict algorithms: a read-delete conflict is a weak/strong match of
the deletion against a read prefix (Lemma 3), and a read-insert *cut edge*
requires a weak/strong match of the insertion against a read prefix
(Lemma 6).

Because a witness to a match can be taken to be a *chain* (the path from
the root to the deeper output image), matching reduces to non-emptiness of
the intersection of two regular languages over the finite alphabet
``Σ_l ∪ Σ_{l'}``:

* ``r(root) = sym(root)``;
* child edge:       ``r(n) = r(parent) · sym(n)``;
* descendant edge:  ``r(n) = r(parent) · (.)* · sym(n)``;

with ``sym(n)`` the node's label, or ``(.)`` for a wildcard.  Then ``l``
and ``l'`` match **strongly** iff ``L(r_l) ∩ L(r_{l'}) ≠ ∅`` and **weakly**
iff ``L(r_l) ∩ L(r_{l'} · (.)*) ≠ ∅``.  The paper states this equivalence
("the proof is omitted for space"); our test-suite cross-validates it
against an independently written dynamic-programming matcher
(:func:`match_dp`) and against brute-force tree search.

The matching word (shortest element of the intersection) is returned on
request — it is exactly the label sequence of the witness chain that the
conflict algorithms extend into a full conflict witness tree.
"""

from __future__ import annotations

from functools import lru_cache

from repro.automata.nfa import NFA
from repro.obs import enabled as obs_enabled
from repro.obs import global_metrics
from repro.patterns.pattern import WILDCARD, Axis, PNodeId, TreePattern, fresh_label
from repro.resilience.budget import checkpoint

__all__ = [
    "matching_alphabet",
    "linear_pattern_nfa",
    "match_strongly",
    "match_weakly",
    "matching_word",
    "match_dp",
]


def matching_alphabet(left: TreePattern, right: TreePattern) -> tuple[str, ...]:
    """The finite alphabet ``Σ_l ∪ Σ_{l'}`` (plus one spare symbol).

    The spare symbol keeps the alphabet non-empty for all-wildcard patterns
    and gives wildcards a label that collides with neither pattern — both
    facts the paper uses implicitly when restricting ``Σ``.
    """
    labels = left.labels() | right.labels()
    spare = fresh_label(labels)
    return tuple(sorted(labels | {spare}))


def linear_pattern_nfa(pattern: TreePattern, alphabet: tuple[str, ...]) -> NFA:
    """Build the NFA for the regular expression ``R(O(l))`` of a linear pattern.

    The automaton accepts exactly the label sequences of chains
    ``root .. node`` into which the pattern embeds with its output at the
    final node.
    """
    pattern.require_linear("matching operand")
    nfa = NFA(alphabet)
    current = nfa.add_state(start=True)
    spine = pattern.spine()
    for index, pnode in enumerate(spine):
        checkpoint("matching.nfa_build")
        axis = pattern.axis(pnode)
        accepting = index == len(spine) - 1
        target = nfa.add_state(accepting=accepting)
        if axis is Axis.DESCENDANT:
            # (.)* before the node's own symbol: loop state consuming
            # arbitrary symbols, plus the direct (zero-gap) edge.
            loop = nfa.add_state()
            nfa.add_any_transitions(current, loop)
            nfa.add_any_transitions(loop, loop)
            _symbol_transitions(nfa, loop, pattern, pnode, target)
        _symbol_transitions(nfa, current, pattern, pnode, target)
        current = target
    # Per-inner-call instrument: NFA builds run many times per query, so
    # the counters only tick while observability is switched on (see
    # docs/OBSERVABILITY.md, "always-on vs gated instruments").
    if obs_enabled():
        metrics = global_metrics()
        metrics.inc("nfa.built")
        metrics.inc("nfa.states_built", nfa.state_count)
    return nfa


def _symbol_transitions(
    nfa: NFA, source: int, pattern: TreePattern, pnode: PNodeId, target: int
) -> None:
    label = pattern.label(pnode)
    if label == WILDCARD:
        nfa.add_any_transitions(source, target)
    else:
        nfa.add_transition(source, label, target)


def match_strongly(left: TreePattern, right: TreePattern) -> bool:
    """Definition 7: can the two output images coincide on some tree?"""
    return matching_word(left, right, weak=False) is not None


def match_weakly(left: TreePattern, right: TreePattern) -> bool:
    """Definition 7: can ``O(left)`` land on or below ``O(right)``?"""
    return matching_word(left, right, weak=True) is not None


def matching_word(
    left: TreePattern, right: TreePattern, weak: bool
) -> list[str] | None:
    """The shortest witness chain for a (weak or strong) match, or ``None``.

    The returned list is the top-down label sequence of a chain tree ``W``
    such that ``left`` embeds in ``W`` with its output at the final node,
    and ``right`` embeds with its output at the final node (strong) or at
    some node of the chain at or above it (weak).

    Delegates to the process-global :class:`repro.compile.PatternCompiler`,
    which memoizes the intersection product per interned pattern pair (and
    carries the gated ``matching.word`` span).  The pre-compile eager NFA
    product survives as :func:`_matching_word_impl` — the uncached
    reference path used by disabled compilers and the differential tests.
    """
    from repro.compile.compiler import global_compiler

    return global_compiler().matching_word(left, right, weak)


def _matching_word_impl(
    left: TreePattern, right: TreePattern, weak: bool
) -> list[str] | None:
    """Uncached reference: explicit NFAs, eager product, BFS for a word."""
    alphabet = matching_alphabet(left, right)
    left_nfa = linear_pattern_nfa(left, alphabet)
    right_nfa = linear_pattern_nfa(right, alphabet)
    if weak:
        right_nfa = right_nfa.with_any_suffix()
    return left_nfa.intersect(right_nfa).shortest_accepted_word()


def match_dp(left: TreePattern, right: TreePattern, weak: bool) -> bool:
    """Independent dynamic-programming decision of weak/strong matching.

    Ablation/diagnostic twin of :func:`matching_word` that never builds an
    automaton.  State ``(i, j, gl, gr)``: ``i``/``j`` spine positions still
    to be placed for the two patterns, with ``gl``/``gr`` recording whether
    the pending edge into the next node is a descendant edge (a "gap" that
    may absorb extra chain nodes).  The chain is generated lazily symbol by
    symbol; memoization bounds the state space polynomially.
    """
    alphabet = matching_alphabet(left, right)
    left_spine = [
        (left.label(n), left.axis(n) is Axis.DESCENDANT) for n in left.spine()
    ]
    right_spine = [
        (right.label(n), right.axis(n) is Axis.DESCENDANT) for n in right.spine()
    ]

    @lru_cache(maxsize=None)
    def reachable(i: int, j: int, gap_l: bool, gap_r: bool) -> bool:
        """Can we extend the chain so both patterns finish appropriately?

        ``i``/``j`` nodes of each spine remain unplaced; ``gap_l``/``gap_r``
        say whether the next placement may skip chain nodes (descendant
        edge pending).  Both done -> strong success.  Left done only fails
        (left's output would sit above right's).  Right done -> weak asks
        only that left can still finish.
        """
        if i == len(left_spine):
            if j == len(right_spine):
                return True
            return False
        if j == len(right_spine) and weak:
            # Right has finished; any completion of left keeps left's
            # output at or below right's.  Left can always finish (its own
            # pattern is satisfiable on a chain).
            return True
        # Choose the next chain symbol and which spines consume it.
        for symbol in alphabet:
            left_can = i < len(left_spine) and (
                left_spine[i][0] in (WILDCARD, symbol)
            )
            right_can = j < len(right_spine) and (
                right_spine[j][0] in (WILDCARD, symbol)
            )
            # Both consume.
            if left_can and right_can:
                if reachable(
                    i + 1,
                    j + 1,
                    i + 1 < len(left_spine) and left_spine[i + 1][1],
                    j + 1 < len(right_spine) and right_spine[j + 1][1],
                ):
                    return True
            # Only left consumes; right must be in a gap (or already done
            # in weak mode, handled above).
            if left_can and j < len(right_spine) and gap_r:
                if reachable(
                    i + 1,
                    j,
                    i + 1 < len(left_spine) and left_spine[i + 1][1],
                    True,
                ):
                    return True
            # Only right consumes; left must be in a gap.
            if right_can and i < len(left_spine) and gap_l:
                if reachable(
                    i,
                    j + 1,
                    True,
                    j + 1 < len(right_spine) and right_spine[j + 1][1],
                ):
                    return True
        return False

    left.require_linear("matching operand")
    right.require_linear("matching operand")
    return reachable(0, 0, False, False)
