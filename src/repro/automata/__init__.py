"""Finite-automaton substrate and linear-pattern matching (Definition 7).

Two interchangeable kernels answer the matching questions: the
dict-of-sets reference (:mod:`repro.automata.nfa`/:mod:`~repro.automata.dfa`)
and the bit-parallel fast path (:mod:`repro.automata.bitkernel`), selected
by ``DetectorConfig.kernel`` and held to byte-identical answers by the
kernel-differential test battery.
"""

from repro.automata.bitkernel import (
    BitsetAutomaton,
    MaskTable,
    bitset_matching_profile,
    intersection_nonempty,
    joint_shortest_word_bits,
    match_bits,
    matching_word_bits,
    spine_spec,
)
from repro.automata.dfa import LazyDFA, joint_shortest_word
from repro.automata.matching import (
    linear_pattern_nfa,
    match_dp,
    match_strongly,
    match_weakly,
    matching_alphabet,
    matching_word,
)
from repro.automata.nfa import NFA

__all__ = [
    "NFA",
    "LazyDFA",
    "MaskTable",
    "BitsetAutomaton",
    "joint_shortest_word",
    "joint_shortest_word_bits",
    "intersection_nonempty",
    "bitset_matching_profile",
    "spine_spec",
    "linear_pattern_nfa",
    "matching_alphabet",
    "matching_word",
    "matching_word_bits",
    "match_bits",
    "match_strongly",
    "match_weakly",
    "match_dp",
]
