"""Finite-automaton substrate and linear-pattern matching (Definition 7)."""

from repro.automata.dfa import LazyDFA, joint_shortest_word
from repro.automata.matching import (
    linear_pattern_nfa,
    match_dp,
    match_strongly,
    match_weakly,
    matching_alphabet,
    matching_word,
)
from repro.automata.nfa import NFA

__all__ = [
    "NFA",
    "LazyDFA",
    "joint_shortest_word",
    "linear_pattern_nfa",
    "matching_alphabet",
    "matching_word",
    "match_strongly",
    "match_weakly",
    "match_dp",
]
