"""Bit-parallel automata kernel for the per-pair decision hot path.

The PTIME deciders of Section 4 bottom out in three regular-language
questions over small alphabets — product emptiness, language-intersection
reachability, and joint-shortest-word — answered by the dict-of-sets
machinery in :mod:`repro.automata.nfa`/:mod:`repro.automata.dfa`.  This
module re-represents NFA state sets as machine integers: state ``i`` is
bit ``1 << i``, a subset is one arbitrary-precision ``int``, a
nondeterministic step is an OR of per-state target masks, and subset
union/intersection are single ``|``/``&`` operations.  Python ints are
unbounded, so automata spanning 64-bit word boundaries (63/64/65 states)
need no special casing — the word-boundary tests in
``tests/test_bitkernel.py`` pin this down.

Because a linear pattern's matching NFA (:func:`linear_pattern_nfa`) has
transitions that are either *any-symbol* (wildcards, descendant-gap
loops) or labeled by one fixed symbol, its transition relation is
**alphabet independent**: a :class:`MaskTable` stores one ``any_rows``
vector plus sparse per-label rows, and the row for a concrete symbol is
``any_rows[i] | label_rows[symbol].get(i, 0)``.  Tables are therefore
precomputed once per pattern at compile time (the ``compile.bitmask``
artifact family of :class:`repro.compile.PatternCompiler`), shipped to
fork *and* spawn pool workers through :class:`CompiledArtifact` payloads
(:meth:`MaskTable.to_payload` round-trips through pickle and JSON alike),
and reused across every alphabet a pattern pair induces.

The three decision loops mirror their set-based counterparts exactly:

* :func:`joint_shortest_word_bits` is the bitset twin of
  :func:`repro.automata.dfa.joint_shortest_word` — BFS over pairs of
  determinized subsets in sorted-alphabet order with parent pointers, so
  it returns the *same* (length, lexicographically) least witness word
  and the conflict algorithms produce byte-identical witnesses;
* :func:`intersection_nonempty` is the decision-only form (no parent
  tracking, symbol classes collapsed) used where only a verdict is
  needed;
* :func:`bitset_matching_profile` packs the ``(i, j)`` reachability DP of
  :func:`repro.conflicts.linear_dp.matching_profile` into one integer and
  advances whole frontiers per shift instead of one state per queue pop.

Every loop keeps a cooperative budget checkpoint
(:func:`repro.resilience.budget.checkpoint`), so armed deadlines and step
limits degrade decisions to ``UNKNOWN`` exactly as on the sets kernel.
The sets kernel survives as the reference oracle behind
``DetectorConfig(kernel="sets")``; the kernel-differential battery
(``tests/test_bitkernel.py`` and the 3-way pass in
``tests/test_differential.py``) holds the two to byte-identical verdicts,
witnesses, and discharge reasons.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.patterns.pattern import WILDCARD, Axis, TreePattern, fresh_label
from repro.resilience.budget import checkpoint

__all__ = [
    "MaskTable",
    "BitsetAutomaton",
    "spine_spec",
    "joint_shortest_word_bits",
    "intersection_nonempty",
    "bitset_matching_profile",
    "matching_word_bits",
    "match_bits",
]

#: Spine spec entry: ``(label_or_wildcard, incoming_edge_is_descendant)``.
SpineSpec = tuple[tuple[str, bool], ...]


def spine_spec(pattern: TreePattern) -> SpineSpec:
    """The linear pattern's spine as ``(label, is_descendant)`` pairs.

    This is the only view of a pattern the kernel needs — the same
    projection :func:`repro.conflicts.linear_dp.matching_profile` and
    :func:`repro.automata.matching.match_dp` work from.
    """
    pattern.require_linear("bitset kernel operand")
    return tuple(
        (pattern.label(node), pattern.axis(node) is Axis.DESCENDANT)
        for node in pattern.spine()
    )


class MaskTable:
    """Alphabet-independent bitmask transition tables of one matching NFA.

    State ``i`` owns bit ``1 << i``.  ``any_rows[i]`` is the target mask
    of state ``i`` under *every* symbol (wildcard and descendant-gap
    edges); ``label_rows[label][i]`` adds the targets reached from ``i``
    on that specific label.  The full row for a concrete symbol is the OR
    of the two, so one table serves every alphabet.
    """

    def __init__(
        self,
        size: int,
        start: int,
        accepting: int,
        any_rows: Sequence[int],
        label_rows: dict[str, dict[int, int]],
    ) -> None:
        self.size = size
        self.start = start
        self.accepting = accepting
        self.any_rows = tuple(any_rows)
        self.label_rows = {
            label: dict(rows) for label, rows in label_rows.items()
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_pattern(cls, pattern: TreePattern) -> "MaskTable":
        """The table of :func:`linear_pattern_nfa`, built without the NFA.

        State numbering mirrors the NFA builder exactly (target before
        the optional descendant-loop state), so ``from_pattern(p)`` and
        ``from_nfa(linear_pattern_nfa(p, alphabet))`` agree on every
        symbol of every alphabet — a pinned test property.
        """
        pattern.require_linear("bitset kernel operand")
        any_rows: list[int] = [0]
        label_rows: dict[str, dict[int, int]] = {}

        def add_state() -> int:
            any_rows.append(0)
            return len(any_rows) - 1

        def add_edge(source: int, label: str, target: int) -> None:
            if label == WILDCARD:
                any_rows[source] |= 1 << target
            else:
                rows = label_rows.setdefault(label, {})
                rows[source] = rows.get(source, 0) | (1 << target)

        current = 0
        accepting = 0
        spine = pattern.spine()
        for index, pnode in enumerate(spine):
            checkpoint("bitkernel.mask_build")
            label = pattern.label(pnode)
            target = add_state()
            if index == len(spine) - 1:
                accepting |= 1 << target
            if pattern.axis(pnode) is Axis.DESCENDANT:
                loop = add_state()
                any_rows[current] |= 1 << loop
                any_rows[loop] |= 1 << loop
                add_edge(loop, label, target)
            add_edge(current, label, target)
            current = target
        return cls(len(any_rows), 0, accepting, any_rows, label_rows)

    @classmethod
    def from_nfa(cls, nfa) -> "MaskTable":  # type: ignore[no-untyped-def]
        """The table of an explicit :class:`repro.automata.nfa.NFA`.

        No any-row compression is attempted — every transition lands in a
        per-label row.  Used by the differential battery to compare the
        bitset step against the set step on *arbitrary* automata, not
        just pattern-shaped ones.
        """
        if nfa.start is None:
            raise ValueError("cannot build masks for an NFA without a start")
        any_rows = [0] * nfa.state_count
        label_rows: dict[str, dict[int, int]] = {}
        for state in range(nfa.state_count):
            for symbol in nfa.alphabet:
                targets = nfa.successors(state, symbol)
                if not targets:
                    continue
                mask = 0
                for target in targets:
                    mask |= 1 << target
                rows = label_rows.setdefault(symbol, {})
                rows[state] = rows.get(state, 0) | mask
        accepting = 0
        for state in nfa.accepting:
            accepting |= 1 << state
        return cls(nfa.state_count, nfa.start, accepting, any_rows, label_rows)

    def with_any_suffix(self) -> "MaskTable":
        """The table for ``L(self)·(.)*`` — Definition 7's weak side.

        Mirrors :meth:`NFA.with_any_suffix`: a fresh accepting sink with
        an any-symbol self-loop, reachable from every accepting state on
        any symbol.
        """
        sink = self.size
        any_rows = list(self.any_rows) + [1 << sink]
        acc = self.accepting
        while acc:
            low = acc & -acc
            any_rows[low.bit_length() - 1] |= 1 << sink
            acc ^= low
        return MaskTable(
            self.size + 1,
            self.start,
            self.accepting | (1 << sink),
            any_rows,
            self.label_rows,
        )

    # ------------------------------------------------------------------
    # Rows and transport
    # ------------------------------------------------------------------

    def rows(self, symbol: str) -> tuple[int, ...]:
        """The per-state target masks under one concrete symbol."""
        labeled = self.label_rows.get(symbol)
        if not labeled:
            return self.any_rows
        return tuple(
            base | labeled.get(state, 0)
            for state, base in enumerate(self.any_rows)
        )

    def to_payload(self) -> tuple:
        """A nested-tuple transport (pickles small, JSON-encodes cleanly)."""
        return (
            self.size,
            self.start,
            self.accepting,
            tuple(self.any_rows),
            tuple(
                (label, tuple(sorted(rows.items())))
                for label, rows in sorted(self.label_rows.items())
            ),
        )

    @classmethod
    def from_payload(cls, payload: Sequence) -> "MaskTable":
        """Rebuild a table shipped through :meth:`to_payload`."""
        size, start, accepting, any_rows, labeled = payload
        return cls(
            int(size),
            int(start),
            int(accepting),
            tuple(int(row) for row in any_rows),
            {
                label: {int(state): int(mask) for state, mask in rows}
                for label, rows in labeled
            },
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskTable):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __hash__(self) -> int:
        return hash(self.to_payload())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaskTable(size={self.size}, labels={len(self.label_rows)}, "
            f"accepting={bin(self.accepting)})"
        )


class BitsetAutomaton:
    """A :class:`MaskTable` plus memoized subset stepping.

    The working currency is the determinized subset-as-int: ``step``
    ORs the target masks of every set bit and memoizes the result per
    ``(subset, symbol)``, so a compile-cached automaton warms exactly
    like a :class:`repro.automata.dfa.LazyDFA` — repeated queries walk
    already-materialized transitions.
    """

    def __init__(self, table: MaskTable) -> None:
        self.table = table
        self.start_mask = 1 << table.start
        self.accepting = table.accepting
        self._rows: dict[str, tuple[int, ...]] = {}
        self._steps: dict[tuple[int, str], int] = {}

    def rows(self, symbol: str) -> tuple[int, ...]:
        rows = self._rows.get(symbol)
        if rows is None:
            rows = self.table.rows(symbol)
            self._rows[symbol] = rows
        return rows

    def step(self, subset: int, symbol: str) -> int:
        """The successor subset (``0`` is the dead state)."""
        key = (subset, symbol)
        cached = self._steps.get(key)
        if cached is not None:
            return cached
        rows = self.rows(symbol)
        nxt = 0
        remaining = subset
        while remaining:
            low = remaining & -remaining
            nxt |= rows[low.bit_length() - 1]
            remaining ^= low
        self._steps[key] = nxt
        return nxt

    def accepts(self, word: Sequence[str]) -> bool:
        """Subset-simulation acceptance (the NFA-equivalence test hook)."""
        subset = self.start_mask
        for symbol in word:
            subset = self.step(subset, symbol)
            if not subset:
                return False
        return bool(subset & self.accepting)


# ----------------------------------------------------------------------
# The three bitwise decision loops
# ----------------------------------------------------------------------


def joint_shortest_word_bits(
    left: BitsetAutomaton,
    right: BitsetAutomaton,
    alphabet: tuple[str, ...],
) -> list[str] | None:
    """A shortest word of ``L(left) ∩ L(right)``, or ``None`` when empty.

    The bitset twin of :func:`repro.automata.dfa.joint_shortest_word`:
    BFS over pairs of determinized subsets, symbols tried in (sorted)
    alphabet order, parent pointers for reconstruction.  Both BFSs
    discover states in (length, lexicographic) order and stop at the
    first accepting discovery, so they return the *same* word — the
    byte-identical-witness guarantee the kernel-differential suite pins.
    A cooperative budget checkpoint per expanded pair keeps pathological
    products abortable, mirroring the sets kernel.
    """
    shift = right.table.size
    left_start, right_start = left.start_mask, right.start_mask
    if (left_start & left.accepting) and (right_start & right.accepting):
        return []
    parent: dict[int, tuple[int, str]] = {}
    seen = {(left_start << shift) | right_start}
    queue: deque[tuple[int, int]] = deque([(left_start, right_start)])
    while queue:
        checkpoint("bitkernel.product")
        ls, rs = queue.popleft()
        source = (ls << shift) | rs
        for symbol in alphabet:
            lt = left.step(ls, symbol)
            if not lt:
                continue
            rt = right.step(rs, symbol)
            if not rt:
                continue
            target = (lt << shift) | rt
            if target in seen:
                continue
            parent[target] = (source, symbol)
            if (lt & left.accepting) and (rt & right.accepting):
                word: list[str] = []
                current = target
                while current in parent:
                    current, sym = parent[current]
                    word.append(sym)
                word.reverse()
                return word
            seen.add(target)
            queue.append((lt, rt))
    return None


def intersection_nonempty(
    left: BitsetAutomaton,
    right: BitsetAutomaton,
    alphabet: tuple[str, ...],
) -> bool:
    """Decision-only product emptiness: ``L(left) ∩ L(right) ≠ ∅``.

    Same reachability frontier as :func:`joint_shortest_word_bits` minus
    parent tracking, and symbols collapsed into row-equivalence classes
    first (two symbols with identical rows on both sides step every pair
    identically, so only one representative is explored — the spare
    alphabet symbol always collapses into the wildcard class).
    """
    left_start, right_start = left.start_mask, right.start_mask
    if (left_start & left.accepting) and (right_start & right.accepting):
        return True
    classes: dict[tuple[tuple[int, ...], tuple[int, ...]], str] = {}
    for symbol in alphabet:
        classes.setdefault((left.rows(symbol), right.rows(symbol)), symbol)
    symbols = tuple(classes.values())
    shift = right.table.size
    seen = {(left_start << shift) | right_start}
    queue: deque[tuple[int, int]] = deque([(left_start, right_start)])
    while queue:
        checkpoint("bitkernel.product")
        ls, rs = queue.popleft()
        for symbol in symbols:
            lt = left.step(ls, symbol)
            if not lt:
                continue
            rt = right.step(rs, symbol)
            if not rt:
                continue
            if (lt & left.accepting) and (rt & right.accepting):
                return True
            key = (lt << shift) | rt
            if key not in seen:
                seen.add(key)
                queue.append((lt, rt))
    return False


def bitset_matching_profile(
    left: SpineSpec, right: SpineSpec
) -> tuple[set[int], set[int]]:
    """Bit-parallel twin of :func:`repro.conflicts.linear_dp.matching_profile`.

    The DP state ``(i, j)`` — trunk consumed ``i`` spine nodes of a
    hypothetical witness chain, the read consumed ``j`` — becomes bit
    ``i * (n + 1) + j`` of a single integer, and one fixpoint round
    advances the *whole* frontier per symbol class with three shifts
    (both-consume ``<< n + 2``, left-only ``<< n + 1``, right-only
    ``<< 1``) instead of popping states off a queue one at a time.
    Returns the same ``(strong, weak)`` prefix-status sets as the
    reference (pinned by the kernel-differential battery).
    """
    m, n = len(left), len(right)
    width = n + 1

    def bit(i: int, j: int) -> int:
        return 1 << (i * width + j)

    # Whole-row / whole-column masks, built once: ``row[i]`` covers every
    # j at trunk position i, ``col_unit << j`` covers every i at read
    # position j.  Fit and gap vectors below are then O(m + n) ORs of
    # these instead of per-cell bit loops.
    full_row = (1 << width) - 1
    rows = [full_row << (i * width) for i in range(m + 1)]
    col_unit = ((1 << ((m + 1) * width)) - 1) // full_row  # bit j=0, every i

    # Static gap masks: positions whose *pending* edge is a descendant
    # edge may let the other side consume a chain symbol alone.
    left_gap_rows = 0
    for i in range(1, m):
        if left[i][1]:
            left_gap_rows |= rows[i]
    right_gap_cols = 0
    for j in range(1, n):
        if right[j][1]:
            right_gap_cols |= col_unit << j
    last_col = col_unit << n
    last_row = rows[m]

    # One transition-mask triple per symbol *class* — all labels sharing
    # a fit vector on both spines step identically, and the spare symbol
    # of the matching alphabet is exactly the wildcard-only class.
    labels = {spec[0] for spec in left if spec[0] != WILDCARD}
    labels |= {spec[0] for spec in right if spec[0] != WILDCARD}
    classes: dict[tuple[int, int], tuple[int, int, int]] = {}
    for symbol in tuple(sorted(labels)) + (None,):  # None: the spare class
        left_fit = 0  # rows whose next trunk node accepts this symbol
        for i in range(m):
            if left[i][0] == WILDCARD or left[i][0] == symbol:
                left_fit |= rows[i]
        right_fit = 0  # columns whose next read node accepts this symbol
        for j in range(n):
            if right[j][0] == WILDCARD or right[j][0] == symbol:
                right_fit |= col_unit << j
        key = (left_fit, right_fit)
        if key in classes:
            continue
        both = left_fit & right_fit
        left_only = left_fit & (last_col | right_gap_cols)
        right_only = right_fit & (last_row | left_gap_rows)
        classes[key] = (both, left_only, right_only)

    masks = tuple(classes.values())
    reach = bit(0, 0)
    frontier = reach
    while frontier:
        checkpoint("bitkernel.profile")
        advanced = 0
        for both, left_only, right_only in masks:
            advanced |= (frontier & both) << (width + 1)
            advanced |= (frontier & left_only) << width
            advanced |= (frontier & right_only) << 1
        frontier = advanced & ~reach
        reach |= frontier

    strong: set[int] = set()
    final_trunk_row = 0
    for j in range(width):
        final_trunk_row |= bit(m - 1, j)
    for both, _left_only, _right_only in masks:
        hits = reach & both & final_trunk_row
        while hits:
            low = hits & -hits
            strong.add(low.bit_length() - 1 - (m - 1) * width + 1)
            hits ^= low
    weak: set[int] = set(strong)
    unfinished = reach & ~last_row & ~col_unit
    while unfinished:
        low = unfinished & -unfinished
        weak.add((low.bit_length() - 1) % width)
        unfinished ^= low
    return strong, weak


# ----------------------------------------------------------------------
# Pattern-level entry points (the uncached bitset reference path)
# ----------------------------------------------------------------------


def _pattern_alphabet(left: TreePattern, right: TreePattern) -> tuple[str, ...]:
    # Same construction as matching.matching_alphabet (kept dependency-free
    # to avoid an import cycle); identical output is pinned by tests.
    labels = left.labels() | right.labels()
    return tuple(sorted(labels | {fresh_label(labels)}))


def _pattern_automata(
    left: TreePattern, right: TreePattern, weak: bool
) -> tuple[BitsetAutomaton, BitsetAutomaton]:
    left_table = MaskTable.from_pattern(left)
    right_table = MaskTable.from_pattern(right)
    if weak:
        right_table = right_table.with_any_suffix()
    return BitsetAutomaton(left_table), BitsetAutomaton(right_table)


def matching_word_bits(
    left: TreePattern, right: TreePattern, weak: bool
) -> list[str] | None:
    """Uncached bitset reference: fresh mask tables, joint subset BFS.

    Contract of :func:`repro.automata.matching.matching_word` — including
    the exact witness word — without any compile cache.  This is what a
    disabled compiler runs under ``kernel="bitset"``.
    """
    left_auto, right_auto = _pattern_automata(left, right, weak)
    return joint_shortest_word_bits(
        left_auto, right_auto, _pattern_alphabet(left, right)
    )


def match_bits(left: TreePattern, right: TreePattern, weak: bool) -> bool:
    """Decision-only form of :func:`matching_word_bits` (emptiness test)."""
    left_auto, right_auto = _pattern_automata(left, right, weak)
    return intersection_nonempty(
        left_auto, right_auto, _pattern_alphabet(left, right)
    )
