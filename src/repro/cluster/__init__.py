"""Fault-tolerant sharded service tier.

``repro.cluster`` scales the single-process conflict service
(:mod:`repro.service`) out to N supervised shard processes behind one
health-checked, consistent-hash-routing front:

* :class:`~repro.cluster.supervisor.ShardSupervisor` — forks and watches
  the shard processes, restarts crashes with jittered exponential
  backoff, and trips a crash-loop circuit breaker on shards that die on
  arrival;
* :class:`~repro.cluster.hashring.HashRing` — stable request→shard
  placement (warm caches) with a deterministic failover order;
* :class:`~repro.cluster.probes.ShardHealth` /
  :class:`~repro.cluster.probes.HealthProber` — consecutive-failure
  hysteresis fed by both liveness probes and real request outcomes;
* :class:`~repro.cluster.router.ClusterRouter` — the HTTP front: routes,
  fails over in-flight-safe requests, and degrades to machine-readable
  ``UNKNOWN`` (never a 5xx hang) when no shard can take work;
* :class:`~repro.cluster.client.ClusterClient` — a failover-aware
  client with busy retries on by default.

Chaos drills are first-class: the ``REPRO_FAULTS`` rules ``shard_kill``,
``shard_hang``, and ``probe_flap`` (see :mod:`repro.resilience.faults`)
deterministically kill, stall, or flap individual shard incarnations so
the whole supervise→evict→restart→reabsorb loop is testable in CI.
Run a cluster from the CLI with ``repro cluster serve``.
"""

from repro.cluster.client import ClusterClient, is_degraded
from repro.cluster.config import ClusterConfig
from repro.cluster.hashring import HashRing
from repro.cluster.probes import HealthProber, ShardHealth
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ShardSupervisor

__all__ = [
    "ClusterClient",
    "ClusterConfig",
    "ClusterRouter",
    "HashRing",
    "HealthProber",
    "ShardHealth",
    "ShardSupervisor",
    "is_degraded",
]
