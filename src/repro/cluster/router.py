"""The cluster front: consistent-hash routing with health-checked failover.

:class:`ClusterRouter` is the one address clients talk to.  It owns a
:class:`~repro.cluster.supervisor.ShardSupervisor` (the shard processes),
a :class:`~repro.cluster.hashring.HashRing` (placement), per-shard
:class:`~repro.cluster.probes.ShardHealth` machines fed by both the
background prober and real forwarding outcomes, and a small per-shard
connection pool.

**Routing.**  Every decision request gets a *routing key* derived from
its payload — the operand specs for ``/v1/check``, the sorted name/spec
catalogue for ``/v1/matrix``/``/v1/schedule`` — so the same question
always lands on the same shard and that shard's warm compiler and
verdict cache answer it.  The knobs (deadline, budget) are deliberately
left out of the key: the caches ignore them too.

**Failover.**  Decisions are pure functions of their payload, which
makes every request in-flight-safe: if the owning shard's connection
drops mid-request (killed, hung past ``shard_timeout_s``, refused), the
router records the failure against that shard and *re-executes* the
request on the next shard in ring order — verdict-identical by
construction.  429/503 answers fail over too (another shard may have
room) but do not count against health: a shard shedding load is alive.

**Degradation.**  When no shard can take the work, the router answers —
never a 5xx hang: a check degrades to a machine-readable ``unknown``
verdict with reason ``no_live_shard``; a matrix/schedule degrades to the
all-pairs-unknown (= all-serial) conservative answer in the same schema
a shard would have produced.  If every reachable shard was merely busy,
the busiest-truth answer (429 with ``Retry-After``) is relayed instead.

``GET /healthz`` reports the cluster view (per-shard supervision state,
health, generation, restarts); ``GET /metrics`` exposes the router's own
registry (forwards, failovers, degradations, per-shard labels) with the
same JSON/Prometheus content negotiation as a single service.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.cluster.config import ClusterConfig
from repro.cluster.hashring import HashRing
from repro.cluster.probes import HealthProber, ShardHealth
from repro.cluster.supervisor import ShardSupervisor
from repro.errors import ClusterError, ServiceProtocolError, ShardUnavailable
from repro.obs.metrics import MetricsRegistry, global_metrics
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import request_context, span
from repro.service.protocol import mint_request_id, normalize_request_id

__all__ = ["ClusterRouter"]

_POST_ROUTES = ("/v1/check", "/v1/matrix", "/v1/schedule")

#: Reason stamped into responses the router degraded itself.
NO_LIVE_SHARD = "no_live_shard"


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    block_on_close = False

    router: "ClusterRouter"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-cluster/1.0"
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        router = self.server.router
        if self.path == "/healthz":
            self._send_json(200, router.health())
        elif self.path == "/metrics":
            status, body, content_type = router.metrics_response(
                self.headers.get("Accept", "")
            )
            self._send_raw(status, body, content_type)
        elif self.path in _POST_ROUTES:
            self._send_json(405, {"error": f"{self.path} requires POST"})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        router = self.server.router
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            self.close_connection = True
            self._send_json(411, {"error": "Content-Length required"})
            return
        # Always consume the body — an unread body would be parsed as the
        # next request line on this keep-alive connection.
        body = self.rfile.read(length)
        if self.path not in _POST_ROUTES:
            if self.path in ("/healthz", "/metrics"):
                self._send_json(405, {"error": f"{self.path} requires GET"})
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            request_id = normalize_request_id(self.headers.get("X-Request-Id"))
        except ServiceProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        router.begin_request()
        try:
            try:
                status, payload, headers = router.handle(
                    self.path, body, request_id=request_id
                )
            except Exception as exc:  # noqa: BLE001 - never drop the conn
                router.registry.inc("cluster.router_errors_total")
                status = 500
                payload = json.dumps(
                    {"error": f"router failure: {type(exc).__name__}: {exc}"}
                ).encode("utf-8")
                headers = {}
            self._send_raw(
                status, payload, "application/json", extra=headers
            )
        finally:
            router.end_request()

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_raw(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_raw(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(
            self.server.router.config.shard_timeout_s + 30.0
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.router.config.log_requests:
            super().log_message(format, *args)


class ClusterRouter:
    """Supervisor + ring + prober + HTTP front, one lifecycle.

    ::

        router = ClusterRouter(ClusterConfig(shards=3, port=0))
        router.start()                # boots shards, prober, listener
        router.start_background()     # or serve_forever()
        ...
        router.drain()                # in-flight finishes, shards drain
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        supervisor: ShardSupervisor | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.health_by_shard = {
            shard_id: ShardHealth(
                self.config.unhealthy_after, self.config.healthy_after
            )
            for shard_id in range(self.config.shards)
        }
        self.supervisor = (
            supervisor
            if supervisor is not None
            else ShardSupervisor(
                self.config,
                registry=self.registry,
                on_shard_live=self._on_shard_live,
            )
        )
        self.ring = HashRing(
            range(self.config.shards), replicas=self.config.hash_replicas
        )
        self.prober = HealthProber(
            self.supervisor.endpoints,
            self.health_by_shard,
            interval_s=self.config.probe_interval_s,
            timeout_s=self.config.probe_timeout_s,
            registry=self.registry,
            on_transition=self._on_health_transition,
        )
        self._httpd: _RouterHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._pools: dict[int, list] = {}
        self._pool_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._drained = False
        self._draining = False
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._httpd is not None:
            raise ClusterError("cluster router already started")
        self.supervisor.start()
        httpd = _RouterHTTPServer((self.config.host, self.config.port), _Handler)
        httpd.router = self
        self._httpd = httpd
        self.prober.start()

    def serve_forever(self) -> None:
        if self._httpd is None:
            raise ClusterError("call start() before serve_forever()")
        self._httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> threading.Thread:
        if self._httpd is None:
            self.start()
        thread = threading.Thread(
            target=self.serve_forever, name="repro-cluster-accept", daemon=True
        )
        thread.start()
        self._serve_thread = thread
        return thread

    @property
    def host(self) -> str:
        return self._httpd.server_address[0] if self._httpd else self.config.host

    @property
    def port(self) -> int:
        return self._httpd.server_address[1] if self._httpd else self.config.port

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Ordered shutdown losing nothing admitted anywhere.

        New router requests → 503; every in-flight request finishes
        (shards are still up — they are what in-flight requests need);
        then the prober stops, the shards drain gracefully (their own
        admitted work and final snapshots), and the listener closes.
        """
        with self._drain_lock:
            if self._drained:
                return
            self._drained = True
            self._draining = True
            self._await_inflight()
            self.prober.stop()
            self.supervisor.stop(graceful=True)
            if self._httpd is not None:
                self._httpd.shutdown()
                self._httpd.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=5.0)

    def begin_request(self) -> None:
        with self._inflight_cv:
            self._inflight += 1
            self.registry.set_gauge("cluster.inflight", self._inflight)

    def end_request(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            self.registry.set_gauge("cluster.inflight", self._inflight)
            self._inflight_cv.notify_all()

    def _await_inflight(self) -> None:
        with self._inflight_cv:
            self._inflight_cv.wait_for(lambda: self._inflight == 0)

    # ------------------------------------------------------------------
    # Health plumbing
    # ------------------------------------------------------------------

    def _on_shard_live(self, shard_id: int, generation: int) -> None:
        """Supervisor callback: a (re)booted shard starts with clean health."""
        health = self.health_by_shard.get(shard_id)
        if health is not None:
            health.reset()
        self._discard_pool(shard_id)
        self.registry.set_gauge(
            "cluster.shard_healthy", 1, shard=shard_id
        )

    def _on_health_transition(self, shard_id: int, healthy: bool) -> None:
        self.registry.inc(
            "cluster.health_transitions_total",
            shard=shard_id,
            to="healthy" if healthy else "unhealthy",
        )
        self.registry.set_gauge(
            "cluster.shard_healthy", 1 if healthy else 0, shard=shard_id
        )

    def _routable(self, shard_id: int) -> bool:
        health = self.health_by_shard.get(shard_id)
        return (
            health is not None
            and health.healthy
            and shard_id in self.supervisor.endpoints()
        )

    def _note_failure(self, shard_id: int) -> None:
        self.registry.inc("cluster.forward_failures_total", shard=shard_id)
        health = self.health_by_shard.get(shard_id)
        if health is not None and health.record_failure():
            self._on_health_transition(shard_id, False)

    def _note_success(self, shard_id: int) -> None:
        health = self.health_by_shard.get(shard_id)
        if health is not None and health.record_success():
            self._on_health_transition(shard_id, True)

    # ------------------------------------------------------------------
    # Routing core (HTTP-independent; tests call it directly)
    # ------------------------------------------------------------------

    @staticmethod
    def routing_key(route: str, payload: dict) -> str:
        """The placement key for one request (knobs excluded, see module
        docstring)."""
        if route == "/v1/check":
            detail = json.dumps(
                [payload.get("first"), payload.get("second")], sort_keys=True
            )
            return f"check|{detail}"
        ops = payload.get("ops")
        detail = json.dumps(ops, sort_keys=True) if isinstance(ops, dict) else ""
        return f"catalogue|{detail}"

    def handle(
        self,
        route: str,
        body: bytes,
        request_id: str | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """Route one request; returns ``(status, body, extra headers)``."""
        started = time.perf_counter()
        if request_id is None:
            request_id = mint_request_id()
        self.registry.inc("cluster.requests_total", route=route)
        if self._draining:
            return self._json_response(
                503,
                {"error": "cluster is draining", "request_id": request_id},
                request_id,
            )
        try:
            payload = json.loads(body)
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (json.JSONDecodeError, ValueError) as exc:
            return self._json_response(
                400,
                {"error": f"body is not a JSON object: {exc}",
                 "request_id": request_id},
                request_id,
            )
        with request_context(request_id):
            with span("cluster.route", route=route) as sp:
                result = self._route_with_failover(
                    route, body, payload, request_id
                )
                sp.set("status", result[0])
        self.registry.observe(
            "cluster.request_ms",
            (time.perf_counter() - started) * 1000.0,
            route=route,
        )
        return result

    def _route_with_failover(
        self,
        route: str,
        body: bytes,
        payload: dict,
        request_id: str,
    ) -> tuple[int, bytes, dict[str, str]]:
        key = self.routing_key(route, payload)
        order = self.ring.route_order(key)
        busy: tuple[int, bytes, dict[str, str]] | None = None
        attempts = 0
        for position, shard_id in enumerate(order):
            if not self._routable(shard_id):
                continue
            attempts += 1
            try:
                status, data, headers = self._forward(
                    shard_id, route, body, request_id
                )
            except ShardUnavailable:
                self._note_failure(shard_id)
                self.registry.inc(
                    "cluster.failovers_total", shard=shard_id
                )
                continue
            self._note_success(shard_id)
            if status in (429, 503):
                # Alive but shedding; remember the rejection (it carries
                # the server's Retry-After) and try a less-loaded shard.
                self.registry.inc(
                    "cluster.shard_busy_total", shard=shard_id
                )
                busy = (status, data, headers)
                continue
            if position > 0:
                self.registry.inc("cluster.failover_hits_total", route=route)
            return status, data, headers
        if busy is not None:
            return busy
        self.registry.inc("cluster.degraded_total", route=route)
        return self._json_response(
            200, self._degraded_payload(route, payload, request_id), request_id
        )

    def _forward(
        self,
        shard_id: int,
        route: str,
        body: bytes,
        request_id: str,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One shard round-trip; raises :class:`ShardUnavailable` on any
        transport-level failure (refused, dropped mid-flight, hung past
        ``shard_timeout_s``)."""
        endpoint = self.supervisor.endpoints().get(shard_id)
        if endpoint is None:
            raise ShardUnavailable(f"shard {shard_id} has no live endpoint")
        started = time.perf_counter()
        try:
            conn = self._lease(shard_id, endpoint)
        except (OSError, http.client.HTTPException) as exc:
            raise ShardUnavailable(
                f"shard {shard_id} refused a connection: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        try:
            conn.request(
                "POST",
                route,
                body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Request-Id": request_id,
                },
            )
            response = conn.getresponse()
            data = response.read()
        except (OSError, http.client.HTTPException) as exc:
            try:
                conn.close()
            except OSError:
                pass
            raise ShardUnavailable(
                f"shard {shard_id} failed mid-request: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self._release(shard_id, conn)
        self.registry.inc("cluster.forwards_total", shard=shard_id)
        self.registry.observe(
            "cluster.forward_ms",
            (time.perf_counter() - started) * 1000.0,
            shard=shard_id,
        )
        headers: dict[str, str] = {}
        retry_after = response.getheader("Retry-After")
        if retry_after:
            headers["Retry-After"] = retry_after
        echoed = response.getheader("X-Request-Id")
        if echoed:
            headers["X-Request-Id"] = echoed
        return response.status, data, headers

    # -- connection pooling ------------------------------------------------

    def _lease(
        self, shard_id: int, endpoint: tuple[str, int]
    ) -> http.client.HTTPConnection:
        host, port = endpoint
        with self._pool_lock:
            pool = self._pools.get(shard_id)
            while pool:
                conn = pool.pop()
                # Endpoints move across restarts; a pooled connection to
                # the old port must not be reused against the new one.
                if (conn.host, conn.port) == (host, port):
                    return conn
                try:
                    conn.close()
                except OSError:
                    pass
        conn = http.client.HTTPConnection(
            host, port, timeout=self.config.shard_timeout_s
        )
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _release(
        self, shard_id: int, conn: http.client.HTTPConnection
    ) -> None:
        with self._pool_lock:
            pool = self._pools.setdefault(shard_id, [])
            if len(pool) < 8:
                pool.append(conn)
                return
        try:
            conn.close()
        except OSError:
            pass

    def _discard_pool(self, shard_id: int) -> None:
        with self._pool_lock:
            pool = self._pools.pop(shard_id, [])
        for conn in pool:
            try:
                conn.close()
            except OSError:
                pass

    # -- degraded answers --------------------------------------------------

    @staticmethod
    def _degraded_payload(
        route: str, payload: dict, request_id: str
    ) -> dict:
        """The conservative 200 answer when no shard can take the work.

        Machine-readable ``UNKNOWN`` in the same schema a shard would
        have produced: a degraded check is one unknown verdict; a
        degraded matrix is all-pairs-unknown; a degraded schedule is the
        fully serial plan (unknown = may-conflict = nothing runs
        together).  ``degraded`` and ``reason`` are top-level so clients
        need no schema-specific digging to notice.
        """
        base = {
            "request_id": request_id,
            "degraded": True,
            "reason": NO_LIVE_SHARD,
            "notes": ["no shard could take the work; conservative answer"],
        }
        if route == "/v1/check":
            return {
                "command": "check",
                "verdict": "unknown",
                "kind": None,
                "method": "degraded",
                "witness": None,
                "cached": False,
                **base,
            }
        ops = payload.get("ops")
        names = sorted(str(name) for name in ops) if isinstance(ops, dict) else []
        if route == "/v1/matrix":
            verdicts = [
                {
                    "first": first,
                    "second": second,
                    "verdict": "unknown",
                    "reason": NO_LIVE_SHARD,
                    "discharge": "degraded",
                }
                for i, first in enumerate(names)
                for second in names[i:]
            ]
            return {
                "command": "matrix",
                "names": names,
                "verdicts": verdicts,
                "stats": {
                    "operations": len(names),
                    "unknown": len(verdicts),
                    "degraded": len(verdicts),
                },
                "quarantine": [],
                **base,
            }
        return {
            "command": "schedule",
            "batches": [[name] for name in names],
            "quarantine": [],
            "stats": {
                "operations": len(names),
                "batches": len(names),
                "largest_batch": 1 if names else 0,
                "degraded": len(names),
            },
            **base,
        }

    @staticmethod
    def _json_response(
        status: int, payload: dict, request_id: str
    ) -> tuple[int, bytes, dict[str, str]]:
        headers = {"X-Request-Id": request_id}
        if status in (429, 503):
            headers["Retry-After"] = "1"
        return status, json.dumps(payload).encode("utf-8"), headers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The cluster ``/healthz`` view: supervision x routing health."""
        supervision = self.supervisor.snapshot()
        shards = {}
        live = 0
        for shard_id in range(self.config.shards):
            view = supervision.get(shard_id, {"state": "unknown"})
            health = self.health_by_shard.get(shard_id)
            view["healthy"] = bool(health is not None and health.healthy)
            if view.get("state") == "live" and view["healthy"]:
                live += 1
            shards[str(shard_id)] = view
        status = "ok" if live == self.config.shards else (
            "degraded" if live else "down"
        )
        if self._draining:
            status = "draining"
        return {
            "status": status,
            "shards": shards,
            "live": live,
            "total": self.config.shards,
        }

    def metrics_response(self, accept: str) -> tuple[int, bytes, str]:
        """``GET /metrics`` body: router registry over the global one."""
        snapshot = global_metrics().merged_with(self.registry)
        if "text/plain" in accept or "openmetrics" in accept:
            body = render_prometheus(snapshot).encode("utf-8")
            return 200, body, PROMETHEUS_CONTENT_TYPE
        return 200, json.dumps(snapshot).encode("utf-8"), "application/json"
