"""Cluster configuration: one frozen dataclass, mirroring ``repro cluster serve``.

Every knob of the sharded tier lives here — supervisor (restart backoff,
crash-loop circuit breaker), health probing (interval, hysteresis
thresholds), and routing (per-shard timeout, hash-ring replicas) — so
the CLI, tests, benchmarks, and embedded clusters construct identical
deployments from the same value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClusterError

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """The knobs of a :class:`~repro.cluster.router.ClusterRouter` deployment.

    Args:
        host: interface the *router* binds (shards always bind loopback).
        port: router TCP port; ``0`` binds an ephemeral port (read it
            back from :attr:`ClusterRouter.port`).
        shards: number of supervised shard processes.
        workers_per_shard: decision worker threads inside each shard.
        queue_depth: each shard's admission queue depth.
        cache_path: shared verdict-cache base path; every shard derives
            its own ``<path>.shard<N>`` snapshot from it (see
            :meth:`repro.conflicts.batch.VerdictCache.shard_snapshot_path`),
            so no two shards ever write one file.  ``None`` keeps all
            shard caches memory-only.
        snapshot_interval_s: per-shard periodic snapshot interval.
        default_deadline_ms: per-decision deadline each shard applies to
            requests that carry none.
        probe_interval_s: seconds between ``/healthz`` liveness probes
            of each shard.
        probe_timeout_s: per-probe socket timeout.
        unhealthy_after: consecutive probe-or-request failures after
            which a shard stops receiving routed traffic.
        healthy_after: consecutive probe successes after which an
            unhealthy shard rejoins the routing set.
        shard_timeout_s: per-forwarded-request socket timeout; a shard
            that hangs past it is treated as failed for that request and
            the request fails over.
        restart_backoff_base_s: delay before the first restart of a
            crashed shard; doubles per consecutive crash.
        restart_backoff_cap_s: upper bound on the restart delay.
        restart_backoff_jitter: fraction of each restart delay that is
            randomized away (decorrelates simultaneous restarts).
        crash_loop_threshold: crashes within ``crash_loop_window_s``
            that trip the circuit breaker — the supervisor stops
            restarting the shard (state ``open_circuit``) instead of
            burning CPU on a shard that dies on arrival.
        crash_loop_window_s: sliding window for the crash-loop count.
        circuit_reset_s: seconds an open circuit waits before allowing
            one probing restart attempt (half-open).
        boot_timeout_s: how long a shard may take to print its listening
            line before the boot attempt counts as a crash.
        hash_replicas: virtual nodes per shard on the consistent-hash
            ring (more = smoother key distribution).
        log_requests: pass ``--log-requests`` through to the shards.
        shard_env: extra environment variables for shard processes
            (drills use it to hand shards a ``REPRO_FAULTS`` spec
            without arming the router's own process).
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 3
    workers_per_shard: int = 2
    queue_depth: int = 64
    cache_path: str | None = None
    snapshot_interval_s: float = 30.0
    default_deadline_ms: float | None = None
    probe_interval_s: float = 0.5
    probe_timeout_s: float = 2.0
    unhealthy_after: int = 3
    healthy_after: int = 2
    shard_timeout_s: float = 30.0
    restart_backoff_base_s: float = 0.25
    restart_backoff_cap_s: float = 5.0
    restart_backoff_jitter: float = 0.2
    crash_loop_threshold: int = 5
    crash_loop_window_s: float = 30.0
    circuit_reset_s: float = 5.0
    boot_timeout_s: float = 30.0
    hash_replicas: int = 64
    log_requests: bool = False
    shard_env: dict[str, str] | None = field(default=None, hash=False)

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ClusterError(f"port must be in [0, 65535], got {self.port}")
        if self.shards < 1:
            raise ClusterError(f"shards must be >= 1, got {self.shards}")
        if self.workers_per_shard < 1:
            raise ClusterError(
                f"workers_per_shard must be >= 1, got {self.workers_per_shard}"
            )
        if self.unhealthy_after < 1 or self.healthy_after < 1:
            raise ClusterError(
                "unhealthy_after and healthy_after must be >= 1"
            )
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise ClusterError(
                "probe_interval_s and probe_timeout_s must be positive"
            )
        if self.restart_backoff_base_s < 0 or self.restart_backoff_cap_s < 0:
            raise ClusterError("restart backoff delays must be non-negative")
        if not 0.0 <= self.restart_backoff_jitter <= 1.0:
            raise ClusterError(
                "restart_backoff_jitter must be in [0, 1], got "
                f"{self.restart_backoff_jitter}"
            )
        if self.crash_loop_threshold < 1:
            raise ClusterError(
                f"crash_loop_threshold must be >= 1, got "
                f"{self.crash_loop_threshold}"
            )
        if self.hash_replicas < 1:
            raise ClusterError(
                f"hash_replicas must be >= 1, got {self.hash_replicas}"
            )
