"""Consistent hashing: stable request→shard placement under churn.

The router must send the *same* question to the *same* shard whenever it
can — that is what makes each shard's warm compiler and verdict cache
pay off — while a shard joining or leaving must reshuffle only the keys
that have to move (``~1/N`` of the space), not everything.  A classic
consistent-hash ring with virtual nodes does both:

* each shard id is hashed onto the ring at ``replicas`` points (virtual
  nodes smooth the per-shard share of the key space);
* a key routes to the first shard point at-or-after its own hash,
  wrapping around;
* :meth:`HashRing.route_order` walks the ring onward from that point,
  yielding each *distinct* shard once — exactly the failover order the
  router tries when the owner is down, so retries of one key always
  land on the same deterministic shard sequence.

Hashing is SHA-256 (first 8 bytes, big-endian): stable across processes,
platforms, and ``PYTHONHASHSEED``, so a router restart never reshuffles
placement.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ClusterError

__all__ = ["HashRing"]


def _hash(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over integer shard ids (not thread-safe;
    the router mutates it only under its own lock)."""

    def __init__(self, nodes=(), replicas: int = 64) -> None:
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, int]] = []  # (hash, node), sorted
        self._hashes: list[int] = []
        self._nodes: set[int] = set()
        for node in nodes:
            self.add(node)

    def add(self, node: int) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = (_hash(f"shard-{node}-vn{replica}"), node)
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._hashes.insert(index, point[0])

    def remove(self, node: int) -> None:
        """Take ``node`` off the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._hashes = [h for h, _ in self._points]

    def nodes(self) -> set[int]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def route(self, key: str) -> int:
        """The shard owning ``key``."""
        if not self._nodes:
            raise ClusterError("hash ring is empty; no shard can own the key")
        index = bisect.bisect(self._hashes, _hash(key)) % len(self._points)
        return self._points[index][1]

    def route_order(self, key: str) -> list[int]:
        """Every shard, in the order ``key`` should try them.

        The owner first, then each further distinct shard as the ring is
        walked clockwise — the deterministic failover sequence for this
        key.  Empty when the ring is empty.
        """
        if not self._nodes:
            return []
        start = bisect.bisect(self._hashes, _hash(key))
        order: list[int] = []
        seen: set[int] = set()
        total = len(self._points)
        for offset in range(total):
            node = self._points[(start + offset) % total][1]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(seen) == len(self._nodes):
                    break
        return order
