"""Shard health: hysteresis state machines fed by liveness probes.

A shard's routability is decided by one :class:`ShardHealth` per shard —
a pure state machine with hysteresis: ``unhealthy_after`` *consecutive*
failures take a shard out of routing, ``healthy_after`` consecutive
probe successes bring it back.  Both the background ``/healthz`` prober
and the router's forwarding path feed the same machine (the issue's "K
consecutive probe **or** request failures"), so a shard that answers
probes but drops real requests is still evicted.

:class:`HealthProber` is the background thread: every
``probe_interval_s`` it GETs each live shard's ``/healthz`` with a tight
timeout and records the outcome.  The ``probe_flap`` fault rule hooks in
here — a matched probe is *counted as failed* even though the shard
answered, which is how chaos drills exercise the eviction/recovery
hysteresis without harming any real process.  Probe keys are
``shard<N>|probe<K>`` with ``K`` the per-shard probe sequence number, so
a spec like ``probe_flap:1:only=shard1`` flaps every probe of shard 1
deterministically.
"""

from __future__ import annotations

import http.client
import threading
import time
from collections.abc import Callable

from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults

__all__ = ["ShardHealth", "HealthProber"]


class ShardHealth:
    """Consecutive-outcome hysteresis for one shard (thread-safe).

    Starts healthy: a shard enters the routing set when the supervisor
    reports it live, and the first ``unhealthy_after`` failures are what
    take it out.
    """

    def __init__(self, unhealthy_after: int, healthy_after: int) -> None:
        self.unhealthy_after = unhealthy_after
        self.healthy_after = healthy_after
        self._lock = threading.Lock()
        self._healthy = True
        self._failures = 0
        self._successes = 0

    @property
    def healthy(self) -> bool:
        return self._healthy

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def record_failure(self) -> bool:
        """Count one failure; True when this flipped healthy→unhealthy."""
        with self._lock:
            self._successes = 0
            self._failures += 1
            if self._healthy and self._failures >= self.unhealthy_after:
                self._healthy = False
                return True
            return False

    def record_success(self) -> bool:
        """Count one success; True when this flipped unhealthy→healthy."""
        with self._lock:
            self._failures = 0
            self._successes += 1
            if not self._healthy and self._successes >= self.healthy_after:
                self._healthy = True
                return True
            return False

    def reset(self) -> None:
        """Forget history (a freshly restarted shard starts clean)."""
        with self._lock:
            self._healthy = True
            self._failures = 0
            self._successes = 0


class HealthProber:
    """Background ``/healthz`` prober feeding the shards' health machines.

    ``endpoints`` is called each round to get the current
    ``{shard_id: (host, port)}`` map (ports move when the supervisor
    restarts a shard); shards without an endpoint (down, backoff,
    open circuit) are skipped — the supervisor already knows they are
    not live, and probing a corpse would only double-count failures.
    """

    def __init__(
        self,
        endpoints: Callable[[], dict[int, tuple[str, int]]],
        health: dict[int, ShardHealth],
        *,
        interval_s: float,
        timeout_s: float,
        registry: MetricsRegistry | None = None,
        on_transition: Callable[[int, bool], None] | None = None,
    ) -> None:
        self._endpoints = endpoints
        self._health = health
        self._interval_s = interval_s
        self._timeout_s = timeout_s
        self._registry = registry if registry is not None else MetricsRegistry()
        self._on_transition = on_transition
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._probe_counts: dict[int, int] = {}

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-prober", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._timeout_s + self._interval_s + 5.0)
            self._thread = None

    def probe_round(self) -> None:
        """One synchronous probe pass over every live shard (also the
        unit tests' entry point — no thread, no sleeping)."""
        for shard_id, (host, port) in sorted(self._endpoints().items()):
            health = self._health.get(shard_id)
            if health is None:
                continue
            count = self._probe_counts.get(shard_id, 0)
            self._probe_counts[shard_id] = count + 1
            flap = faults.match("probe_flap", f"shard{shard_id}|probe{count}")
            ok = False if flap is not None else self._probe_once(host, port)
            if ok:
                self._registry.inc("cluster.probes_total", shard=shard_id,
                                   outcome="ok")
                if health.record_success() and self._on_transition:
                    self._on_transition(shard_id, True)
            else:
                self._registry.inc("cluster.probes_total", shard=shard_id,
                                   outcome="fail")
                if health.record_failure() and self._on_transition:
                    self._on_transition(shard_id, False)

    def _probe_once(self, host: str, port: int) -> bool:
        conn = http.client.HTTPConnection(host, port, timeout=self._timeout_s)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            return response.status == 200
        except OSError:
            return False
        finally:
            conn.close()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self.probe_round()
            except Exception:  # noqa: BLE001 - prober must never die
                self._registry.inc("cluster.prober_errors_total")
                time.sleep(self._interval_s)
