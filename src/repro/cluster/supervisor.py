"""The shard supervisor: fork, watch, restart — without crash-looping.

:class:`ShardSupervisor` owns N ``repro serve`` shard processes.  Each
shard is a full single-process conflict service (warm compiler, admission
control, graceful drain) booted with ``--shard-id N`` on an ephemeral
port and its own per-shard verdict-cache snapshot derived from the shared
``cache_path`` — so shards never contend on a file, and a restarted shard
reloads *its own* accumulated verdicts.

Supervision is a per-shard state machine::

    stopped → starting → live ─┬─(exit observed)→ backoff → starting → …
                               └─(crash-loop)→ open_circuit → starting → …

* **Crash → backoff.**  A shard process that exits (SIGKILL'd by a chaos
  drill, OOM-killed, or plain crashed) is restarted after an
  exponentially growing, jittered delay — immediate restart of a sick
  process just synchronizes the next failure.  The backoff attempt
  counter resets once a shard stays up past the crash-loop window.
* **Crash loop → circuit breaker.**  ``crash_loop_threshold`` exits
  within ``crash_loop_window_s`` open the circuit: the supervisor stops
  restarting (state ``open_circuit``) for ``circuit_reset_s``, then
  allows a single half-open boot attempt.  A shard that dies on arrival
  costs one boot per reset period instead of a hot restart loop, and the
  router simply routes around it.
* **Generations.**  Every boot increments the shard's *generation*,
  passed to the child as ``REPRO_SHARD_GENERATION``.  Fault-injection
  keys embed it, so a drill rule like ``shard_kill:1:only=shard1|gen0``
  kills exactly one incarnation and the drill converges.

The boot handshake reuses the ``repro serve`` CLI contract: the child
prints one parseable ``listening on http://host:port`` line; a boot that
neither prints it within ``boot_timeout_s`` nor keeps running is counted
as a crash and enters the same backoff machinery.
"""

from __future__ import annotations

import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from collections.abc import Callable

from repro.cluster.config import ClusterConfig
from repro.errors import ClusterError
from repro.obs.metrics import MetricsRegistry

__all__ = ["ShardSupervisor", "ShardHandle"]

_LISTENING = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Supervisor state-machine states (see module docstring).
STATES = ("stopped", "starting", "live", "backoff", "open_circuit")


class ShardHandle:
    """Mutable supervision record for one shard (guard with the
    supervisor's lock)."""

    __slots__ = (
        "shard_id",
        "state",
        "proc",
        "port",
        "generation",
        "restarts",
        "backoff_attempt",
        "restart_at",
        "crash_times",
        "last_exit_code",
        "booted_at",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.state = "stopped"
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        self.generation = -1  # first boot makes it 0
        self.restarts = 0
        self.backoff_attempt = 0
        self.restart_at = 0.0
        self.crash_times: deque[float] = deque()
        self.last_exit_code: int | None = None
        self.booted_at = 0.0

    def view(self) -> dict:
        """A detached JSON-able snapshot for ``/healthz``."""
        return {
            "state": self.state,
            "port": self.port,
            "generation": self.generation,
            "restarts": self.restarts,
            "last_exit_code": self.last_exit_code,
        }


class ShardSupervisor:
    """Boots and babysits the shard processes (see module docstring)."""

    def __init__(
        self,
        config: ClusterConfig,
        registry: MetricsRegistry | None = None,
        on_shard_live: Callable[[int, int], None] | None = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_shard_live = on_shard_live
        self._lock = threading.Lock()
        self._handles = {
            shard_id: ShardHandle(shard_id)
            for shard_id in range(config.shards)
        }
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._rng = random.Random()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Boot every shard (concurrently) and start the monitor loop.

        A shard whose first boot fails is not fatal: it enters the same
        backoff/restart machinery as a crash.  Only *zero* shards coming
        up raises — an all-dead cluster cannot serve its first request.
        """
        boots = []
        for handle in self._handles.values():
            thread = threading.Thread(
                target=self._boot, args=(handle,), daemon=True,
                name=f"repro-shard-boot-{handle.shard_id}",
            )
            thread.start()
            boots.append(thread)
        for thread in boots:
            thread.join(timeout=self.config.boot_timeout_s + 5.0)
        if not self.live_shards():
            self.stop(graceful=False)
            raise ClusterError(
                f"none of {self.config.shards} shard(s) finished booting"
            )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    def stop(self, *, graceful: bool = True, timeout_s: float = 30.0) -> None:
        """Stop supervision and the shards.

        ``graceful=True`` SIGTERMs each shard — ``repro serve`` drains:
        admitted requests finish and a final cache snapshot is written —
        and escalates to SIGKILL only past ``timeout_s``.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            procs = [
                (handle, handle.proc)
                for handle in self._handles.values()
                if handle.proc is not None and handle.proc.poll() is None
            ]
        sig = signal.SIGTERM if graceful else signal.SIGKILL
        for _, proc in procs:
            try:
                proc.send_signal(sig)
            except (ProcessLookupError, OSError):
                pass
        deadline = time.monotonic() + timeout_s
        for handle, proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)
            with self._lock:
                handle.state = "stopped"
                handle.port = None
        self._set_live_gauge()

    # ------------------------------------------------------------------
    # Introspection (router + tests)
    # ------------------------------------------------------------------

    def endpoints(self) -> dict[int, tuple[str, int]]:
        """``{shard_id: (host, port)}`` for every *live* shard."""
        with self._lock:
            return {
                handle.shard_id: ("127.0.0.1", handle.port)
                for handle in self._handles.values()
                if handle.state == "live" and handle.port is not None
            }

    def live_shards(self) -> list[int]:
        with self._lock:
            return sorted(
                handle.shard_id
                for handle in self._handles.values()
                if handle.state == "live"
            )

    def generation(self, shard_id: int) -> int:
        with self._lock:
            return self._handles[shard_id].generation

    def snapshot(self) -> dict[int, dict]:
        """Per-shard supervision views for ``/healthz``."""
        with self._lock:
            return {
                shard_id: handle.view()
                for shard_id, handle in sorted(self._handles.items())
            }

    def wait_all_live(self, timeout_s: float) -> bool:
        """Block until every shard is live (True) or ``timeout_s`` passes."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if len(self.live_shards()) == self.config.shards:
                return True
            time.sleep(0.05)
        return len(self.live_shards()) == self.config.shards

    # ------------------------------------------------------------------
    # Chaos hooks (tests, drills, benchmarks)
    # ------------------------------------------------------------------

    def kill(self, shard_id: int, *, hard: bool = True) -> bool:
        """Kill one shard process (SIGKILL, or SIGTERM with ``hard=False``).

        Returns True if a running process was signalled.  The exit is
        recorded before returning (when the process dies promptly), so a
        caller that kills and then asserts on generations/restarts never
        races the monitor — this is the benchmark's and the drills' way
        of losing a shard mid-workload.
        """
        with self._lock:
            handle = self._handles[shard_id]
            proc = handle.proc
        if proc is None or proc.poll() is not None:
            return False
        try:
            proc.send_signal(signal.SIGKILL if hard else signal.SIGTERM)
        except (ProcessLookupError, OSError):
            return False
        try:
            exit_code = proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            # Still draining (SIGTERM path); the monitor will reap it.
            return True
        # Claim the exit under the lock — the same claim the monitor
        # makes — so exactly one of us records the crash.
        with self._lock:
            claimed = handle.state == "live" and handle.proc is proc
            if claimed:
                handle.state = "exited"
        if claimed:
            self._record_crash(handle, exit_code=exit_code)
        return True

    # ------------------------------------------------------------------
    # Boot + monitor internals
    # ------------------------------------------------------------------

    def _shard_command(self, handle: ShardHandle) -> list[str]:
        config = self.config
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(config.workers_per_shard),
            "--queue-depth", str(config.queue_depth),
            "--shard-id", str(handle.shard_id),
            "--snapshot-interval", str(config.snapshot_interval_s),
        ]
        if config.cache_path:
            cmd += ["--cache", config.cache_path]
        if config.default_deadline_ms is not None:
            cmd += ["--timeout", str(config.default_deadline_ms / 1000.0)]
        if config.log_requests:
            cmd.append("--log-requests")
        return cmd

    def _boot(self, handle: ShardHandle) -> None:
        """One boot attempt: fork, await the listening line, go live."""
        with self._lock:
            if self._stop.is_set():
                return
            handle.state = "starting"
            handle.generation += 1
            generation = handle.generation
        env = dict(os.environ)
        if self.config.shard_env:
            env.update(self.config.shard_env)
        env["REPRO_SHARD_GENERATION"] = str(generation)
        try:
            proc = subprocess.Popen(
                self._shard_command(handle),
                stdout=subprocess.PIPE,
                stderr=None,  # inherit: shard tracebacks must reach CI logs
                text=True,
                env=env,
            )
        except OSError as exc:
            self._record_crash(handle, exit_code=None, note=str(exc))
            return
        with self._lock:
            handle.proc = proc
        port = self._await_listening(proc)
        if port is None:
            try:
                proc.kill()
            except OSError:
                pass
            self._record_crash(handle, exit_code=proc.poll())
            return
        with self._lock:
            handle.port = port
            handle.state = "live"
            handle.booted_at = time.monotonic()
        self.registry.set_gauge(
            "cluster.shard_generation", generation, shard=handle.shard_id
        )
        self._set_live_gauge()
        if self.on_shard_live is not None:
            self.on_shard_live(handle.shard_id, generation)

    def _await_listening(self, proc: subprocess.Popen) -> int | None:
        """Parse the child's listening line, bounded by ``boot_timeout_s``.

        A helper thread owns the blocking reads; after the handshake it
        keeps draining the child's stdout so the pipe never fills up and
        wedges the shard mid-print.
        """
        found: list[int] = []
        handshake = threading.Event()

        def _reader() -> None:
            for line in proc.stdout:  # type: ignore[union-attr]
                if not handshake.is_set():
                    matched = _LISTENING.search(line)
                    if matched:
                        found.append(int(matched.group(2)))
                        handshake.set()
            handshake.set()  # EOF: the child died before listening

        thread = threading.Thread(target=_reader, daemon=True)
        thread.start()
        handshake.wait(timeout=self.config.boot_timeout_s)
        return found[0] if found else None

    def _record_crash(
        self,
        handle: ShardHandle,
        exit_code: int | None,
        note: str | None = None,
    ) -> None:
        """A shard exited (or failed to boot): backoff or open the circuit."""
        now = time.monotonic()
        config = self.config
        with self._lock:
            handle.proc = None
            handle.port = None
            handle.last_exit_code = exit_code
            handle.crash_times.append(now)
            while (
                handle.crash_times
                and now - handle.crash_times[0] > config.crash_loop_window_s
            ):
                handle.crash_times.popleft()
            # A shard that stayed up past the window earned a fresh
            # backoff curve; consecutive fast crashes keep climbing it.
            if (
                handle.booted_at
                and now - handle.booted_at > config.crash_loop_window_s
            ):
                handle.backoff_attempt = 0
            if len(handle.crash_times) >= config.crash_loop_threshold:
                handle.state = "open_circuit"
                handle.restart_at = now + config.circuit_reset_s
                self.registry.inc(
                    "cluster.shard_circuit_open_total", shard=handle.shard_id
                )
            else:
                delay = min(
                    config.restart_backoff_cap_s,
                    config.restart_backoff_base_s
                    * (2.0 ** handle.backoff_attempt),
                )
                if config.restart_backoff_jitter > 0:
                    delay *= (
                        1.0
                        - config.restart_backoff_jitter * self._rng.random()
                    )
                handle.backoff_attempt += 1
                handle.state = "backoff"
                handle.restart_at = now + delay
        self.registry.inc("cluster.shard_crashes_total", shard=handle.shard_id)
        self._set_live_gauge()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(0.05):
            now = time.monotonic()
            crashed: list[tuple[ShardHandle, int | None]] = []
            restart: list[ShardHandle] = []
            with self._lock:
                for handle in self._handles.values():
                    if handle.state == "live" and handle.proc is not None:
                        code = handle.proc.poll()
                        if code is not None:
                            # Claim the exit (kill() makes the same
                            # claim) so the crash is recorded once.
                            handle.state = "exited"
                            crashed.append((handle, code))
                    elif (
                        handle.state in ("backoff", "open_circuit")
                        and now >= handle.restart_at
                    ):
                        # Claim the restart under the lock so the next
                        # tick cannot start a second boot of this shard.
                        handle.state = "starting"
                        handle.restarts += 1
                        restart.append(handle)
            for handle, code in crashed:
                if self._stop.is_set():
                    return
                self._record_crash(handle, exit_code=code)
            for handle in restart:
                if self._stop.is_set():
                    return
                self.registry.inc(
                    "cluster.shard_restarts_total", shard=handle.shard_id
                )
                threading.Thread(
                    target=self._boot,
                    args=(handle,),
                    daemon=True,
                    name=f"repro-shard-boot-{handle.shard_id}",
                ).start()

    def _set_live_gauge(self) -> None:
        self.registry.set_gauge(
            "cluster.shards_live", len(self.live_shards())
        )
        self.registry.set_gauge("cluster.shards_total", self.config.shards)
