"""Failover-aware client for the sharded tier.

A :class:`ClusterClient` talks to a :class:`~repro.cluster.router.
ClusterRouter` with the same ``check``/``matrix``/``schedule`` API as a
single-service :class:`~repro.service.client.ServiceClient` — it *is*
one, with the defaults a fault-tolerant front deserves:

* **busy retries on by default** (``busy_retries=3``): the router relays
  a shard's 429/503 only when *every* healthy shard was shedding load,
  so a short jittered wait (honoring the relayed ``Retry-After``) and a
  second attempt usually lands — the cluster's whole point is that the
  caller should not have to orchestrate retries itself;
* the reconnect retry budget is slightly larger (the router itself never
  restarts mid-drill, but a laptop-grade chaos run can stall its accept
  loop for a beat).

Degraded answers are surfaced, not hidden: when the router had no shard
to ask it answers 200 with ``"degraded": true`` and machine-readable
``reason``; :meth:`ClusterClient.check` and friends return that payload
as-is so callers can distinguish a real verdict from a conservative
``unknown``.  :func:`is_degraded` is the one-line test.
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.service.retry import RetryPolicy

__all__ = ["ClusterClient", "is_degraded"]


def is_degraded(payload: dict) -> bool:
    """Did the cluster answer conservatively instead of deciding?"""
    return bool(payload.get("degraded"))


class ClusterClient(ServiceClient):
    """A :class:`ServiceClient` pointed at the cluster router, with
    busy-retry defaults suited to a front that sheds load transiently.

    ::

        with ClusterClient(port=router.port) as client:
            verdict = client.check(a, b)
            if is_degraded(verdict):
                ...  # conservative unknown: retry later or serialize
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        timeout: float = 60.0,
        request_id: str | None = None,
        retry: RetryPolicy | None = None,
        busy_retries: int = 3,
    ) -> None:
        super().__init__(
            port=port,
            host=host,
            timeout=timeout,
            request_id=request_id,
            retry=retry if retry is not None else RetryPolicy(attempts=5),
            busy_retries=busy_retries,
        )
