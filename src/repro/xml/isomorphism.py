"""Labeled unordered-tree isomorphism (Definition 1 of the paper).

The paper's *value-based* conflict semantics compares the result sets
``[[p]]_T(t)`` up to tree isomorphism, citing the Aho–Hopcroft–Ullman
algorithm with "a slight modification ... [for] labeled tree isomorphism".
We implement that modification here as a **canonical form**: a bottom-up
encoding in which each node's code is its label together with the sorted
multiset of its children's codes.  Two labeled unordered trees are
isomorphic exactly when their canonical forms are equal, and the form is
computed in near-linear time.

The canonical form doubles as a hash key, which the conflict engine uses to
deduplicate isomorphic candidate witnesses during exhaustive search.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.xml.tree import NodeId, XMLTree

__all__ = [
    "canonical_form",
    "canonical_forms_of_set",
    "isomorphic",
    "sets_isomorphic",
    "multisets_isomorphic",
]


def canonical_form(tree: XMLTree, node: NodeId | None = None) -> str:
    """Return a canonical string for the subtree of ``tree`` rooted at ``node``.

    The encoding is ``(label child1 child2 ...)`` with children's encodings
    sorted, so it is invariant under permutation of siblings.  Labels are
    length-prefixed so distinct label sets can never collide::

        >>> from repro.xml.tree import build_tree
        >>> a = build_tree(("r", "x", ("y", "z")))
        >>> b = build_tree(("r", ("y", "z"), "x"))
        >>> canonical_form(a) == canonical_form(b)
        True
    """
    node = tree.root if node is None else node
    codes: dict[NodeId, str] = {}
    for current in tree.postorder(node):
        label = tree.label(current)
        children = sorted(codes[c] for c in tree.children(current))
        codes[current] = f"({len(label)}:{label}{''.join(children)})"
    return codes[node]


def isomorphic(
    tree_a: XMLTree,
    tree_b: XMLTree,
    node_a: NodeId | None = None,
    node_b: NodeId | None = None,
) -> bool:
    """Definition 1: are the two (sub)trees isomorphic as labeled trees?"""
    return canonical_form(tree_a, node_a) == canonical_form(tree_b, node_b)


def canonical_forms_of_set(
    tree: XMLTree, nodes: Iterable[NodeId]
) -> frozenset[str]:
    """Canonical forms of the subtrees rooted at ``nodes``, as a set.

    Shares one postorder pass over the whole tree, so calling this with many
    roots costs the same as a single traversal.
    """
    wanted = set(nodes)
    if not wanted:
        return frozenset()
    codes: dict[NodeId, str] = {}
    out: set[str] = set()
    for current in tree.postorder():
        label = tree.label(current)
        children = sorted(codes[c] for c in tree.children(current))
        codes[current] = f"({len(label)}:{label}{''.join(children)})"
        if current in wanted:
            out.add(codes[current])
    return frozenset(out)


def sets_isomorphic(
    tree_a: XMLTree,
    nodes_a: Iterable[NodeId],
    tree_b: XMLTree,
    nodes_b: Iterable[NodeId],
) -> bool:
    """The paper's set-of-trees isomorphism (end of Definition 1).

    Two sets of trees are isomorphic when every tree in one set has an
    isomorphic partner in the other, in both directions.  Note this is a
    *set* (not multiset) condition — the paper asks only for mappings
    ``f: T -> T'`` and ``f': T' -> T``, not for a bijection between the
    sets themselves.
    """
    return canonical_forms_of_set(tree_a, nodes_a) == canonical_forms_of_set(
        tree_b, nodes_b
    )


def multisets_isomorphic(
    tree_a: XMLTree,
    nodes_a: Iterable[NodeId],
    tree_b: XMLTree,
    nodes_b: Iterable[NodeId],
) -> bool:
    """A stricter, multiset variant of :func:`sets_isomorphic`.

    Useful for clients that care about multiplicities of isomorphic results
    (e.g. duplicate-sensitive query answers).  Not the paper's definition —
    provided as an extension and exercised by the ablation benchmarks.
    """
    from collections import Counter

    count_a = Counter(canonical_form(tree_a, n) for n in nodes_a)
    count_b = Counter(canonical_form(tree_b, n) for n in nodes_b)
    return count_a == count_b
