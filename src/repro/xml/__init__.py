"""XML tree substrate: trees, parsing, serialization, isomorphism, generators."""

from repro.xml.enumerate import count_trees, enumerate_trees
from repro.xml.isomorphism import (
    canonical_form,
    canonical_forms_of_set,
    isomorphic,
    multisets_isomorphic,
    sets_isomorphic,
)
from repro.xml.parser import ATTR_PREFIX, TEXT_PREFIX, parse
from repro.xml.random_trees import auction_site, bookstore, random_path, random_tree
from repro.xml.serializer import serialize
from repro.xml.tree import NodeId, XMLTree, build_tree

__all__ = [
    "XMLTree",
    "NodeId",
    "build_tree",
    "parse",
    "serialize",
    "TEXT_PREFIX",
    "ATTR_PREFIX",
    "canonical_form",
    "canonical_forms_of_set",
    "isomorphic",
    "sets_isomorphic",
    "multisets_isomorphic",
    "enumerate_trees",
    "count_trees",
    "random_tree",
    "random_path",
    "bookstore",
    "auction_site",
]
