"""Seeded random document generators for tests and benchmarks.

The paper evaluates nothing empirically, so every input in this repository
is synthetic by construction.  These generators produce the three document
families used across the experiment suite:

* :func:`random_tree` — uniform attachment trees over a given alphabet, the
  generic workload for scaling experiments;
* :func:`random_path` — degenerate chains, the worst case for descendant
  axes;
* :func:`bookstore` — documents shaped like Figure 1 of the paper
  (``bib/book/{title, publisher/name, quantity}``), the motivating example
  workload.

All generators take an explicit :class:`random.Random` instance or seed so
results are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.xml.parser import ATTR_PREFIX, TEXT_PREFIX
from repro.xml.tree import XMLTree

__all__ = [
    "random_tree",
    "random_path",
    "bookstore",
    "auction_site",
    "DEFAULT_ALPHABET",
]

#: Alphabet used when none is supplied.
DEFAULT_ALPHABET: tuple[str, ...] = ("a", "b", "c", "d")


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_tree(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int | random.Random | None = None,
    max_depth: int | None = None,
) -> XMLTree:
    """A uniformly grown random tree with ``size`` nodes.

    Each new node picks a uniformly random existing node as its parent
    (optionally restricted to nodes above ``max_depth``) and a uniformly
    random label.  This yields trees whose expected depth is ``O(log n)``,
    a reasonable stand-in for real document shapes.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = _rng(seed)
    tree = XMLTree(rng.choice(alphabet))
    depths = {tree.root: 0}
    candidates = [tree.root]
    while tree.size < size:
        parent = rng.choice(candidates)
        node = tree.add_child(parent, rng.choice(alphabet))
        depths[node] = depths[parent] + 1
        if max_depth is None or depths[node] < max_depth:
            candidates.append(node)
    return tree


def random_path(
    length: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int | random.Random | None = None,
) -> XMLTree:
    """A chain of ``length`` nodes with random labels (worst case for ``//``)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = _rng(seed)
    tree = XMLTree(rng.choice(alphabet))
    node = tree.root
    for _ in range(length - 1):
        node = tree.add_child(node, rng.choice(alphabet))
    return tree


def bookstore(
    books: int,
    low_stock_fraction: float = 0.3,
    seed: int | random.Random | None = None,
    nested_quantity: bool = True,
) -> XMLTree:
    """A Figure-1-style bookstore document.

    Produces ``bib`` with ``books`` children labeled ``book``; each book has
    a ``title``, a ``publisher/name`` pair, and a ``quantity`` leaf whose
    text encodes the stock level.  With probability ``low_stock_fraction``
    the quantity is below 10, so the paper's motivating update
    ``insert //book[.//quantity]/restock`` has work to do.

    Args:
        books: number of ``book`` elements.
        low_stock_fraction: fraction of books with quantity < 10.
        seed: RNG seed or instance.
        nested_quantity: when True, half the quantities sit under an extra
            ``stock`` wrapper so ``.//quantity`` genuinely needs the
            descendant axis.
    """
    rng = _rng(seed)
    tree = XMLTree("bib")
    for index in range(books):
        book = tree.add_child(tree.root, "book")
        title = tree.add_child(book, "title")
        tree.add_child(title, f"{TEXT_PREFIX}Book {index}")
        publisher = tree.add_child(book, "publisher")
        name = tree.add_child(publisher, "name")
        tree.add_child(name, f"{TEXT_PREFIX}Press {index % 7}")
        if rng.random() < low_stock_fraction:
            quantity_value = rng.randrange(0, 10)
        else:
            quantity_value = rng.randrange(10, 500)
        holder = book
        if nested_quantity and rng.random() < 0.5:
            holder = tree.add_child(book, "stock")
        quantity = tree.add_child(holder, "quantity")
        tree.add_child(quantity, f"{TEXT_PREFIX}{quantity_value}")
    return tree


def auction_site(
    items: int = 20,
    people: int = 10,
    seed: int | random.Random | None = None,
) -> XMLTree:
    """An XMark-flavored auction document (``site/regions|people|open_auctions``).

    A second realistic document family, deeper and more heterogeneous than
    the bookstore: items nest descriptions with parlist/listitem recursion,
    people carry optional profiles, and open auctions cross-reference both
    via ``itemref``/``bidder`` leaves.  Used by the scaling experiments to
    confirm the shapes measured on bookstores are not bookstore artifacts.
    """
    rng = _rng(seed)
    site = XMLTree("site")
    regions = site.add_child(site.root, "regions")
    region_names = ("africa", "asia", "europe", "namerica")
    region_nodes = {
        name: site.add_child(regions, name) for name in region_names
    }
    for index in range(items):
        region = region_nodes[region_names[index % len(region_names)]]
        item = site.add_child(region, "item")
        site.add_child(item, f"{ATTR_PREFIX}id=item{index}")
        name = site.add_child(item, "name")
        site.add_child(name, f"{TEXT_PREFIX}Item {index}")
        description = site.add_child(item, "description")
        _fill_parlist(site, description, rng, depth=rng.randint(1, 3))
        if rng.random() < 0.4:
            site.add_child(item, "reserve")
    people_node = site.add_child(site.root, "people")
    for index in range(people):
        person = site.add_child(people_node, "person")
        name = site.add_child(person, "name")
        site.add_child(name, f"{TEXT_PREFIX}Person {index}")
        if rng.random() < 0.5:
            profile = site.add_child(person, "profile")
            interest = site.add_child(profile, "interest")
            site.add_child(interest, f"{TEXT_PREFIX}category{rng.randrange(5)}")
    auctions = site.add_child(site.root, "open_auctions")
    for index in range(max(1, items // 2)):
        auction = site.add_child(auctions, "open_auction")
        itemref = site.add_child(auction, "itemref")
        site.add_child(itemref, f"{TEXT_PREFIX}item{rng.randrange(items)}")
        for _ in range(rng.randint(0, 3)):
            bidder = site.add_child(auction, "bidder")
            increase = site.add_child(bidder, "increase")
            site.add_child(increase, f"{TEXT_PREFIX}{rng.randrange(1, 50)}")
        current = site.add_child(auction, "current")
        site.add_child(current, f"{TEXT_PREFIX}{rng.randrange(10, 1000)}")
    return site


def _fill_parlist(tree: XMLTree, parent, rng: random.Random, depth: int) -> None:
    parlist = tree.add_child(parent, "parlist")
    for _ in range(rng.randint(1, 3)):
        listitem = tree.add_child(parlist, "listitem")
        if depth > 0 and rng.random() < 0.4:
            _fill_parlist(tree, listitem, rng, depth - 1)
        else:
            text = tree.add_child(listitem, "text")
            tree.add_child(text, f"{TEXT_PREFIX}lorem {rng.randrange(100)}")
