"""Serialize :class:`~repro.xml.tree.XMLTree` values back to XML text.

Inverts :mod:`repro.xml.parser`: leaf nodes labeled ``#text:...`` become
text content, leaves labeled ``@name=value`` become attributes, everything
else becomes elements.  Children that cannot be rendered as attributes/text
are rendered as child elements in stored order.
"""

from __future__ import annotations

from repro.xml.parser import ATTR_PREFIX, TEXT_PREFIX
from repro.xml.tree import NodeId, XMLTree

__all__ = ["serialize"]


def serialize(tree: XMLTree, node: NodeId | None = None, indent: int | None = None) -> str:
    """Render ``tree`` (or the subtree rooted at ``node``) as XML text.

    Args:
        tree: the tree to render.
        node: subtree root; defaults to the tree root.
        indent: when given, pretty-print with this many spaces per level;
            when ``None``, produce compact single-line output.
    """
    node = tree.root if node is None else node
    pieces: list[str] = []
    _render(tree, node, pieces, indent, 0)
    return "".join(pieces) if indent is None else "\n".join(pieces)


def _render(
    tree: XMLTree,
    node: NodeId,
    pieces: list[str],
    indent: int | None,
    depth: int,
) -> None:
    label = tree.label(node)
    pad = "" if indent is None else " " * (indent * depth)

    if label.startswith(TEXT_PREFIX):
        pieces.append(pad + _escape(label[len(TEXT_PREFIX):]))
        return
    if label.startswith(ATTR_PREFIX):
        # An attribute node rendered standalone (should normally be folded
        # into its parent's start tag); render as an element with a
        # sanitized name so no information — including any children — is
        # lost.
        name = _escape_name(label)
        children = tree.children(node)
        if not children:
            pieces.append(pad + f"<{name}/>")
            return
        pieces.append(pad + f"<{name}>")
        for child in children:
            _render(tree, child, pieces, indent, depth + 1)
        if indent is None:
            pieces.append(f"</{name}>")
        else:
            pieces.append(pad + f"</{name}>")
        return

    attributes: list[str] = []
    content: list[NodeId] = []
    for child in tree.children(node):
        child_label = tree.label(child)
        if child_label.startswith(ATTR_PREFIX) and tree.is_leaf(child):
            name, _, value = child_label[len(ATTR_PREFIX):].partition("=")
            attributes.append(f' {name}="{_escape(value)}"')
        else:
            content.append(child)

    open_tag = f"<{label}{''.join(attributes)}"
    if not content:
        pieces.append(pad + open_tag + "/>")
        return

    pieces.append(pad + open_tag + ">")
    for child in content:
        _render(tree, child, pieces, indent, depth + 1)
    if indent is None:
        pieces.append(f"</{label}>")
    else:
        pieces.append(pad + f"</{label}>")


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _escape_name(label: str) -> str:
    # Attribute-style labels contain characters invalid in element names;
    # keep only a safe approximation for standalone rendering.
    return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in label)
