"""Exhaustive enumeration of unordered labeled trees up to isomorphism.

The NP-membership theorems (Theorems 3 and 5) bound the size of a minimal
conflict witness, so a *complete* decision procedure for the branching case
may enumerate all candidate trees up to that bound and check each one
(Lemma 1 makes the per-candidate check polynomial).  Enumerating *ordered*
trees would redundantly revisit exponentially many sibling permutations of
the same unordered tree; this module enumerates each isomorphism class of
unordered labeled trees exactly once by generating only *canonically sorted*
trees.

The construction: a canonical tree of size ``n`` with alphabet ``A`` is a
root label plus a **non-increasing multiset** of canonical child subtrees
(non-increasing with respect to the subtree canonical encoding).  Generating
children in non-increasing encoding order makes each unordered tree appear
exactly once.

Counts grow fast — e.g. over a 3-letter alphabet there are 3, 9, 54, 405,
3402, ... canonical trees of sizes 1, 2, 3, 4, 5 — which is the experimental
signature of the problem's NP-completeness (experiment E4).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import lru_cache

from repro.xml.tree import XMLTree

__all__ = ["enumerate_trees", "count_trees"]

# A canonical tree is represented compactly during generation as a nested
# tuple ``(label, child, child, ...)`` with the children sorted
# non-increasingly by their own encoding; it is converted to an XMLTree only
# when yielded.
_Spec = tuple


def enumerate_trees(
    max_size: int,
    alphabet: Sequence[str],
    min_size: int = 1,
) -> Iterator[XMLTree]:
    """Yield one representative per isomorphism class of labeled trees.

    Args:
        max_size: inclusive upper bound on node count.
        alphabet: allowed labels (order is normalized internally).
        min_size: inclusive lower bound on node count (default 1).

    Trees are yielded in increasing size.  Each unordered labeled tree over
    the alphabet with ``min_size <= size <= max_size`` appears exactly once
    up to isomorphism.
    """
    labels = tuple(sorted(set(alphabet)))
    if not labels:
        raise ValueError("alphabet must be non-empty")
    if max_size < min_size:
        return
    for size in range(max(1, min_size), max_size + 1):
        for spec in _trees_of_size(size, labels):
            yield _materialize(spec)


def count_trees(max_size: int, alphabet: Sequence[str]) -> int:
    """Number of isomorphism classes of trees with ``size <= max_size``.

    Used by the NP experiments to report search-space sizes without
    materializing the trees.
    """
    labels = tuple(sorted(set(alphabet)))
    return sum(
        _count_of_size(size, labels) for size in range(1, max_size + 1)
    )


def _trees_of_size(size: int, labels: tuple[str, ...]) -> Iterator[_Spec]:
    """All canonical trees with exactly ``size`` nodes."""
    if size == 1:
        for label in labels:
            yield (label,)
        return
    for label in labels:
        # Children form a non-increasing sequence of canonical subtrees
        # whose sizes sum to size - 1.
        for children in _forests(size - 1, labels, bound=None):
            yield (label, *children)


def _forests(
    total: int,
    labels: tuple[str, ...],
    bound: _Spec | None,
) -> Iterator[tuple[_Spec, ...]]:
    """Non-increasing sequences of canonical trees with sizes summing to ``total``.

    ``bound`` is an exclusive-upper sentinel: every generated first element
    must be <= bound (in encoding order) so sequences stay sorted.  ``None``
    means unbounded.
    """
    if total == 0:
        yield ()
        return
    for head_size in range(total, 0, -1):
        for head in _trees_of_size(head_size, labels):
            if bound is not None and _key(head) > _key(bound):
                continue
            for tail in _forests(total - head_size, labels, bound=head):
                yield (head, *tail)


def _key(spec: _Spec) -> tuple:
    """Total order on canonical specs: by size descending handled by caller,
    here a deterministic structural order."""
    return (_size(spec), spec)


@lru_cache(maxsize=None)
def _count_memo(size: int, labels: tuple[str, ...]) -> int:
    return sum(1 for _ in _trees_of_size(size, labels))


def _count_of_size(size: int, labels: tuple[str, ...]) -> int:
    return _count_memo(size, labels)


def _size(spec: _Spec) -> int:
    return 1 + sum(_size(child) for child in spec[1:])


def _materialize(spec: _Spec) -> XMLTree:
    tree = XMLTree(spec[0])
    stack = [(tree.root, child) for child in spec[1:]]
    while stack:
        parent, child_spec = stack.pop()
        node = tree.add_child(parent, child_spec[0])
        stack.extend((node, grandchild) for grandchild in child_spec[1:])
    return tree
