"""Unordered, unranked labeled trees — the paper's model of XML documents.

Section 2.1 of the paper models an XML document as a tree whose nodes carry
labels from an infinite alphabet ``Σ``.  Because the XPath fragment studied
in the paper cannot observe document order, the trees are *unordered*; and
because XML elements impose no arity, they are *unranked*.

:class:`XMLTree` implements this model with **stable integer node
identities**.  Node identity is the heart of the paper's reference-based
conflict semantics: an insertion applied to a tree ``t`` yields a tree
``I(t)`` that shares the identities of all surviving nodes of ``t``, so the
node-conflict check ``R(I(t)) != R(t)`` is a set comparison over node ids.

The class is deliberately small and explicit: a dictionary of nodes, each
knowing its label, parent and children.  All structural mutations preserve
the invariants checked by :meth:`XMLTree.validate`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import NodeNotFoundError, TreeStructureError

__all__ = ["XMLTree", "NodeId", "build_tree"]

#: Node identifier type.  Ids are small non-negative integers, unique within
#: a tree (and preserved across :meth:`XMLTree.copy`).
NodeId = int


@dataclass
class _Node:
    """Internal record for a single tree node."""

    label: str
    parent: NodeId | None
    children: list[NodeId] = field(default_factory=list)


class XMLTree:
    """A mutable, unordered, labeled tree with stable node identities.

    Construct a tree with a root label and grow it with :meth:`add_child`::

        >>> t = XMLTree("bib")
        >>> book = t.add_child(t.root, "book")
        >>> t.add_child(book, "title")
        2
        >>> t.size
        3

    Children are stored in insertion order for reproducibility, but no
    library algorithm depends on that order: the semantics are those of an
    unordered tree.
    """

    def __init__(self, root_label: str) -> None:
        self._nodes: dict[NodeId, _Node] = {0: _Node(root_label, None)}
        self._root: NodeId = 0
        self._next_id: NodeId = 1

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def root(self) -> NodeId:
        """The id of the root node."""
        return self._root

    @property
    def size(self) -> int:
        """Number of nodes in the tree (``|t|`` in the paper)."""
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all node ids (no particular order guaranteed)."""
        return iter(self._nodes)

    def label(self, node: NodeId) -> str:
        """Return the label of ``node`` (``LABEL_t(n)``)."""
        return self._get(node).label

    def parent(self, node: NodeId) -> NodeId | None:
        """Return the parent id of ``node``, or ``None`` for the root."""
        return self._get(node).parent

    def children(self, node: NodeId) -> tuple[NodeId, ...]:
        """Return the ids of the children of ``node``."""
        return tuple(self._get(node).children)

    def degree(self, node: NodeId) -> int:
        """Number of children of ``node``."""
        return len(self._get(node).children)

    def is_leaf(self, node: NodeId) -> bool:
        """True when ``node`` has no children."""
        return not self._get(node).children

    def labels(self) -> set[str]:
        """The set of labels used in the tree (``Σ_t``)."""
        return {record.label for record in self._nodes.values()}

    def _get(self, node: NodeId) -> _Node:
        try:
            return self._nodes[node]
        except KeyError:
            raise NodeNotFoundError(f"node {node!r} is not in this tree") from None

    # ------------------------------------------------------------------
    # Traversals and derived relations
    # ------------------------------------------------------------------

    def preorder(self, start: NodeId | None = None) -> Iterator[NodeId]:
        """Depth-first preorder traversal from ``start`` (default: root)."""
        stack = [self._root if start is None else start]
        self._get(stack[0])
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._nodes[node].children))

    def postorder(self, start: NodeId | None = None) -> Iterator[NodeId]:
        """Depth-first postorder traversal from ``start`` (default: root)."""
        root = self._root if start is None else start
        self._get(root)
        out: list[NodeId] = []
        stack = [root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self._nodes[node].children)
        return reversed(out)

    def descendants(self, node: NodeId, include_self: bool = False) -> Iterator[NodeId]:
        """Iterate over the (proper, by default) descendants of ``node``."""
        it = self.preorder(node)
        first = next(it)
        if include_self:
            yield first
        yield from it

    def ancestors(self, node: NodeId, include_self: bool = False) -> Iterator[NodeId]:
        """Iterate over the ancestors of ``node``, nearest first."""
        if include_self:
            yield node
        current = self.parent(node)
        while current is not None:
            yield current
            current = self._nodes[current].parent

    def is_ancestor(self, anc: NodeId, desc: NodeId) -> bool:
        """True when ``anc`` is a *proper* ancestor of ``desc``."""
        self._get(anc)
        current = self.parent(desc)
        while current is not None:
            if current == anc:
                return True
            current = self._nodes[current].parent
        return False

    def depth(self, node: NodeId) -> int:
        """Number of edges from the root to ``node`` (root has depth 0)."""
        return sum(1 for _ in self.ancestors(node))

    def height(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        best = 0
        stack: list[tuple[NodeId, int]] = [(self._root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            stack.extend((c, d + 1) for c in self._nodes[node].children)
        return best

    def path_from_root(self, node: NodeId) -> list[NodeId]:
        """The node ids on the path from the root to ``node``, inclusive."""
        path = list(self.ancestors(node, include_self=True))
        path.reverse()
        return path

    def path_labels(self, node: NodeId) -> list[str]:
        """Labels along the path from the root to ``node``, inclusive."""
        return [self._nodes[n].label for n in self.path_from_root(node)]

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over all (parent, child) edges (``EDGES_t``)."""
        for node, record in self._nodes.items():
            for child in record.children:
                yield (node, child)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_child(self, parent: NodeId, label: str) -> NodeId:
        """Create a new node labeled ``label`` under ``parent``; return its id."""
        record = self._get(parent)
        node = self._next_id
        self._next_id += 1
        self._nodes[node] = _Node(label, parent)
        record.children.append(node)
        return node

    def relabel(self, node: NodeId, label: str) -> None:
        """Change the label of ``node``."""
        self._get(node).label = label

    def graft(self, parent: NodeId, subtree: "XMLTree") -> dict[NodeId, NodeId]:
        """Insert a fresh copy of ``subtree`` as a child of ``parent``.

        This is the primitive behind the paper's ``INSERT`` operation: the
        copy receives **fresh node ids**, disjoint from every id already in
        this tree.  Returns the mapping from ids in ``subtree`` to the fresh
        ids in this tree.
        """
        self._get(parent)
        mapping: dict[NodeId, NodeId] = {}
        for old in subtree.preorder():
            target = parent if old == subtree.root else mapping[subtree.parent(old)]
            mapping[old] = self.add_child(target, subtree.label(old))
        return mapping

    def move_subtree(self, node: NodeId, new_parent: NodeId) -> None:
        """Detach the subtree at ``node`` and re-attach it under ``new_parent``.

        The primitive behind the *reparenting* operation of Definition 10.
        Moving a node under one of its own descendants (or under itself)
        would create a cycle and is rejected.
        """
        record = self._get(node)
        self._get(new_parent)
        if record.parent is None:
            raise TreeStructureError("cannot move the root of a tree")
        if new_parent == node or self.is_ancestor(node, new_parent):
            raise TreeStructureError(
                f"moving {node} under {new_parent} would create a cycle"
            )
        self._nodes[record.parent].children.remove(node)
        record.parent = new_parent
        self._nodes[new_parent].children.append(node)

    def delete_subtree(self, node: NodeId) -> set[NodeId]:
        """Remove ``node`` and all its descendants; return the removed ids.

        Deleting the root is rejected (the paper requires the result of a
        deletion to remain a tree; it enforces this by requiring
        ``O(p) != ROOT(p)`` on deletion patterns).
        """
        record = self._get(node)
        if record.parent is None:
            raise TreeStructureError("cannot delete the root of a tree")
        removed = set(self.descendants(node, include_self=True))
        self._nodes[record.parent].children.remove(node)
        for victim in removed:
            del self._nodes[victim]
        return removed

    # ------------------------------------------------------------------
    # Copying and extraction
    # ------------------------------------------------------------------

    def copy(self) -> "XMLTree":
        """Return an independent copy **preserving node ids**.

        Id preservation is what lets the conflict semantics compare
        ``R(t)`` with ``R(I(t))`` as sets of ids: the pure application of an
        update copies the input tree first, so surviving nodes keep their
        identity across the update.
        """
        clone = XMLTree.__new__(XMLTree)
        clone._nodes = {
            node: _Node(rec.label, rec.parent, list(rec.children))
            for node, rec in self._nodes.items()
        }
        clone._root = self._root
        clone._next_id = self._next_id
        return clone

    def subtree(self, node: NodeId) -> "XMLTree":
        """Return ``SUBTREE_n(t)`` as a fresh tree (ids are renumbered)."""
        out = XMLTree(self.label(node))
        mapping = {node: out.root}
        for current in self.preorder(node):
            if current == node:
                continue
            parent = self.parent(current)
            assert parent is not None
            mapping[current] = out.add_child(mapping[parent], self.label(current))
        return out

    def subtree_preserving_ids(self, node: NodeId) -> "XMLTree":
        """Return ``SUBTREE_n(t)`` keeping the original node ids.

        Used by the tree/value conflict semantics, where the sets
        ``[[p]]_T(t)`` consist of subtrees whose node identities matter.
        """
        clone = XMLTree.__new__(XMLTree)
        keep = set(self.descendants(node, include_self=True))
        clone._nodes = {
            n: _Node(
                self._nodes[n].label,
                self._nodes[n].parent if n != node else None,
                list(self._nodes[n].children),
            )
            for n in keep
        }
        clone._root = node
        clone._next_id = self._next_id
        return clone

    # ------------------------------------------------------------------
    # Structural equality and diagnostics
    # ------------------------------------------------------------------

    def structure(self) -> tuple[set[NodeId], set[tuple[NodeId, NodeId]]]:
        """Return ``(NODES_t, EDGES_t)`` for the paper's Definition 2.

        Two trees are *equivalent* (reference semantics) when their node
        sets and edge sets coincide.
        """
        return set(self._nodes), set(self.edges())

    def equivalent(self, other: "XMLTree") -> bool:
        """Definition 2: same node ids, same edges, same labels."""
        if set(self._nodes) != set(other._nodes):
            return False
        if set(self.edges()) != set(other.edges()):
            return False
        return all(self.label(n) == other.label(n) for n in self._nodes)

    def validate(self) -> None:
        """Check internal invariants; raise :class:`TreeStructureError` if broken.

        Verifies that parent/child links are mutually consistent, that the
        root is the unique parentless node, and that every node is reachable
        from the root.
        """
        parentless = [n for n, rec in self._nodes.items() if rec.parent is None]
        if parentless != [self._root]:
            raise TreeStructureError(
                f"expected the root {self._root} to be the unique parentless "
                f"node; found {parentless}"
            )
        for node, rec in self._nodes.items():
            for child in rec.children:
                if child not in self._nodes:
                    raise TreeStructureError(f"child {child} of {node} missing")
                if self._nodes[child].parent != node:
                    raise TreeStructureError(
                        f"child {child} of {node} has parent "
                        f"{self._nodes[child].parent}"
                    )
            if rec.parent is not None and node not in self._nodes[rec.parent].children:
                raise TreeStructureError(
                    f"node {node} not registered as child of {rec.parent}"
                )
        reachable = sum(1 for _ in self.preorder())
        if reachable != len(self._nodes):
            raise TreeStructureError(
                f"{len(self._nodes) - reachable} nodes unreachable from root"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLTree(size={self.size}, root={self.label(self._root)!r})"

    def sketch(self, node: NodeId | None = None, indent: int = 0) -> str:
        """A human-readable indented rendering (labels with node ids)."""
        node = self._root if node is None else node
        lines = [f"{'  ' * indent}{self.label(node)} #{node}"]
        for child in self.children(node):
            lines.append(self.sketch(child, indent + 1))
        return "\n".join(lines)


def build_tree(spec: object) -> XMLTree:
    """Build a tree from a nested-sequence specification.

    The specification is either a bare label (a one-node tree) or a sequence
    whose first element is the root label and whose remaining elements are
    child specifications::

        >>> t = build_tree(("a", "b", ("c", "d")))
        >>> t.size
        4

    This mirrors how the paper's figures draw small trees and keeps tests
    compact and readable.
    """
    if isinstance(spec, str):
        return XMLTree(spec)
    items: list[object] = list(spec)  # type: ignore[arg-type]
    if not items or not isinstance(items[0], str):
        raise TreeStructureError(f"bad tree spec: {spec!r}")
    tree = XMLTree(items[0])
    _attach_children(tree, tree.root, items[1:])
    return tree


def _attach_children(tree: XMLTree, parent: NodeId, specs: Iterable[object]) -> None:
    for spec in specs:
        if isinstance(spec, str):
            tree.add_child(parent, spec)
            continue
        items: list[object] = list(spec)  # type: ignore[arg-type]
        if not items or not isinstance(items[0], str):
            raise TreeStructureError(f"bad tree spec: {spec!r}")
        child = tree.add_child(parent, items[0])
        _attach_children(tree, child, items[1:])
