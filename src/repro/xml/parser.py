"""A small, dependency-free parser for the XML subset the paper needs.

The paper's data model keeps only element structure: labels, parent/child
edges, no attributes, no text semantics, no order.  This parser accepts a
practical subset of XML syntax —

* elements: ``<a> ... </a>`` and self-closing ``<restock/>``
* attributes are parsed and **recorded as leaf children** labeled
  ``@name=value`` so documents round-trip understandably, or discarded when
  ``keep_attributes=False``
* text content becomes leaf children labeled ``#text:<content>`` (or is
  discarded with ``keep_text=False``) — the paper's example
  ``//book[.//quantity < 10]`` treats values as uninterpreted labels, and
  this representation preserves them as labels
* comments ``<!-- ... -->``, processing instructions ``<? ... ?>`` and a
  leading ``<!DOCTYPE ...>`` are skipped

and produces an :class:`~repro.xml.tree.XMLTree`.  The serializer in
:mod:`repro.xml.serializer` inverts it.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xml.tree import NodeId, XMLTree

__all__ = ["parse", "TEXT_PREFIX", "ATTR_PREFIX"]

#: Label prefix for leaf nodes holding element text content.
TEXT_PREFIX = "#text:"
#: Label prefix for leaf nodes holding attributes.
ATTR_PREFIX = "@"

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character-level cursor over the input text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise XMLParseError(f"expected {token!r}", self.pos)
        self.pos += len(token)

    def read_name(self) -> str:
        start = self.pos
        if self.eof() or self.peek() not in _NAME_START:
            raise XMLParseError("expected an XML name", self.pos)
        while not self.eof() and self.peek() in _NAME_CHARS:
            self.advance()
        return self.text[start:self.pos]

    def skip_until(self, token: str) -> None:
        index = self.text.find(token, self.pos)
        if index < 0:
            raise XMLParseError(f"unterminated construct; expected {token!r}", self.pos)
        self.pos = index + len(token)


def parse(text: str, keep_text: bool = True, keep_attributes: bool = True) -> XMLTree:
    """Parse XML ``text`` into an :class:`XMLTree`.

    Args:
        text: the document source.  Must contain exactly one root element.
        keep_text: when True, non-whitespace text content becomes leaf nodes
            labeled ``#text:<content>``; when False it is discarded.
        keep_attributes: when True, attributes become leaf nodes labeled
            ``@name=value``; when False they are discarded.

    Raises:
        XMLParseError: on malformed input or trailing content.
    """
    scanner = _Scanner(text)
    _skip_prolog(scanner)
    scanner.skip_whitespace()
    if not scanner.startswith("<"):
        raise XMLParseError("expected a root element", scanner.pos)
    tree, _ = _parse_element(scanner, None, None, keep_text, keep_attributes)
    assert tree is not None
    _skip_misc(scanner)
    scanner.skip_whitespace()
    if not scanner.eof():
        raise XMLParseError("trailing content after the root element", scanner.pos)
    return tree


def _skip_prolog(scanner: _Scanner) -> None:
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<?"):
            scanner.skip_until("?>")
        elif scanner.startswith("<!--"):
            scanner.skip_until("-->")
        elif scanner.startswith("<!DOCTYPE"):
            scanner.skip_until(">")
        else:
            return


def _skip_misc(scanner: _Scanner) -> None:
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<?"):
            scanner.skip_until("?>")
        elif scanner.startswith("<!--"):
            scanner.skip_until("-->")
        else:
            return


def _parse_element(
    scanner: _Scanner,
    tree: XMLTree | None,
    parent: NodeId | None,
    keep_text: bool,
    keep_attributes: bool,
) -> tuple[XMLTree | None, NodeId | None]:
    """Parse one element.  When ``tree`` is None, creates the root tree."""
    scanner.expect("<")
    name = scanner.read_name()
    if tree is None:
        tree = XMLTree(name)
        node: NodeId = tree.root
    else:
        assert parent is not None
        node = tree.add_child(parent, name)

    attributes = _parse_attributes(scanner)
    if keep_attributes:
        for key, value in attributes:
            tree.add_child(node, f"{ATTR_PREFIX}{key}={value}")

    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.advance(2)
        return tree, node
    scanner.expect(">")
    _parse_content(scanner, tree, node, name, keep_text, keep_attributes)
    return tree, node


def _parse_attributes(scanner: _Scanner) -> list[tuple[str, str]]:
    attributes: list[tuple[str, str]] = []
    while True:
        scanner.skip_whitespace()
        if scanner.eof() or scanner.peek() in {">", "/"}:
            return attributes
        key = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in {'"', "'"}:
            raise XMLParseError("attribute value must be quoted", scanner.pos)
        scanner.advance()
        start = scanner.pos
        end = scanner.text.find(quote, start)
        if end < 0:
            raise XMLParseError("unterminated attribute value", start)
        attributes.append((key, _unescape(scanner.text[start:end])))
        scanner.pos = end + 1


def _parse_content(
    scanner: _Scanner,
    tree: XMLTree,
    node: NodeId,
    name: str,
    keep_text: bool,
    keep_attributes: bool,
) -> None:
    buffer: list[str] = []

    def flush_text() -> None:
        if not keep_text:
            buffer.clear()
            return
        text = "".join(buffer).strip()
        buffer.clear()
        if text:
            tree.add_child(node, f"{TEXT_PREFIX}{_unescape(text)}")

    while True:
        if scanner.eof():
            raise XMLParseError(f"unterminated element <{name}>", scanner.pos)
        if scanner.startswith("</"):
            flush_text()
            scanner.advance(2)
            closing = scanner.read_name()
            if closing != name:
                raise XMLParseError(
                    f"mismatched closing tag </{closing}> for <{name}>", scanner.pos
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            return
        if scanner.startswith("<!--"):
            flush_text()
            scanner.skip_until("-->")
        elif scanner.startswith("<?"):
            flush_text()
            scanner.skip_until("?>")
        elif scanner.startswith("<"):
            flush_text()
            _parse_element(scanner, tree, node, keep_text, keep_attributes)
        else:
            buffer.append(scanner.peek())
            scanner.advance()


_ENTITIES = {"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": '"', "&apos;": "'"}


def _unescape(text: str) -> str:
    for entity, char in _ENTITIES.items():
        text = text.replace(entity, char)
    return text
