"""``repro`` — a reproduction of *Conflicting XML Updates* (EDBT 2006).

Raghavachari & Shmueli study when XPath-driven update operations on XML
documents *conflict* — when executing an update before a read can change
what the read returns, on some document.  This library implements the whole
paper: the tree/pattern formalism, the three conflict semantics, the
polynomial-time detection algorithms for linear reads, the NP-side
machinery (bounded witness search, witness minimization, hardness
reductions), and the compiler-analysis application that motivates it all.

Quick start::

    from repro import ConflictDetector, Read, Insert, Verdict

    detector = ConflictDetector()
    report = detector.read_insert(Read("*//C"), Insert("*/B", "<C/>"))
    assert report.verdict is Verdict.CONFLICT
    print(report.witness.sketch())   # a concrete document showing it

Whole catalogues (the Section 7 compiler question) go through one
facade — :func:`repro.analyze` decides every pair, with a static pattern
index that discharges provably-independent pairs in O(1), canonical-form
dedup, a shareable verdict cache, and an optional worker pool::

    import repro
    from repro import Read, Insert, Delete

    ops = {
        "titles": Read("bib/book/title"),
        "restock": Insert("bib/book", "<restock/>"),
        "purge": Delete("bib/book"),
    }
    matrix = repro.analyze(ops)                      # ConflictMatrix
    matrix.may_conflict("titles", "purge")           # True
    matrix.discharge_reason("titles", "restock")     # how it was settled
    repro.analyze(ops, mode="schedule")              # interference-free phases

    config = repro.AnalysisConfig(jobs=4, index=True, containment=True)
    repro.analyze(ops, config=config)

Hold a :class:`BatchAnalyzer` directly when you need incremental
maintenance (``add_op``/``remove_op``) or cache snapshots.

Package map:

* :mod:`repro.xml` — unordered labeled trees, XML parsing/serialization,
  isomorphism, tree enumeration, random documents.
* :mod:`repro.patterns` — tree patterns, the XPath fragment, embedding
  evaluation, pattern containment.
* :mod:`repro.automata` — NFAs and weak/strong matching of linear patterns.
* :mod:`repro.operations` — ``READ`` / ``INSERT`` / ``DELETE`` semantics.
* :mod:`repro.conflicts` — the conflict engine (the paper's contribution).
* :mod:`repro.lang` — the pidgin update language and dependence analysis.
* :mod:`repro.workloads` — reproducible generators for the experiments.
* :mod:`repro.resilience` — cooperative budgets, quarantine, and fault
  injection: conflict detection is NP-hard (Theorems 4 and 6), so
  decisions can be bounded by wall-clock/step budgets and degrade to a
  conservative ``UNKNOWN`` carrying a machine-readable reason::

      detector = ConflictDetector(deadline_s=2.0, max_steps=200_000)
      report = detector.read_insert(read, insert)
      if report.degraded:        # timeout / step_limit, never cached
          print(report.reason)

* :mod:`repro.service` — a long-running HTTP/JSON daemon over the engine
  (``repro serve``): warm compile caches, a persistent verdict cache,
  bounded admission (429 on overload), and graceful SIGTERM drain.
  ``ConflictService``, ``ServiceConfig``, and ``ServiceClient`` are
  importable from the top level but loaded lazily, so library users who
  never serve pay nothing for the HTTP stack.
* :mod:`repro.replication` — the replication & conflict-resolution
  scenario engine (``docs/REPLICATION.md``): N replicas of one document
  edit concurrently, sync rounds classify concurrent pairs through the
  conflict engine (in-process or a live service endpoint), certified
  conflicts go through pluggable resolvers, and every replica's tree is
  a deterministic replay of the surviving operations — convergence by
  construction, checked with tree isomorphism.  ``repro replay`` runs
  declarative scenario files; also exported lazily.
"""

from repro.compile import (
    CompiledArtifact,
    PatternCompiler,
    global_compiler,
    reset_global_compiler,
)
from repro.conflicts import (
    AnalysisConfig,
    BatchAnalyzer,
    ConflictDetector,
    ConflictKind,
    ConflictMatrix,
    ConflictReport,
    DetectorConfig,
    Operation,
    PatternIndex,
    StaticProfile,
    Verdict,
    VerdictCache,
    analyze,
    conflict_matrix,
    is_witness,
    minimize_witness,
    parallel_schedule,
)
from repro.errors import BudgetExceeded, CacheCorrupt, ReproError
from repro.operations import Delete, Insert, Read, UpdateResult
from repro.patterns import TreePattern, evaluate, parse_xpath, to_xpath
from repro.resilience import Budget, budget_scope, current_budget
from repro.xml import XMLTree, build_tree, parse, serialize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analyze",
    "AnalysisConfig",
    "ConflictDetector",
    "DetectorConfig",
    "ConflictKind",
    "ConflictReport",
    "Verdict",
    "BatchAnalyzer",
    "VerdictCache",
    "Operation",
    "ConflictMatrix",
    "PatternIndex",
    "StaticProfile",
    "conflict_matrix",
    "parallel_schedule",
    "is_witness",
    "minimize_witness",
    "PatternCompiler",
    "CompiledArtifact",
    "global_compiler",
    "reset_global_compiler",
    "Read",
    "Insert",
    "Delete",
    "UpdateResult",
    "TreePattern",
    "parse_xpath",
    "to_xpath",
    "evaluate",
    "XMLTree",
    "build_tree",
    "parse",
    "serialize",
    "ReproError",
    "Budget",
    "budget_scope",
    "current_budget",
    "BudgetExceeded",
    "CacheCorrupt",
    "ConflictService",
    "ServiceConfig",
    "ServiceClient",
    "ReplicationSession",
    "InProcessBackend",
    "ServiceBackend",
    "Scenario",
    "ScenarioResult",
    "load_scenario",
    "run_scenario",
    "scenario_from_dict",
    "BUILTIN_RESOLVERS",
    "random_replication_scenario",
]

# The service names resolve lazily (PEP 562): importing repro must not
# drag in http.server and the admission machinery for library users.
_LAZY_EXPORTS = {
    "ConflictService": "repro.service.server",
    "ServiceConfig": "repro.service.config",
    "ServiceClient": "repro.service.client",
    # Replication scenario engine (docs/REPLICATION.md) — lazy for the
    # same reason as the service tier: pure pair-checking users never
    # touch sessions, resolvers, or the scenario DSL.
    "ReplicationSession": "repro.replication",
    "InProcessBackend": "repro.replication",
    "ServiceBackend": "repro.replication",
    "Scenario": "repro.replication",
    "ScenarioResult": "repro.replication",
    "load_scenario": "repro.replication",
    "run_scenario": "repro.replication",
    "scenario_from_dict": "repro.replication",
    "BUILTIN_RESOLVERS": "repro.replication",
    "random_replication_scenario": "repro.workloads.replication",
}


def __getattr__(name: str):  # type: ignore[no-untyped-def]
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
