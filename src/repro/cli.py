"""Command-line interface: ``python -m repro <command> ...``.

The subcommands expose the library's main entry points:

* ``eval``      — evaluate an XPath pattern against a document;
* ``check``     — decide a read-update conflict (the core question);
* ``commute``   — decide whether two updates commute;
* ``matrix``    — decide every pair of a named operation catalogue;
* ``schedule``  — partition a catalogue into interference-free batches;
* ``analyze``   — dependence analysis / optimization of a pidgin program;
* ``validate``  — DTD validation of a document;
* ``serve``     — run the long-running conflict-analysis server
  (``docs/SERVICE.md``): warm caches, admission control, graceful
  SIGTERM drain;
* ``cluster serve`` — the fault-tolerant sharded tier: N supervised
  shard processes behind a health-checked consistent-hash router
  (``docs/SERVICE.md``, "Sharding & failover");
* ``cache``     — operate on verdict-cache snapshots: ``inspect`` one,
  or ``merge`` several into one;
* ``replay``    — run a replication scenario file (``docs/REPLICATION.md``)
  against the in-process engine or a live service/cluster endpoint:
  exit ``0`` when the session converged, ``1`` when replicas diverged.

Exit codes for the decision commands (``check``/``commute``/``matrix``/
``schedule``): ``0`` = no conflict / valid, ``1`` = conflict / invalid,
``2`` = undecided within the search budget, ``3`` = *degraded* — the
resilience layer forced at least one conservative ``UNKNOWN`` (budget
timeout, step limit, or worker crash; the reason travels in the verdict).
Precedence when several apply: ``1`` > ``3`` > ``2`` > ``0``.

The decision commands take ``--timeout SECONDS`` and ``--max-steps N``
(cooperative per-decision budgets: exceeding either yields ``UNKNOWN``
with reason ``timeout``/``step_limit`` instead of running away);
``matrix`` and ``schedule`` additionally take ``--retries N`` for the
worker-pool quarantine machinery (see ``docs/RESILIENCE.md``).

``matrix`` and ``schedule`` read the catalogue as JSON — a mapping from
operation name to spec::

    {"titles":  {"op": "read",   "xpath": "bib/book/title"},
     "restock": {"op": "insert", "xpath": "bib/book", "xml": "<restock/>"},
     "purge":   {"op": "delete", "xpath": "bib/book"}}

Both take ``--jobs N`` (decide undecided unique pairs across N worker
processes; ``0`` = all cores) and ``--cache FILE`` (load a verdict-cache
snapshot if it exists, save it back after).  ``check``, ``commute``,
``matrix`` and ``schedule`` accept ``--json`` for machine-readable
output with a stable schema (verdict, kind, method, notes, witness
sketch, stats).

Every subcommand additionally accepts the observability flags
(``docs/OBSERVABILITY.md``):

* ``--stats`` — after the command, print the per-query breakdown: which
  algorithm path ran, the tracing spans at or above ``--stats-min-ms``,
  and a counter snapshot (detector-local + engine-global);
* ``--trace FILE`` — write every tracing span as one JSON object per line
  to ``FILE`` (append mode).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro import obs
from repro.conflicts.batch import BatchAnalyzer, Operation, VerdictCache
from repro.conflicts.detector import ConflictDetector, DetectorConfig
from repro.conflicts.semantics import ConflictKind, ConflictReport, Verdict
from repro.errors import ReproError
from repro.lang.analysis import (
    dependence_graph,
    find_redundant_reads,
    hoist_reads,
    optimize,
)
from repro.lang.parser import parse_program
from repro.operations.ops import Delete, Insert, Read, UpdateOp
from repro.patterns.xpath import parse_xpath
from repro.schema.dtd import DTD
from repro.schema.validator import validate as dtd_validate
from repro.xml.parser import parse as parse_xml
from repro.xml.serializer import serialize

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    sinks: list = []
    ring: obs.RingBufferSink | None = None
    if args.trace:
        try:
            sinks.append(obs.JsonlSink(args.trace))
        except OSError as exc:
            print(f"error: cannot open trace file: {exc}", file=sys.stderr)
            return 64
    if args.stats:
        ring = obs.RingBufferSink()
        sinks.append(ring)
    if not sinks:
        try:
            return args.handler(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 64
    with obs.tracing(*sinks):
        try:
            code = args.handler(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 64
        if ring is not None:
            _print_stats(args, ring)
    return code


def _print_stats(args: argparse.Namespace, ring: obs.RingBufferSink) -> None:
    """The ``--stats`` per-query breakdown (path, spans, counters)."""
    detector: ConflictDetector | None = getattr(args, "_detector", None)
    print("--- stats ---")
    if detector is not None:
        counters = detector.metrics()["counters"]
        paths = sorted(
            key.split("path=", 1)[1].rstrip("}")
            for key in counters
            if key.startswith("conflict.queries_total{")
        )
        if paths:
            print(f"path: {', '.join(paths)}")
    threshold = args.stats_min_ms
    print(f"spans (>= {threshold:g} ms):")
    shown = 0
    for record in ring.spans():
        if record["dur_ms"] < threshold:
            continue
        shown += 1
        indent = "  " * record["depth"]
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(record["attrs"].items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        print(f"  {indent}{record['name']:<28} {record['dur_ms']:8.3f} ms{suffix}")
    if not shown:
        print("  (none)")
    merged = obs.global_metrics().snapshot()
    if detector is not None:
        merged = obs.global_metrics().merged_with(detector.metrics_registry)
    print("counters:")
    if not merged["counters"]:
        print("  (none)")
    for key in sorted(merged["counters"]):
        print(f"  {key:<44} {merged['counters'][key]}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conflict detection for XPath-driven XML updates "
        "(Raghavachari & Shmueli, EDBT 2006).",
    )
    # Observability flags, shared by every subcommand via a parent parser.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--stats",
        action="store_true",
        help="print a per-query breakdown after the command (path taken, "
        "tracing spans, counter snapshot)",
    )
    common.add_argument(
        "--stats-min-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="only show spans at least this long in --stats output",
    )
    common.add_argument(
        "--trace",
        metavar="FILE",
        help="append tracing spans to FILE as JSON-lines",
    )
    sub = parser.add_subparsers(required=True, parser_class=argparse.ArgumentParser)

    def add_command(name: str, **kwargs):  # type: ignore[no-untyped-def]
        return sub.add_parser(name, parents=[common], **kwargs)

    p_eval = add_command("eval", help="evaluate an XPath pattern on a document")
    p_eval.add_argument("--xpath", required=True)
    _add_document_args(p_eval)
    p_eval.add_argument(
        "--subtrees", action="store_true", help="print the selected subtrees"
    )
    p_eval.set_defaults(handler=_cmd_eval)

    p_check = add_command("check", help="decide a read-update conflict")
    p_check.add_argument("--read", required=True, help="read XPath")
    group = p_check.add_mutually_exclusive_group(required=True)
    group.add_argument("--insert", help="insert XPath")
    group.add_argument("--delete", help="delete XPath")
    p_check.add_argument(
        "--xml", default="<x/>", help="XML inserted by --insert (default <x/>)"
    )
    p_check.add_argument(
        "--kind",
        choices=[k.value for k in ConflictKind],
        default="node",
        help="conflict semantics (default: node)",
    )
    p_check.add_argument(
        "--budget", type=int, default=5,
        help="witness-size cap for branching reads (default 5)",
    )
    _add_resilience_args(p_check)
    p_check.add_argument(
        "--witness", action="store_true", help="print a witness document"
    )
    p_check.add_argument(
        "--schema",
        help="path to a DTD: only documents valid against it count as "
        "witnesses (schema-constrained detection; exit 2 when no valid "
        "witness is found within the budget)",
    )
    _add_json_arg(p_check)
    p_check.set_defaults(handler=_cmd_check)

    p_commute = add_command("commute", help="decide whether two updates commute")
    for index in ("1", "2"):
        group2 = p_commute.add_mutually_exclusive_group(required=True)
        group2.add_argument(f"--insert{index}", help=f"update {index}: insert XPath")
        group2.add_argument(f"--delete{index}", help=f"update {index}: delete XPath")
        p_commute.add_argument(
            f"--xml{index}", default="<x/>", help=f"XML for --insert{index}"
        )
    p_commute.add_argument("--budget", type=int, default=4)
    _add_resilience_args(p_commute)
    p_commute.add_argument("--witness", action="store_true")
    _add_json_arg(p_commute)
    p_commute.set_defaults(handler=_cmd_commute)

    p_matrix = add_command(
        "matrix", help="decide every pair of a named operation catalogue"
    )
    _add_catalogue_args(p_matrix)
    p_matrix.add_argument(
        "--render", action="store_true",
        help="print the full matrix table (default prints pair verdicts)",
    )
    p_matrix.set_defaults(handler=_cmd_matrix)

    p_schedule = add_command(
        "schedule",
        help="partition a catalogue into interference-free parallel batches",
    )
    _add_catalogue_args(p_schedule)
    p_schedule.set_defaults(handler=_cmd_schedule)

    p_analyze = add_command("analyze", help="analyze a pidgin update program")
    p_analyze.add_argument("program", help="path to the program ('-' for stdin)")
    p_analyze.add_argument(
        "--optimize", action="store_true", help="apply read-CSE and print the result"
    )
    p_analyze.add_argument(
        "--hoist", action="store_true",
        help="hoist reads above non-conflicting updates and print the result",
    )
    p_analyze.set_defaults(handler=_cmd_analyze)

    p_validate = add_command("validate", help="validate a document against a DTD")
    p_validate.add_argument("--dtd", required=True, help="path to DTD text")
    _add_document_args(p_validate)
    p_validate.set_defaults(handler=_cmd_validate)

    p_serve = add_command(
        "serve",
        help="run the long-running conflict-analysis HTTP server",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 8466; 0 binds an ephemeral port, printed "
        "on the 'listening' line for scripts to parse)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="decision worker threads (default 4)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="admitted-but-waiting requests before new ones get 429 "
        "(default 64)",
    )
    p_serve.add_argument(
        "--cache", metavar="FILE",
        help="persistent verdict-cache snapshot: loaded (with salvage) on "
        "boot, written periodically and on drain",
    )
    p_serve.add_argument(
        "--snapshot-interval", type=float, default=30.0, metavar="SECONDS",
        help="seconds between periodic cache snapshots (default 30)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-decision deadline applied to requests that carry "
        "no deadline_ms of their own",
    )
    p_serve.add_argument(
        "--log-requests", action="store_true",
        help="emit an access-log line per request to stderr",
    )
    p_serve.add_argument(
        "--access-log", metavar="FILE",
        help="append one structured JSONL record per request (id, route, "
        "verdict, cache hit, queue wait, timings, outcome); aggregate "
        "with 'repro report'",
    )
    p_serve.add_argument(
        "--shard-id", type=int, default=None, metavar="N",
        help="run as shard N of a cluster: the cache snapshot becomes "
        "<path>.shardN, /healthz reports the shard identity, and the "
        "cluster fault rules (shard_kill/shard_hang) arm against this "
        "shard's keys.  Set by 'repro cluster serve'; the shard "
        "generation is read from $REPRO_SHARD_GENERATION",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_cluster = add_command(
        "cluster",
        help="run the fault-tolerant sharded service tier",
    )
    cluster_sub = p_cluster.add_subparsers(
        required=True, dest="cluster_command",
        parser_class=argparse.ArgumentParser,
    )
    p_cluster_serve = cluster_sub.add_parser(
        "serve",
        help="supervise N shard processes behind a health-checked "
        "consistent-hash router (docs/SERVICE.md, 'Sharding & failover')",
    )
    p_cluster_serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface the router binds (default loopback)",
    )
    p_cluster_serve.add_argument(
        "--port", type=int, default=0,
        help="router TCP port (default 0: ephemeral, printed on the "
        "'listening' line for scripts to parse)",
    )
    p_cluster_serve.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="supervised shard processes (default 3)",
    )
    p_cluster_serve.add_argument(
        "--workers-per-shard", type=int, default=2, metavar="N",
        help="decision worker threads inside each shard (default 2)",
    )
    p_cluster_serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="each shard's admission queue depth (default 64)",
    )
    p_cluster_serve.add_argument(
        "--cache", metavar="FILE",
        help="shared verdict-cache base path; shard N persists to "
        "FILE.shardN",
    )
    p_cluster_serve.add_argument(
        "--snapshot-interval", type=float, default=30.0, metavar="SECONDS",
        help="per-shard periodic cache snapshot interval (default 30)",
    )
    p_cluster_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-decision deadline forwarded to each shard",
    )
    p_cluster_serve.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between shard liveness probes (default 0.5)",
    )
    p_cluster_serve.add_argument(
        "--unhealthy-after", type=int, default=3, metavar="K",
        help="consecutive probe-or-request failures that evict a shard "
        "from routing (default 3)",
    )
    p_cluster_serve.add_argument(
        "--healthy-after", type=int, default=2, metavar="K",
        help="consecutive probe successes that restore an evicted shard "
        "(default 2)",
    )
    p_cluster_serve.add_argument(
        "--log-requests", action="store_true",
        help="emit access-log lines from the router and every shard",
    )
    p_cluster_serve.set_defaults(handler=_cmd_cluster_serve)
    p_cluster.set_defaults(handler=_cmd_cluster_serve)

    p_report = add_command(
        "report",
        help="aggregate trace/access JSONL files into latency and "
        "hit-rate tables",
    )
    p_report.add_argument(
        "files", nargs="+", metavar="FILE",
        help="JSONL inputs: --trace span files and/or --access-log files "
        "(mixed freely; unknown lines are skipped)",
    )
    _add_json_arg(p_report)
    p_report.set_defaults(handler=_cmd_report)

    p_cache = add_command(
        "cache", help="inspect or merge verdict-cache snapshots"
    )
    cache_sub = p_cache.add_subparsers(
        required=True, dest="cache_command", parser_class=argparse.ArgumentParser
    )
    p_inspect = cache_sub.add_parser(
        "inspect", help="entry count, version, and per-kind breakdown"
    )
    p_inspect.add_argument("snapshot", help="path to a snapshot file")
    _add_json_arg(p_inspect)
    p_merge = cache_sub.add_parser(
        "merge", help="merge N snapshots into one (existing entries win)"
    )
    p_merge.add_argument(
        "--out", required=True, metavar="FILE",
        help="path the merged snapshot is written to (parents created)",
    )
    p_merge.add_argument(
        "snapshots", nargs="+", help="input snapshot files, in priority order"
    )
    _add_json_arg(p_merge)
    p_cache.set_defaults(handler=_cmd_cache)

    p_replay = add_command(
        "replay",
        help="run a replication scenario (see docs/REPLICATION.md)",
    )
    p_replay.add_argument("scenario", help="path to a scenario JSON file")
    p_replay.add_argument(
        "--resolver",
        metavar="NAME",
        help="override the scenario's resolver "
        "(local-wins, remote-wins, last-writer-wins)",
    )
    p_replay.add_argument(
        "--service-port",
        type=int,
        metavar="PORT",
        help="classify pairs through a live repro serve / cluster serve "
        "endpoint on this port instead of in-process",
    )
    p_replay.add_argument(
        "--service-host",
        default="127.0.0.1",
        metavar="HOST",
        help="host of the service endpoint (default 127.0.0.1)",
    )
    p_replay.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="per-pair deadline forwarded to the service backend",
    )
    _add_json_arg(p_replay)
    p_replay.set_defaults(handler=_cmd_replay)

    return parser


def _add_document_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--file", help="path to an XML document")
    group.add_argument("--xml-text", help="inline XML document text")


def _add_json_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-decision deadline; an exceeded decision degrades to "
        "UNKNOWN with reason 'timeout' (exit code 3)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-decision search-step cap; an exceeded decision degrades "
        "to UNKNOWN with reason 'step_limit' (exit code 3)",
    )
    _add_compile_args(parser)


def _add_compile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compile-cache-size", type=int, default=None, metavar="N",
        help="entries per compile-cache family (interned patterns, NFAs, "
        "matching words, ...).  Default shares the process-wide cache; "
        "0 disables compilation entirely (the uncached reference path)",
    )
    parser.add_argument(
        "--kernel", choices=["bitset", "sets"], default=None,
        help="matching kernel for the PTIME decision path: 'bitset' "
        "(default, bit-parallel) or 'sets' (the frozenset reference "
        "oracle — slower, useful for cross-checking)",
    )


def _compile_config_kwargs(args: argparse.Namespace) -> dict:
    """The :class:`DetectorConfig` compile knobs implied by the CLI flags."""
    kwargs: dict = {}
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        kwargs["kernel"] = kernel
    size = getattr(args, "compile_cache_size", None)
    if size is not None:
        if size <= 0:
            kwargs["compile_cache"] = False
        else:
            kwargs["compile_cache_size"] = size
    return kwargs


def _add_catalogue_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ops", required=True, metavar="FILE",
        help="JSON catalogue: {name: {op: read|insert|delete, xpath, xml?}} "
        "('-' reads stdin)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for undecided pairs (1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--kind",
        choices=[k.value for k in ConflictKind],
        default="node",
        help="conflict semantics for read-update pairs (default: node)",
    )
    parser.add_argument(
        "--budget", type=int, default=5,
        help="witness-size cap for branching/commutativity queries (default 5)",
    )
    parser.add_argument(
        "--cache", metavar="FILE",
        help="verdict-cache snapshot: loaded if it exists, saved back after",
    )
    _add_resilience_args(parser)
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-dispatches of a crashed/timed-out single-pair chunk before "
        "the pair is quarantined as UNKNOWN (default 2)",
    )
    parser.add_argument(
        "--no-index", action="store_true",
        help="disable the static pattern index pre-pass (every non-trivial "
        "pair goes through cache + decision procedure)",
    )
    parser.add_argument(
        "--no-containment", action="store_true",
        help="disable containment propagation across subsumed read patterns",
    )
    _add_json_arg(parser)


def _load_document(args: argparse.Namespace):  # type: ignore[no-untyped-def]
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            return parse_xml(handle.read())
    return parse_xml(args.xml_text)


def _cmd_eval(args: argparse.Namespace) -> int:
    doc = _load_document(args)
    pattern = parse_xpath(args.xpath)
    read = Read(pattern)
    nodes = sorted(read.apply(doc))
    print(f"{len(nodes)} node(s) selected: {nodes}")
    if args.subtrees:
        for node in nodes:
            print(f"  #{node}: {serialize(doc, node=node)}")
    return 0


def _make_update(path: str | None, delete_path: str | None, xml: str) -> UpdateOp:
    if path is not None:
        return Insert(path, xml)
    assert delete_path is not None
    return Delete(delete_path)


_VERDICT_EXIT = {
    Verdict.NO_CONFLICT: 0,
    Verdict.CONFLICT: 1,
    Verdict.UNKNOWN: 2,
}

#: Exit code for a degraded run: the resilience layer forced at least one
#: conservative UNKNOWN (timeout / step_limit / worker_crash).
EXIT_DEGRADED = 3


def _report_exit_code(report: ConflictReport) -> int:
    if report.verdict is Verdict.UNKNOWN and report.degraded:
        return EXIT_DEGRADED
    return _VERDICT_EXIT[report.verdict]


def _report_payload(command: str, report: ConflictReport) -> dict:
    """The stable ``--json`` schema for one conflict decision."""
    witness = None
    if report.witness is not None:
        witness = {
            "sketch": report.witness.sketch(),
            "xml": serialize(report.witness),
        }
    return {
        "command": command,
        "verdict": report.verdict.value,
        "kind": report.kind.value,
        "method": report.method,
        "reason": report.reason,
        "notes": list(report.notes),
        "witness": witness,
        "stats": dict(report.stats),
    }


def _report_exit(
    report: ConflictReport, show_witness: bool, as_json: bool = False,
    command: str = "check",
) -> int:
    if as_json:
        print(json.dumps(_report_payload(command, report), indent=2))
        return _report_exit_code(report)
    print(f"verdict: {report.verdict.value}   (method: {report.method})")
    if report.degraded:
        print(f"degraded: {report.reason}")
    for note in report.notes:
        print(f"note: {note}")
    if show_witness and report.witness is not None:
        print("witness document:")
        for line in report.witness.sketch().splitlines():
            print(f"  {line}")
        print(f"as XML: {serialize(report.witness)}")
    return _report_exit_code(report)


def _cmd_check(args: argparse.Namespace) -> int:
    read = Read(args.read)
    update = _make_update(args.insert, args.delete, args.xml)
    if args.schema:
        from repro.schema.conflicts import decide_conflict_under_schema

        with open(args.schema, encoding="utf-8") as handle:
            dtd = DTD.parse(handle.read())
        report = decide_conflict_under_schema(
            read, update, dtd, ConflictKind(args.kind),
            max_size=max(args.budget, 6),
        )
        return _report_exit(report, args.witness, args.json)
    detector = ConflictDetector(
        kind=ConflictKind(args.kind),
        exhaustive_cap=args.budget,
        deadline_s=args.timeout,
        max_steps=args.max_steps,
        **_compile_config_kwargs(args),
    )
    args._detector = detector  # _print_stats reads its metrics for --stats
    report = detector.read_update(read, update)
    return _report_exit(report, args.witness, args.json)


def _cmd_commute(args: argparse.Namespace) -> int:
    detector = ConflictDetector(
        exhaustive_cap=args.budget,
        deadline_s=args.timeout,
        max_steps=args.max_steps,
        **_compile_config_kwargs(args),
    )
    args._detector = detector  # _print_stats reads its metrics for --stats
    first = _make_update(args.insert1, args.delete1, args.xml1)
    second = _make_update(args.insert2, args.delete2, args.xml2)
    report = detector.update_update(first, second)
    return _report_exit(report, args.witness, args.json, command="commute")


def _load_catalogue(path: str) -> dict[str, Operation]:
    """Parse the ``matrix``/``schedule`` JSON catalogue format.

    The spec grammar is shared with the service wire protocol
    (:mod:`repro.service.protocol`), so a catalogue file works unchanged
    as the ``ops`` object of a ``POST /v1/matrix`` body.
    """
    from repro.service.protocol import catalogue_from_specs

    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"catalogue is not valid JSON: {exc}") from exc
    return catalogue_from_specs(data)


def _make_analyzer(args: argparse.Namespace) -> BatchAnalyzer:
    cache = None
    if args.cache and os.path.exists(args.cache):
        cache = VerdictCache.load(args.cache)
    config = DetectorConfig(
        kind=ConflictKind(args.kind),
        exhaustive_cap=args.budget,
        deadline_s=args.timeout,
        max_steps=args.max_steps,
        **_compile_config_kwargs(args),
    )
    return BatchAnalyzer(
        config,
        jobs=args.jobs,
        cache=cache,
        retries=args.retries,
        index=not args.no_index,
        containment=not args.no_containment,
    )


def _matrix_exit(matrix) -> int:  # type: ignore[no-untyped-def]
    counts = matrix.counts()
    if counts[Verdict.CONFLICT.value]:
        return 1
    if matrix.degraded_count():
        return EXIT_DEGRADED
    if counts[Verdict.UNKNOWN.value]:
        return 2
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    catalogue = _load_catalogue(args.ops)
    analyzer = _make_analyzer(args)
    matrix = analyzer.analyze(catalogue)
    if args.cache:
        analyzer.cache.save(args.cache)
    if args.json:
        payload = {
            "command": "matrix",
            "jobs": analyzer.jobs,
            "quarantine": analyzer.quarantine,
            **matrix.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return _matrix_exit(matrix)
    counts = matrix.counts()
    discharge = matrix.discharge_counts()
    statically = discharge["index"] + discharge["containment"]
    degraded_count = matrix.degraded_count()
    degraded = f", {degraded_count} degraded" if degraded_count else ""
    static = f", {statically} discharged statically" if statically else ""
    print(
        f"{len(matrix.names)} operation(s), {sum(counts.values())} pair(s): "
        f"{counts['conflict']} conflict, {counts['no-conflict']} compatible, "
        f"{counts['unknown']} unknown{degraded}{static}"
    )
    if args.render:
        print(matrix.render())
    elif matrix.is_sparse:
        for entry in matrix.to_dict()["verdicts"]:
            if entry["verdict"] != Verdict.NO_CONFLICT.value:
                suffix = (
                    f" (degraded: {entry['reason']})" if entry["reason"] else ""
                )
                print(
                    f"  {entry['first']} <-> {entry['second']}: "
                    f"{entry['verdict']} (x{entry['multiplicity']}){suffix}"
                )
    else:
        for (first, second), verdict in sorted(matrix.verdicts.items()):
            if verdict is not Verdict.NO_CONFLICT:
                reason = matrix.reasons.get((first, second))
                suffix = f" (degraded: {reason})" if reason else ""
                print(f"  {first} <-> {second}: {verdict.value}{suffix}")
    if analyzer.quarantine:
        print("quarantined pairs (conservative UNKNOWN, not cached):")
        for entry in analyzer.quarantine:
            print(
                f"  {entry['first']} <-> {entry['second']}: {entry['reason']}"
            )
    return _matrix_exit(matrix)


def _cmd_schedule(args: argparse.Namespace) -> int:
    catalogue = _load_catalogue(args.ops)
    analyzer = _make_analyzer(args)
    matrix = analyzer.analyze(catalogue)
    if args.cache:
        analyzer.cache.save(args.cache)
    batches = analyzer.schedule()
    # Degraded pairs are scheduled conservatively (UNKNOWN = may conflict),
    # so the batches are safe either way — but exit 3 tells callers some
    # separation may be unnecessary and a re-run could merge phases.
    degraded_count = matrix.degraded_count()
    exit_code = EXIT_DEGRADED if degraded_count else 0
    if args.json:
        payload = {
            "command": "schedule",
            "jobs": analyzer.jobs,
            "batches": batches,
            "quarantine": analyzer.quarantine,
            "stats": {
                "operations": len(catalogue),
                "batches": len(batches),
                "largest_batch": max((len(b) for b in batches), default=0),
                "degraded": degraded_count,
            },
        }
        print(json.dumps(payload, indent=2))
        return exit_code
    print(f"{len(batches)} phase(s) for {len(catalogue)} operation(s):")
    for index, batch in enumerate(batches, start=1):
        print(f"  phase {index}: {', '.join(batch)}")
    if analyzer.quarantine:
        print("quarantined pairs (treated as may-conflict):")
        for entry in analyzer.quarantine:
            print(
                f"  {entry['first']} <-> {entry['second']}: {entry['reason']}"
            )
    return exit_code


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.program == "-":
        source = sys.stdin.read()
    else:
        with open(args.program, encoding="utf-8") as handle:
            source = handle.read()
    program = parse_program(source)
    report = dependence_graph(program)
    print(f"{len(program)} statement(s); may-conflict edges:")
    for edge in report.edges:
        if edge.reason == "definition":
            continue
        print(
            f"  [{edge.earlier}] <-> [{edge.later}] ({edge.reason}) "
            f"on ${edge.variable}"
        )
    redundant = find_redundant_reads(report)
    for r in redundant:
        print(f"redundant read: [{r.duplicate}] duplicates [{r.original}]")
    if args.optimize:
        result = optimize(program)
        print("optimized program:")
        for statement in result.program:
            print(f"  {statement}")
        if result.aliases:
            print(f"aliases: {result.aliases}")
    if args.hoist:
        hoisted = hoist_reads(program)
        print("hoisted program:")
        for statement in hoisted.program:
            print(f"  {statement}")
        if hoisted.moves:
            print(f"moves (old index -> new index): {hoisted.moves}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    with open(args.dtd, encoding="utf-8") as handle:
        dtd = DTD.parse(handle.read())
    doc = _load_document(args)
    violations = dtd_validate(doc, dtd)
    if not violations:
        print("valid")
        return 0
    print(f"{len(violations)} violation(s):")
    for violation in violations:
        print(f"  {violation}")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the one-shot commands should not pay for the
    # service stack (http.server, admission machinery) at startup.
    import signal
    import threading

    from repro.service import ConflictService, ServiceConfig
    from repro.service.config import DEFAULT_PORT

    try:
        shard_generation = int(os.environ.get("REPRO_SHARD_GENERATION", "0"))
    except ValueError:
        shard_generation = 0
    config = ServiceConfig(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_path=args.cache,
        snapshot_interval_s=args.snapshot_interval,
        default_deadline_ms=(
            args.timeout * 1000.0 if args.timeout is not None else None
        ),
        log_requests=args.log_requests,
        access_log_path=args.access_log,
        shard_id=args.shard_id,
        shard_generation=shard_generation,
    )
    service = ConflictService(config)
    service.start()
    # Scripts (the CI smoke job, the SIGTERM test) parse this line for
    # the bound port, so its shape is part of the CLI contract.
    print(
        f"repro service listening on http://{service.host}:{service.port}",
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    serve_thread = threading.Thread(
        target=service.serve_forever, name="repro-serve", daemon=True
    )
    serve_thread.start()
    # Polling wait keeps the main thread responsive to signals on every
    # platform (a bare Event.wait() can swallow the wakeup mid-acquire).
    while not stop.wait(0.2):
        pass
    print("repro service draining: finishing admitted requests", flush=True)
    service.drain()
    print("repro service stopped", flush=True)
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster import ClusterConfig, ClusterRouter

    # REPRO_FAULTS in this process would arm the *router*; chaos drills
    # want the shard children armed instead.  REPRO_FAULTS_FOR_SHARDS is
    # forwarded to every shard as its REPRO_FAULTS (seed rides along).
    shard_env: dict[str, str] = {}
    shard_faults = os.environ.get("REPRO_FAULTS_FOR_SHARDS")
    if shard_faults:
        shard_env["REPRO_FAULTS"] = shard_faults
        seed = os.environ.get("REPRO_FAULTS_SEED")
        if seed:
            shard_env["REPRO_FAULTS_SEED"] = seed

    config = ClusterConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        queue_depth=args.queue_depth,
        cache_path=args.cache,
        snapshot_interval_s=args.snapshot_interval,
        default_deadline_ms=(
            args.timeout * 1000.0 if args.timeout is not None else None
        ),
        probe_interval_s=args.probe_interval,
        unhealthy_after=args.unhealthy_after,
        healthy_after=args.healthy_after,
        log_requests=args.log_requests,
        shard_env=shard_env or None,
    )
    router = ClusterRouter(config)
    router.start()
    # Same contract as 'repro serve': scripts parse this line for the port.
    print(
        f"repro cluster listening on http://{router.host}:{router.port} "
        f"({config.shards} shard(s))",
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    serve_thread = threading.Thread(
        target=router.serve_forever, name="repro-cluster-serve", daemon=True
    )
    serve_thread.start()
    while not stop.wait(0.2):
        pass
    print("repro cluster draining: finishing admitted requests", flush=True)
    router.drain()
    print("repro cluster stopped", flush=True)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import build_report, load_records, render_report

    spans, access, skipped = load_records(args.files)
    report = build_report(spans, access, skipped)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.cache_command == "inspect":
        return _cmd_cache_inspect(args)
    return _cmd_cache_merge(args)


def _kind_counts(entries: list[dict]) -> dict[str, int]:
    """Pair-kind histogram (``"Delete/Read": 3``) from exported entries.

    The first element of an exported canonical key is the operation's
    class name, so the breakdown needs no re-parsing of the snapshot.
    """
    counts: dict[str, int] = {}
    for entry in entries:
        pair = "/".join(sorted((entry["a"][0], entry["b"][0])))
        counts[pair] = counts.get(pair, 0) + 1
    return dict(sorted(counts.items()))


def _cmd_cache_inspect(args: argparse.Namespace) -> int:
    import warnings

    from repro.errors import CacheCorruptWarning

    try:
        with open(args.snapshot, encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read snapshot: {exc}") from exc
    try:
        version = json.loads(raw).get("version")
    except (json.JSONDecodeError, AttributeError):
        version = None
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cache = VerdictCache.load(args.snapshot)
    salvage = [
        str(w.message) for w in caught
        if isinstance(w.message, CacheCorruptWarning)
    ]
    entries = cache.export()
    verdict_counts: dict[str, int] = {}
    for entry in entries:
        verdict_counts[entry["verdict"]] = (
            verdict_counts.get(entry["verdict"], 0) + 1
        )
    configs = {tuple(entry["config"]) for entry in entries}
    if args.json:
        payload = {
            "command": "cache-inspect",
            "snapshot": args.snapshot,
            "version": version,
            "corrupt": bool(salvage),
            "salvage": salvage[0] if salvage else None,
            "entries": len(entries),
            "configs": len(configs),
            "by_kind": _kind_counts(entries),
            "by_verdict": dict(sorted(verdict_counts.items())),
        }
        print(json.dumps(payload, indent=2))
        return 1 if salvage else 0
    state = "corrupt (salvaged)" if salvage else f"version {version}"
    print(
        f"{args.snapshot}: {state}, {len(entries)} entr"
        f"{'y' if len(entries) == 1 else 'ies'}, "
        f"{len(configs)} distinct config(s)"
    )
    for message in salvage:
        print(f"  salvage: {message}")
    for pair, count in _kind_counts(entries).items():
        print(f"  {pair:<16} {count}")
    for verdict, count in sorted(verdict_counts.items()):
        print(f"  verdict {verdict:<16} {count}")
    return 1 if salvage else 0


def _cmd_cache_merge(args: argparse.Namespace) -> int:
    merged = VerdictCache()
    inputs = []
    for path in args.snapshots:
        try:
            cache = VerdictCache.load(path)
        except OSError as exc:
            raise ReproError(f"cannot read snapshot: {exc}") from exc
        added = merged.merge(cache)
        inputs.append({"snapshot": path, "entries": len(cache), "added": added})
    merged.save(args.out)
    if args.json:
        payload = {
            "command": "cache-merge",
            "out": args.out,
            "entries": len(merged),
            "inputs": inputs,
        }
        print(json.dumps(payload, indent=2))
        return 0
    for item in inputs:
        print(
            f"{item['snapshot']}: {item['entries']} entr"
            f"{'y' if item['entries'] == 1 else 'ies'}, "
            f"{item['added']} new"
        )
    print(f"wrote {len(merged)} entr{'y' if len(merged) == 1 else 'ies'} "
          f"to {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.errors import ConvergenceError
    from repro.replication import ServiceBackend, load_scenario, run_scenario

    scenario = load_scenario(args.scenario)
    backend = None
    if args.service_port is not None:
        backend = ServiceBackend(
            port=args.service_port,
            host=args.service_host,
            deadline_ms=args.deadline_ms,
        )
    try:
        result = run_scenario(
            scenario, backend=backend, resolver=args.resolver, strict=False
        )
    except ConvergenceError as exc:
        # Only a mid-scenario assert can still raise here (strict=False
        # covers the final report); treat it the same as a diverged run.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if backend is not None:
            backend.close()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.converged and result.error is None else 1
    status = "converged" if result.converged else "DIVERGED"
    print(
        f"{result.name}: {status} "
        f"({result.replicas} replicas, resolver {result.resolver}, "
        f"verdicts {result.verdict_source})"
    )
    print(
        f"  edits {result.edits}, syncs {result.syncs} "
        f"(+{result.syncs_skipped} skipped), "
        f"pairs {result.pairs_classified} classified / "
        f"{result.pairs_conflicting} conflicting / "
        f"{result.pairs_unproven} unproven"
    )
    if result.resolutions:
        breakdown = ", ".join(
            f"{outcome}={count}"
            for outcome, count in sorted(result.resolutions.items())
        )
        print(f"  resolutions: {breakdown}")
    if result.rounds_to_converge is not None:
        print(f"  rounds to converge: {result.rounds_to_converge}")
    if result.lost_updates:
        print(f"  LOST UPDATES: {result.lost_updates}")
    if result.error:
        print(f"  error: {result.error}")
    return 0 if result.converged and result.error is None else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
