"""The pidgin XML-update language: parser, interpreter, dependence analysis."""

from repro.lang.analysis import (
    DependenceEdge,
    DependenceReport,
    OptimizationResult,
    RedundantRead,
    can_swap,
    dependence_graph,
    find_redundant_reads,
    optimize,
)
from repro.lang.ast import (
    AssignStmt,
    DeleteStmt,
    InsertStmt,
    Program,
    ReadStmt,
    Statement,
)
from repro.lang.interp import Environment, ReadResult, run_program
from repro.lang.parser import parse_program

__all__ = [
    "Program",
    "Statement",
    "AssignStmt",
    "ReadStmt",
    "InsertStmt",
    "DeleteStmt",
    "parse_program",
    "run_program",
    "Environment",
    "ReadResult",
    "dependence_graph",
    "DependenceReport",
    "DependenceEdge",
    "can_swap",
    "find_redundant_reads",
    "RedundantRead",
    "optimize",
    "OptimizationResult",
]
