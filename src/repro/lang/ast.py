"""AST for the paper's pidgin update language (Section 1).

The introduction motivates conflict detection with program fragments like::

    x = <doc><B/></doc>
    y = read $x//A
    insert $x/B, <C/>
    z = read $x//C
    delete $x//D

Four statement forms: tree-literal assignment, read, insert, delete.  Paths
are written relative to a tree variable (``$x//A``); they compile to tree
patterns whose root is a wildcard matching the variable's document root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns.pattern import TreePattern
from repro.xml.tree import XMLTree

__all__ = ["Statement", "AssignStmt", "ReadStmt", "InsertStmt", "DeleteStmt", "Program"]


@dataclass(frozen=True)
class AssignStmt:
    """``var = <xml literal>`` — bind a fresh tree to a variable."""

    target: str
    literal: XMLTree
    line: int = 0

    def __str__(self) -> str:
        from repro.xml.serializer import serialize

        return f"{self.target} = {serialize(self.literal)}"


@dataclass(frozen=True)
class ReadStmt:
    """``var = read $src<path>`` — bind the selected node set to ``var``."""

    target: str
    source: str
    pattern: TreePattern
    line: int = 0

    def __str__(self) -> str:
        from repro.patterns.xpath import to_xpath

        return f"{self.target} = read ${self.source}{_render_path(self.pattern)}"


@dataclass(frozen=True)
class InsertStmt:
    """``insert $src<path>, <xml>`` — graft a copy of the literal at each match."""

    source: str
    pattern: TreePattern
    literal: XMLTree
    line: int = 0

    def __str__(self) -> str:
        from repro.xml.serializer import serialize

        return (
            f"insert ${self.source}{_render_path(self.pattern)}, "
            f"{serialize(self.literal)}"
        )


@dataclass(frozen=True)
class DeleteStmt:
    """``delete $src<path>`` — remove the subtree at each match."""

    source: str
    pattern: TreePattern
    line: int = 0

    def __str__(self) -> str:
        return f"delete ${self.source}{_render_path(self.pattern)}"


Statement = AssignStmt | ReadStmt | InsertStmt | DeleteStmt


@dataclass
class Program:
    """A straight-line sequence of statements."""

    statements: list[Statement]

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)


def _render_path(pattern: TreePattern) -> str:
    """Render a variable-relative path: drop the wildcard root."""
    from repro.patterns.xpath import to_xpath

    text = to_xpath(pattern)
    if text.startswith("*"):
        text = text[1:]
    return text
