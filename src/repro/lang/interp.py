"""Interpreter for the pidgin update language (reference semantics).

Trees are mutated in place, as in XJ and the XQuery update proposals the
paper targets; a read binds a set of node references into the environment.
The interpreter exists to *validate* the static analysis: the optimizer's
transformations are only sound if interpreting the transformed program
yields equivalent final state, and the test suite checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramRuntimeError
from repro.lang.ast import AssignStmt, DeleteStmt, InsertStmt, Program, ReadStmt
from repro.operations.ops import Delete, Insert, Read
from repro.xml.tree import NodeId, XMLTree

__all__ = ["ReadResult", "Environment", "run_program"]


@dataclass(frozen=True)
class ReadResult:
    """The value of a read: node references into a named tree."""

    source: str
    nodes: frozenset[NodeId]


@dataclass
class Environment:
    """Final interpreter state: tree variables and read results."""

    trees: dict[str, XMLTree] = field(default_factory=dict)
    reads: dict[str, ReadResult] = field(default_factory=dict)

    def tree(self, name: str) -> XMLTree:
        try:
            return self.trees[name]
        except KeyError:
            raise ProgramRuntimeError(f"undefined tree variable ${name}") from None

    def snapshot_equal(self, other: "Environment") -> bool:
        """Structural equality of final states (used by optimizer tests).

        Tree variables must be pairwise equivalent (same node ids, edges,
        labels — Definition 2); read results must be identical reference
        sets.  Node ids assigned to freshly inserted copies depend on
        insertion order, so callers comparing across *reordered* programs
        should use :func:`repro.xml.isomorphism.isomorphic` per tree
        instead; this strict check suits same-order comparisons.
        """
        if set(self.trees) != set(other.trees) or set(self.reads) != set(other.reads):
            return False
        if any(not self.trees[k].equivalent(other.trees[k]) for k in self.trees):
            return False
        return all(self.reads[k] == other.reads[k] for k in self.reads)


def run_program(program: Program, env: Environment | None = None) -> Environment:
    """Execute ``program``, returning the final environment.

    A fresh environment is used unless one is supplied (supplying one
    allows running a program against pre-built documents).
    """
    env = env if env is not None else Environment()
    for statement in program:
        if isinstance(statement, AssignStmt):
            env.trees[statement.target] = statement.literal.copy()
        elif isinstance(statement, ReadStmt):
            tree = env.tree(statement.source)
            nodes = Read(statement.pattern).apply(tree)
            env.reads[statement.target] = ReadResult(
                statement.source, frozenset(nodes)
            )
        elif isinstance(statement, InsertStmt):
            tree = env.tree(statement.source)
            Insert(statement.pattern, statement.literal).apply_in_place(tree)
        elif isinstance(statement, DeleteStmt):
            tree = env.tree(statement.source)
            Delete(statement.pattern).apply_in_place(tree)
        else:  # pragma: no cover - exhaustive match
            raise ProgramRuntimeError(f"unknown statement {statement!r}")
    return env
