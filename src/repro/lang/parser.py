"""Parser for the pidgin update language.

Line-oriented; ``#`` starts a comment.  Statement forms::

    x = <doc><B/></doc>          # assign a tree literal
    y = read $x//A               # read
    insert $x/B, <C/>            # insert
    delete $x//D                 # delete

A path after ``$var`` must start with ``/`` or ``//`` (or be empty, which
selects the document root — useful for whole-document reads).  It compiles
to a tree pattern with a wildcard root standing for the variable's root.
"""

from __future__ import annotations

import re

from repro.errors import ProgramParseError
from repro.lang.ast import AssignStmt, DeleteStmt, InsertStmt, Program, ReadStmt
from repro.patterns.pattern import TreePattern, WILDCARD
from repro.patterns.xpath import parse_xpath
from repro.xml.parser import parse as parse_xml

__all__ = ["parse_program"]

_ASSIGN_READ = re.compile(r"^(\w+)\s*=\s*read\s+\$(\w+)(\S*)\s*$")
_ASSIGN_TREE = re.compile(r"^(\w+)\s*=\s*(<.*)$")
_INSERT = re.compile(r"^insert\s+\$(\w+)(\S*)\s*,\s*(<.*)$")
_DELETE = re.compile(r"^delete\s+\$(\w+)(\S*)\s*$")


def parse_program(text: str) -> Program:
    """Parse ``text`` into a :class:`Program`.

    Raises :class:`~repro.errors.ProgramParseError` with a line number on
    malformed input.
    """
    statements = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        statements.append(_parse_statement(line, number))
    return Program(statements)


def _parse_statement(line: str, number: int):  # type: ignore[no-untyped-def]
    match = _ASSIGN_READ.match(line)
    if match:
        target, source, path = match.groups()
        return ReadStmt(target, source, _compile_path(path, number), line=number)
    match = _INSERT.match(line)
    if match:
        source, path, literal = match.groups()
        return InsertStmt(
            source,
            _compile_path(path, number),
            _compile_literal(literal, number),
            line=number,
        )
    match = _DELETE.match(line)
    if match:
        source, path = match.groups()
        pattern = _compile_path(path, number)
        if pattern.output == pattern.root:
            raise ProgramParseError(
                "a delete path must select below the document root", number
            )
        return DeleteStmt(source, pattern, line=number)
    match = _ASSIGN_TREE.match(line)
    if match:
        target, literal = match.groups()
        return AssignStmt(target, _compile_literal(literal, number), line=number)
    raise ProgramParseError(f"unrecognized statement: {line!r}", number)


def _compile_path(path: str, number: int) -> TreePattern:
    """``$x`` paths: wildcard root for the variable's document root."""
    path = path.strip()
    if not path:
        pattern = TreePattern(WILDCARD)
        return pattern
    if not path.startswith("/"):
        raise ProgramParseError(
            f"a path after $var must start with '/' or '//': {path!r}", number
        )
    try:
        return parse_xpath(WILDCARD + path)
    except Exception as exc:
        raise ProgramParseError(f"bad path {path!r}: {exc}", number) from exc


def _compile_literal(literal: str, number: int):  # type: ignore[no-untyped-def]
    try:
        return parse_xml(literal.strip())
    except Exception as exc:
        raise ProgramParseError(f"bad XML literal: {exc}", number) from exc
