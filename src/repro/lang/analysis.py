"""Static data-dependence analysis for pidgin programs (the paper's Section 1).

The paper motivates conflict detection as a compiler analysis: if a read
and an update *cannot* conflict, the compiler may reorder them, fuse tree
traversals, or eliminate a recomputed read.  This module implements that
application on straight-line pidgin programs:

* :func:`dependence_graph` — for every ordered statement pair touching the
  same tree variable, query the :class:`ConflictDetector`; an edge means
  "may not be reordered across each other".
* :func:`can_swap` — adjacency-level reorderability.
* :func:`find_redundant_reads` — common-subexpression elimination for
  reads: a later read with the same source and pattern, with no
  potentially-conflicting update in between, can be replaced by the earlier
  read's result (the paper's ``let u = y`` example).
* :func:`optimize` — applies the CSE rewrites and reports them; soundness
  is validated in the test-suite by interpreting original and optimized
  programs and comparing final states.

Analysis is conservative in exactly one place: when the detector returns
``UNKNOWN`` (possible only for branching reads under a bounded search
budget), the pair is treated as conflicting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conflicts.detector import ConflictDetector
from repro.conflicts.semantics import Verdict
from repro.obs import global_metrics, span
from repro.lang.ast import (
    AssignStmt,
    DeleteStmt,
    InsertStmt,
    Program,
    ReadStmt,
    Statement,
)
from repro.operations.ops import Delete, Insert, Read, UpdateOp

__all__ = [
    "DependenceEdge",
    "DependenceReport",
    "dependence_graph",
    "can_swap",
    "find_redundant_reads",
    "optimize",
    "hoist_reads",
    "HoistResult",
]


@dataclass(frozen=True)
class DependenceEdge:
    """A may-conflict edge between statement indices ``earlier < later``."""

    earlier: int
    later: int
    variable: str
    reason: str  # "read-insert", "read-delete", "update-update", ...


@dataclass
class DependenceReport:
    """Result of analyzing a program."""

    program: Program
    edges: list[DependenceEdge] = field(default_factory=list)

    def conflicts_between(self, i: int, j: int) -> bool:
        """Is there an edge between statements ``i`` and ``j`` (either order)?"""
        lo, hi = min(i, j), max(i, j)
        return any(e.earlier == lo and e.later == hi for e in self.edges)

    def blocked_range(self, i: int, j: int, variable: str) -> bool:
        """Does any statement strictly between ``i`` and ``j`` conflict with ``i``?"""
        return any(
            e.earlier == i and i < e.later < j and e.variable == variable
            for e in self.edges
        )


def _as_operation(statement: Statement):  # type: ignore[no-untyped-def]
    if isinstance(statement, ReadStmt):
        return Read(statement.pattern)
    if isinstance(statement, InsertStmt):
        return Insert(statement.pattern, statement.literal)
    if isinstance(statement, DeleteStmt):
        return Delete(statement.pattern)
    return None


def _variable_of(statement: Statement) -> str | None:
    if isinstance(statement, (ReadStmt, InsertStmt, DeleteStmt)):
        return statement.source
    if isinstance(statement, AssignStmt):
        return statement.target
    return None


def dependence_graph(
    program: Program, detector: ConflictDetector | None = None
) -> DependenceReport:
    """Build the may-conflict graph of a program.

    Pairs on *different* tree variables never conflict (assignments bind
    fresh trees, so variables cannot alias).  An assignment conflicts with
    every later statement touching the same variable (it redefines the
    whole document).
    """
    if detector is None:
        # A compiler analysis only needs *sound* may-conflict answers, and
        # UNKNOWN is treated as a conflict, so a small search budget
        # suffices: it trades a few spurious dependence edges for fast
        # analysis.  Callers wanting sharper answers pass their own
        # detector.
        detector = ConflictDetector(exhaustive_cap=4)
    report = DependenceReport(program)
    statements = program.statements
    with span("analysis.dependence_graph", statements=len(statements)) as sp:
        pairs_checked = 0
        for j, later in enumerate(statements):
            for i in range(j):
                earlier = statements[i]
                variable = _variable_of(earlier)
                if variable is None or variable != _variable_of(later):
                    continue
                pairs_checked += 1
                reason = _pair_conflict(earlier, later, detector)
                if reason is not None:
                    report.edges.append(DependenceEdge(i, j, variable, reason))
        global_metrics().inc("analysis.pairs_checked", pairs_checked)
        sp.set("pairs_checked", pairs_checked)
        sp.set("edges", len(report.edges))
    return report


def _pair_conflict(
    earlier: Statement, later: Statement, detector: ConflictDetector
) -> str | None:
    if isinstance(earlier, AssignStmt) or isinstance(later, AssignStmt):
        return "definition"
    op_a = _as_operation(earlier)
    op_b = _as_operation(later)
    read: Read | None = None
    update: UpdateOp | None = None
    if isinstance(op_a, Read) and isinstance(op_b, Read):
        return None  # reads never conflict with reads
    if isinstance(op_a, Read):
        read, update = op_a, op_b  # type: ignore[assignment]
    elif isinstance(op_b, Read):
        read, update = op_b, op_a  # type: ignore[assignment]
    if read is not None and update is not None:
        verdict = detector.read_update(read, update).verdict
        if verdict is Verdict.NO_CONFLICT:
            return None
        kind = "read-insert" if isinstance(update, Insert) else "read-delete"
        return kind if verdict is Verdict.CONFLICT else f"{kind}-unknown"
    # update-update pair
    assert isinstance(op_a, (Insert, Delete)) and isinstance(op_b, (Insert, Delete))
    verdict = detector.update_update(op_a, op_b).verdict
    if verdict is Verdict.NO_CONFLICT:
        return None
    return "update-update" if verdict is Verdict.CONFLICT else "update-update-unknown"


def can_swap(report: DependenceReport, i: int) -> bool:
    """May statements ``i`` and ``i+1`` be exchanged?"""
    if i + 1 >= len(report.program):
        raise IndexError(f"no statement follows index {i}")
    return not report.conflicts_between(i, i + 1)


@dataclass(frozen=True)
class RedundantRead:
    """A read whose result equals an earlier read's result."""

    original: int
    duplicate: int


def find_redundant_reads(report: DependenceReport) -> list[RedundantRead]:
    """Reads eligible for common-subexpression elimination.

    A read at ``j`` duplicates a read at ``i < j`` when both have the same
    source variable and pattern and no statement between them may conflict
    with the read.
    """
    out: list[RedundantRead] = []
    statements = report.program.statements
    claimed: set[int] = set()
    for j, later in enumerate(statements):
        if not isinstance(later, ReadStmt) or j in claimed:
            continue
        for i in range(j):
            earlier = statements[i]
            if (
                isinstance(earlier, ReadStmt)
                and earlier.source == later.source
                and earlier.pattern == later.pattern
                and not _conflicting_between(report, i, j, later.source)
            ):
                out.append(RedundantRead(i, j))
                claimed.add(j)
                break
    return out


def _conflicting_between(
    report: DependenceReport, i: int, j: int, variable: str
) -> bool:
    """Any statement strictly between i and j that may change the read?"""
    statements = report.program.statements
    for k in range(i + 1, j):
        mid = statements[k]
        if _variable_of(mid) != variable:
            continue
        if isinstance(mid, ReadStmt):
            continue
        if report.conflicts_between(k, j) or report.conflicts_between(i, k):
            return True
    return False


@dataclass
class OptimizationResult:
    """The rewritten program plus what was done."""

    program: Program
    eliminated: list[RedundantRead] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)


@dataclass
class HoistResult:
    """The reordered program plus where each statement moved."""

    program: Program
    moves: dict[int, int] = field(default_factory=dict)  # old index -> new index


def hoist_reads(
    program: Program, detector: ConflictDetector | None = None
) -> HoistResult:
    """Code motion: move each read as early as its dependences allow.

    The paper's Section 1 sketches this optimization: a read that cannot
    conflict with the updates above it may be hoisted past them, enabling
    traversal fusion with earlier reads of the same document.  A read is
    moved upward, one statement at a time, as long as the statement above
    it is not a read target it depends on (reads never block reads) and
    the dependence graph has no edge between them.

    The transformation is semantics-preserving by construction — only
    provably non-conflicting pairs are exchanged — and the test-suite
    re-validates by interpretation.
    """
    report = dependence_graph(program, detector)
    statements = list(program.statements)
    positions = list(range(len(statements)))  # original index of each slot

    changed = True
    while changed:
        changed = False
        for slot in range(1, len(statements)):
            current = statements[slot]
            if not isinstance(current, ReadStmt):
                continue
            above = statements[slot - 1]
            if isinstance(above, ReadStmt):
                # Crossing another read gains nothing and (for equal
                # targets) would reorder writes; leave read blocks intact.
                continue
            if isinstance(above, AssignStmt) and above.target == current.target:
                continue  # write-after-write versus a tree assignment
            if report.conflicts_between(positions[slot - 1], positions[slot]):
                continue
            statements[slot - 1], statements[slot] = current, above
            positions[slot - 1], positions[slot] = (
                positions[slot],
                positions[slot - 1],
            )
            changed = True
    moves = {
        original: new
        for new, original in enumerate(positions)
        if original != new
    }
    return HoistResult(Program(statements), moves)


def optimize(
    program: Program, detector: ConflictDetector | None = None
) -> OptimizationResult:
    """Apply read-CSE: replace duplicate reads by aliases of earlier results.

    The rewritten program drops the duplicate read statements; ``aliases``
    maps each dropped read's target variable to the variable holding the
    equivalent earlier result.  Interpreting the optimized program and then
    copying aliased results reproduces the original final environment (the
    test suite verifies this end to end).
    """
    report = dependence_graph(program, detector)
    redundant = find_redundant_reads(report)
    drop = {r.duplicate for r in redundant}
    aliases: dict[str, str] = {}
    for r in redundant:
        original = program.statements[r.original]
        duplicate = program.statements[r.duplicate]
        assert isinstance(original, ReadStmt) and isinstance(duplicate, ReadStmt)
        aliases[duplicate.target] = original.target
    kept = [s for k, s in enumerate(program.statements) if k not in drop]
    return OptimizationResult(Program(kept), redundant, aliases)
