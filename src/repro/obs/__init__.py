"""Unified observability for the conflict engine: spans, metrics, sinks.

Three pieces, documented in ``docs/OBSERVABILITY.md``:

* :mod:`repro.obs.trace` — nested tracing spans with a thread-local stack
  and near-zero disabled overhead (:func:`span`, :func:`enable`,
  :func:`tracing`);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  snapshot/reset (:class:`MetricsRegistry`, :func:`global_metrics`);
* :mod:`repro.obs.sinks` — where finished spans go (ring buffer,
  JSON-lines file, null).

Quick start::

    from repro import obs

    with obs.tracing() as ring:
        detector.read_insert(read, insert)
    for record in ring.spans():
        print(record["name"], record["dur_ms"])

    print(detector.metrics()["counters"])
    print(obs.global_metrics().snapshot()["counters"])

Or from the shell: every CLI subcommand takes ``--stats`` (print a
per-query breakdown) and ``--trace FILE`` (write JSON-lines spans), and
``REPRO_TRACE=trace.jsonl python -m repro ...`` enables tracing without
touching the command line.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    global_metrics,
    histogram_delta,
    metric_key,
    quantile_from_snapshot,
    reset_global_metrics,
)
from repro.obs.prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
)
from repro.obs.prometheus import (
    render_prometheus,
    validate_exposition,
)
from repro.obs.report import build_report, load_records, render_report
from repro.obs.sinks import JsonlSink, NullSink, RingBufferSink, SpanSink
from repro.obs.trace import (
    Span,
    active_sinks,
    current_request_id,
    disable,
    enable,
    enabled,
    request_context,
    set_request_id,
    span,
    tracing,
)

__all__ = [
    # trace
    "Span",
    "span",
    "enabled",
    "enable",
    "disable",
    "tracing",
    "active_sinks",
    "current_request_id",
    "set_request_id",
    "request_context",
    # metrics
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "quantile_from_snapshot",
    "histogram_delta",
    "global_metrics",
    "reset_global_metrics",
    # prometheus exposition
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "validate_exposition",
    # reporting
    "load_records",
    "build_report",
    "render_report",
    # sinks
    "SpanSink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
]
