"""Zero-dependency tracing spans for the conflict engine.

A *span* is a named, timed region of work with structured attributes::

    with span("linear.read_insert", read_size=8) as sp:
        ...
        sp.set("witness_size", witness.size)

Spans nest: a thread-local stack records the current depth and parent, so
a trace of one query reads as an indented tree (dispatch → algorithm →
matching).  Finished spans are emitted as plain dicts to pluggable sinks
(:mod:`repro.obs.sinks`).

**Disabled is the default and costs almost nothing.**  When tracing is
off, :func:`span` returns a shared no-op context manager — one module
global read plus one truthiness check per call site, no allocation, no
clock read.  The engine is instrumented unconditionally and relies on this
property; ``benchmarks/bench_obs.py`` measures it.

Enabling:

* programmatically — :func:`enable` (optionally with sinks), :func:`disable`,
  or the scoped :func:`tracing` context manager;
* per-detector — ``ConflictDetector(trace=True)``;
* from the environment — set ``REPRO_TRACE`` before the process starts:
  ``REPRO_TRACE=1`` (or ``mem``) traces into an in-memory ring buffer,
  any other value is treated as a JSON-lines output path.

**Request correlation.**  A thread-local *request id* can be bound with
:func:`request_context` (or :func:`set_request_id`); while bound, every
finished span's record carries ``"request_id"``, so all spans produced on
behalf of one service request — across the admission queue's worker
threads and the batch engine's pool processes, which re-bind the id —
grep together from one JSONL file.  Unbound (the CLI, tests, library
use), records simply omit the key.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.sinks import JsonlSink, RingBufferSink, SpanSink

__all__ = [
    "Span",
    "span",
    "enabled",
    "enable",
    "disable",
    "tracing",
    "active_sinks",
    "current_request_id",
    "set_request_id",
    "request_context",
]


class Span:
    """One named, timed, attributed region of work.

    Created by :func:`span`; use as a context manager.  ``set`` attaches
    attributes while the span is open.  Timing uses ``perf_counter`` for
    duration and wall-clock epoch seconds for the start timestamp.
    """

    __slots__ = ("name", "attrs", "depth", "start_time", "duration_s", "_t0")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.start_time = 0.0
        self.duration_s = 0.0
        self._t0 = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        stack = _span_stack()
        self.depth = len(stack)
        stack.append(self)
        self.start_time = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:  # type: ignore[no-untyped-def]
        self.duration_s = time.perf_counter() - self._t0
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        record = self.to_dict()
        for sink in _sinks:
            sink.emit(record)

    def to_dict(self) -> dict:
        """The JSON-lines record shape for this span."""
        record = {
            "name": self.name,
            "start": self.start_time,
            "dur_ms": self.duration_s * 1000.0,
            "depth": self.depth,
            "thread": threading.get_ident(),
            "attrs": dict(self.attrs),
        }
        request_id = getattr(_tls, "request_id", None)
        if request_id is not None:
            record["request_id"] = request_id
        return record


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    attrs: dict[str, object] = {}
    depth = 0
    duration_s = 0.0

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:  # type: ignore[no-untyped-def]
        pass


_NOOP = _NoopSpan()
_enabled = False
_sinks: list[SpanSink] = []
_tls = threading.local()


def _span_stack() -> list[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_request_id() -> str | None:
    """The request id bound to this thread, or ``None``."""
    return getattr(_tls, "request_id", None)


def set_request_id(request_id: str | None) -> None:
    """Bind (or with ``None``, clear) this thread's request id.

    Prefer the scoped :func:`request_context` where the work has clear
    boundaries; this raw form exists for places that cannot wrap a block
    — pool worker initializers bind the id for the worker's lifetime.
    """
    _tls.request_id = request_id


@contextmanager
def request_context(request_id: str | None) -> Iterator[str | None]:
    """Bind ``request_id`` to this thread for the duration of the block.

    Restores whatever was bound before on exit, so nested service calls
    (or a request handled inline on an already-bound thread) unwind
    correctly.  ``None`` passes through as a no-op binding.
    """
    previous = getattr(_tls, "request_id", None)
    _tls.request_id = request_id
    try:
        yield request_id
    finally:
        _tls.request_id = previous


def span(name: str, **attrs: object):  # type: ignore[no-untyped-def]
    """Open a span named ``name`` with initial attributes.

    Returns a live :class:`Span` when tracing is enabled, else the shared
    no-op — call sites never branch on :func:`enabled` themselves.
    """
    if not _enabled:
        return _NOOP
    return Span(name, dict(attrs))


def enabled() -> bool:
    """Is tracing currently on?"""
    return _enabled


def enable(*sinks: SpanSink) -> None:
    """Turn tracing on, emitting to ``sinks``.

    With no sinks given: keep the previously configured sinks, or install
    a fresh :class:`RingBufferSink` if there are none.
    """
    global _enabled
    if sinks:
        _sinks[:] = list(sinks)
    elif not _sinks:
        _sinks[:] = [RingBufferSink()]
    _enabled = True


def disable() -> None:
    """Turn tracing off and detach (closing) the configured sinks."""
    global _enabled
    _enabled = False
    for sink in _sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            close()
    _sinks.clear()


def active_sinks() -> tuple[SpanSink, ...]:
    """The currently attached sinks (empty when disabled)."""
    return tuple(_sinks)


@contextmanager
def tracing(*sinks: SpanSink) -> Iterator[SpanSink]:
    """Scoped tracing: enable on entry, restore the prior state on exit.

    Yields the first active sink (a fresh ring buffer when none given), so
    tests can write ``with tracing() as ring: ...; ring.spans()``.
    """
    global _enabled
    prev_enabled = _enabled
    prev_sinks = list(_sinks)
    if not sinks:
        sinks = (RingBufferSink(),)
    enable(*sinks)
    try:
        yield _sinks[0]
    finally:
        _enabled = prev_enabled
        _sinks[:] = prev_sinks


def _init_from_env(value: str | None) -> None:
    """Apply the ``REPRO_TRACE`` convention (called once at import)."""
    if not value:
        return
    if value.lower() in ("1", "true", "mem", "memory"):
        enable(RingBufferSink())
    else:
        enable(JsonlSink(value))


_init_from_env(os.environ.get("REPRO_TRACE"))
