"""Named counters, gauges and histograms for the conflict engine.

The engine's telemetry used to be scattered — ``SearchStats`` dataclasses
threaded through the general engine, bare ``cache_hits`` attributes on the
detector, ad-hoc ``ConflictReport.stats`` dicts.  This module gives all of
it one home: a :class:`MetricsRegistry` of named instruments with optional
``{label=value}`` dimensions, a process-wide default registry for
module-level code, and per-instance registries where isolation matters
(each :class:`~repro.conflicts.detector.ConflictDetector` owns one, so two
detectors never mix their cache statistics).

Metric names follow a ``subsystem.metric`` convention; dimensions are
rendered Prometheus-style into the key (``conflict.queries_total{path=linear}``).
The well-known names are catalogued in ``docs/OBSERVABILITY.md``.  The
resilience layer adds its own families: ``conflict.budget_exceeded{reason=}``
(budget-degraded decisions), ``faults.injected{fault=}`` (fired fault
rules), and the batch engine's hardening counters
(``batch.chunk_timeouts`` / ``batch.chunk_crashes`` /
``batch.chunk_retries`` / ``batch.chunk_splits`` /
``batch.chunks_quarantined{reason=}`` / ``batch.pairs_degraded{reason=}``)
— see ``docs/RESILIENCE.md``.

Design constraints:

* **Zero dependencies** — plain dicts, no client library.
* **Cheap increments** — ``inc``/``observe`` take no lock; CPython dict
  operations are GIL-atomic, and the worst a cross-thread race can do is
  drop an increment, which is acceptable for telemetry.  ``snapshot`` and
  ``reset`` do lock so exports are internally consistent.
* **Batched hot loops** — code that counts per-candidate or per-node
  events accumulates locally (e.g. in ``SearchStats``) and adds once per
  query, so the registry never sits inside a tight loop.
"""

from __future__ import annotations

import threading

__all__ = [
    "MetricsRegistry",
    "metric_key",
    "global_metrics",
    "reset_global_metrics",
]


def metric_key(name: str, labels: dict[str, object] | None = None) -> str:
    """Render ``name`` plus label dimensions into a registry key.

    ``metric_key("q", {"path": "linear"})`` → ``"q{path=linear}"``.
    Labels are sorted so the same dimensions always yield the same key.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------

    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name`` (created at 0 on first use)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into the histogram ``name``.

        Histograms keep ``count``/``sum``/``min``/``max`` — enough for
        mean and range without committing to a bucket layout.
        """
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            self._histograms[key] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels: object) -> float | None:
        """Current value of a gauge, or ``None`` if never set."""
        return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: object) -> dict[str, float] | None:
        """Summary dict of a histogram, or ``None`` if never observed."""
        hist = self._histograms.get(metric_key(name, labels))
        return dict(hist) if hist is not None else None

    def snapshot(self) -> dict:
        """A consistent, detached export of every instrument.

        Shape::

            {"counters": {key: int},
             "gauges": {key: float},
             "histograms": {key: {"count", "sum", "min", "max"}}}
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: dict(v) for k, v in self._histograms.items()},
            }

    def reset(self) -> None:
        """Drop every instrument back to its initial (absent) state."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def absorb_counters(self, counters: dict[str, int]) -> None:
        """Add a plain ``{key: value}`` counter mapping into this registry.

        The keys are pre-rendered (label dimensions already baked in), as
        produced by ``snapshot()["counters"]``.  This is how counters
        cross process boundaries: batch-analysis workers snapshot their
        detector's registry, ship the plain dict back (a registry itself
        holds a lock and cannot be pickled), and the parent sums the
        deltas here.
        """
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0) + value

    def merged_with(self, other: "MetricsRegistry") -> dict:
        """Snapshot of ``self`` overlaid with ``other`` (counters summed).

        Used by the CLI to print one unified table from the global registry
        plus a detector's private one.
        """
        mine = self.snapshot()
        theirs = other.snapshot()
        for key, value in theirs["counters"].items():
            mine["counters"][key] = mine["counters"].get(key, 0) + value
        mine["gauges"].update(theirs["gauges"])
        for key, hist in theirs["histograms"].items():
            if key in mine["histograms"]:
                base = mine["histograms"][key]
                base["count"] += hist["count"]
                base["sum"] += hist["sum"]
                base["min"] = min(base["min"], hist["min"])
                base["max"] = max(base["max"], hist["max"])
            else:
                mine["histograms"][key] = dict(hist)
        return mine


#: Process-wide default registry.  Module-level engine code (matching,
#: embedding, the general search) records here; per-detector state lives
#: in each detector's own registry.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def reset_global_metrics() -> None:
    """Reset the process-wide registry (tests, benchmark isolation)."""
    _GLOBAL.reset()
