"""Named counters, gauges and quantile histograms for the conflict engine.

The engine's telemetry used to be scattered — ``SearchStats`` dataclasses
threaded through the general engine, bare ``cache_hits`` attributes on the
detector, ad-hoc ``ConflictReport.stats`` dicts.  This module gives all of
it one home: a :class:`MetricsRegistry` of named instruments with optional
``{label=value}`` dimensions, a process-wide default registry for
module-level code, and per-instance registries where isolation matters
(each :class:`~repro.conflicts.detector.ConflictDetector` owns one, so two
detectors never mix their cache statistics).

Metric names follow a ``subsystem.metric`` convention; dimensions are
rendered Prometheus-style into the key (``conflict.queries_total{path=linear}``).
The well-known names are catalogued in ``docs/OBSERVABILITY.md``.  The
resilience layer adds its own families: ``conflict.budget_exceeded{reason=}``
(budget-degraded decisions), ``faults.injected{fault=}`` (fired fault
rules), and the batch engine's hardening counters
(``batch.chunk_timeouts`` / ``batch.chunk_crashes`` /
``batch.chunk_retries`` / ``batch.chunk_splits`` /
``batch.chunks_quarantined{reason=}`` / ``batch.pairs_degraded{reason=}``)
— see ``docs/RESILIENCE.md``.

Histograms are **fixed log-bucket** distributions, not just summaries:
each observation lands in one of a fixed family of exponentially sized
buckets (:data:`BUCKETS_PER_DECADE` per factor of ten), so

* :meth:`Histogram.quantile` answers p50/p95/p99 with error bounded by
  one bucket width (≈ 26% relative) — enough to tell a 1 ms path from a
  10 ms path, which is the load-bearing question;
* merging two histograms (:meth:`Histogram.absorb`) is **lossless** —
  bucket counts add — so per-worker latency distributions combine across
  thread pools and process pools without approximation;
* the snapshot form stays a compatible superset of the old
  ``{"count", "sum", "min", "max"}`` summary (those keys are still
  present and still mean the same thing).

Design constraints:

* **Zero dependencies** — plain dicts, no client library.
* **Cheap increments** — ``inc``/``observe`` take no lock; CPython dict
  operations are GIL-atomic, and the worst a cross-thread race can do is
  drop an increment, which is acceptable for telemetry.  ``snapshot`` and
  ``reset`` do lock so exports are internally consistent.
* **Batched hot loops** — code that counts per-candidate or per-node
  events accumulates locally (e.g. in ``SearchStats``) and adds once per
  query, so the registry never sits inside a tight loop.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "BUCKETS_PER_DECADE",
    "Histogram",
    "MetricsRegistry",
    "bucket_index",
    "bucket_bounds",
    "histogram_delta",
    "metric_key",
    "quantile_from_snapshot",
    "global_metrics",
    "reset_global_metrics",
]


def metric_key(name: str, labels: dict[str, object] | None = None) -> str:
    """Render ``name`` plus label dimensions into a registry key.

    ``metric_key("q", {"path": "linear"})`` → ``"q{path=linear}"``.
    Labels are sorted so the same dimensions always yield the same key.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


# ----------------------------------------------------------------------
# Log-bucket histograms
# ----------------------------------------------------------------------

#: Buckets per factor of ten.  10 gives a relative bucket width of
#: ``10**0.1 ≈ 1.26`` — a quantile read off a bucket boundary is within
#: ~26% of the exact value, at ~90 buckets for the whole microsecond-to-
#: minute latency range.
BUCKETS_PER_DECADE = 10

#: Sentinel bucket index for non-positive observations (log undefined).
#: Far below any reachable log bucket so sorted-index walks stay correct.
ZERO_BUCKET = -(10**9)

_LOG_FACTOR = BUCKETS_PER_DECADE / math.log(10.0)

#: Summary keys derived at snapshot time; ignored by :meth:`Histogram.absorb`.
_DERIVED_KEYS = ("p50", "p95", "p99")


def bucket_index(value: float) -> int:
    """The fixed log-bucket index holding ``value``.

    Bucket ``i`` covers ``(10**(i/N), 10**((i+1)/N)]`` with
    ``N = BUCKETS_PER_DECADE``; values ``<= 0`` land in the dedicated
    :data:`ZERO_BUCKET`.
    """
    if value <= 0.0:
        return ZERO_BUCKET
    return math.floor(math.log(value) * _LOG_FACTOR)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``(lower, upper]`` bounds of bucket ``index`` (zero bucket: [0, 0])."""
    if index == ZERO_BUCKET:
        return (0.0, 0.0)
    return (
        10.0 ** (index / BUCKETS_PER_DECADE),
        10.0 ** ((index + 1) / BUCKETS_PER_DECADE),
    )


class Histogram:
    """One fixed log-bucket distribution (see the module docstring).

    The mutable state is four scalars plus a sparse ``{index: count}``
    bucket dict; ``observe`` is a handful of dict/float operations and
    takes no lock (a cross-thread race can at worst drop an observation).
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (``0 <= q <= 1``), accurate to one bucket.

        Returns the upper bound of the bucket holding the exact empirical
        quantile, clamped into ``[min, max]`` — so the answer never
        exceeds an observed value and single-valued histograms are exact.
        ``None`` when nothing was observed.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                upper = bucket_bounds(index)[1]
                return min(max(upper, self.min), self.max)
        return self.max  # unreachable unless counts raced; stay safe

    def absorb(self, other: "Histogram | dict") -> None:
        """Merge another histogram (or its snapshot dict) in, losslessly.

        Bucket counts add exactly, so absorb is associative and
        commutative — the property the cross-worker metric transport and
        ``repro cache``-style merges rely on.  A legacy summary-only
        snapshot (no ``"buckets"``) is folded in by bucketing its mean
        ``count`` times: the summary scalars stay exact and the
        distribution mass lands within one bucket of the mean.
        """
        if isinstance(other, Histogram):
            count, total = other.count, other.sum
            low, high = other.min, other.max
            buckets: dict = other.buckets
        else:
            count = int(other.get("count", 0))
            total = float(other.get("sum", 0.0))
            low = float(other.get("min", math.inf))
            high = float(other.get("max", -math.inf))
            raw = other.get("buckets")
            if raw is None:
                mean = total / count if count else 0.0
                buckets = {bucket_index(mean): count} if count else {}
            else:
                buckets = {int(k): int(v) for k, v in raw.items()}
        if count == 0:
            return
        self.count += count
        self.sum += total
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        for index, bucket_count in buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    def snapshot(self) -> dict:
        """The detached JSON-able form: old summary keys + buckets + quantiles.

        Shape (a compatible superset of the pre-bucketing summary)::

            {"count": int, "sum": float, "min": float, "max": float,
             "buckets": {"<index>": int},          # sparse, JSON string keys
             "p50": float, "p95": float, "p99": float}

        The ``p*`` keys are derived for human and dashboard convenience;
        :meth:`absorb` ignores them and recomputes from the buckets.
        """
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in self.buckets.items()},
        }
        for key, q in zip(_DERIVED_KEYS, (0.50, 0.95, 0.99)):
            out[key] = self.quantile(q)
        return out

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Histogram":
        """Rebuild a live histogram from its :meth:`snapshot` form."""
        hist = cls()
        hist.absorb(snapshot)
        return hist


def quantile_from_snapshot(snapshot: dict | None, q: float) -> float | None:
    """The ``q``-quantile of a snapshot-form histogram (``None`` if empty).

    This is how consumers that only hold the wire form — ``repro report``
    over JSONL files, ``bench_serve.py`` over a ``GET /metrics`` response —
    read quantiles from the exact same buckets the registry holds.
    """
    if not snapshot:
        return None
    return Histogram.from_snapshot(snapshot).quantile(q)


def histogram_delta(current: dict, base: dict | None) -> dict | None:
    """The snapshot-form difference ``current - base`` (bucket-exact).

    Used by pool workers to ship per-chunk histogram increments: bucket
    counts and ``count``/``sum`` subtract exactly; ``min``/``max`` cannot
    be recovered for a window, so the *running* extrema are shipped —
    absorbing them repeatedly is idempotent (``min``/``max`` converge to
    the whole-run values), keeping merged summaries correct.  Returns
    ``None`` when nothing changed.
    """
    base = base or {}
    count = int(current.get("count", 0)) - int(base.get("count", 0))
    if count <= 0:
        return None
    base_buckets = base.get("buckets") or {}
    buckets = {}
    for key, value in (current.get("buckets") or {}).items():
        diff = int(value) - int(base_buckets.get(key, 0))
        if diff:
            buckets[key] = diff
    return {
        "count": count,
        "sum": float(current.get("sum", 0.0)) - float(base.get("sum", 0.0)),
        "min": current.get("min", math.inf),
        "max": current.get("max", -math.inf),
        "buckets": buckets,
    }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------

    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name`` (created at 0 on first use)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into the log-bucket histogram ``name``."""
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms.setdefault(key, Histogram())
        hist.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels: object) -> float | None:
        """Current value of a gauge, or ``None`` if never set."""
        return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: object) -> dict | None:
        """Snapshot dict of a histogram, or ``None`` if never observed."""
        hist = self._histograms.get(metric_key(name, labels))
        return hist.snapshot() if hist is not None else None

    def quantile(self, name: str, q: float, **labels: object) -> float | None:
        """The ``q``-quantile of a histogram (``None`` if never observed)."""
        hist = self._histograms.get(metric_key(name, labels))
        return hist.quantile(q) if hist is not None else None

    def snapshot(self) -> dict:
        """A consistent, detached export of every instrument.

        Shape::

            {"counters": {key: int},
             "gauges": {key: float},
             "histograms": {key: <Histogram.snapshot() dict>}}
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: v.snapshot() for k, v in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every instrument back to its initial (absent) state."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def absorb(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot`-shaped export into this registry.

        Counters sum and histograms merge bucket-exactly, so absorb is
        associative and commutative over them (the property test in
        ``tests/test_obs.py`` holds it to that); gauges are point-in-time
        values, so the incoming write wins, same as :meth:`set_gauge`.
        This is how metrics cross process boundaries: batch workers ship
        snapshot deltas back (a registry holds a lock and cannot be
        pickled), and the parent folds them in here.
        """
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            self._gauges.update(snapshot.get("gauges", {}))
            for key, hist in snapshot.get("histograms", {}).items():
                mine = self._histograms.get(key)
                if mine is None:
                    mine = self._histograms.setdefault(key, Histogram())
                mine.absorb(hist)

    def absorb_counters(self, counters: dict[str, int]) -> None:
        """Add a plain ``{key: value}`` counter mapping into this registry.

        The keys are pre-rendered (label dimensions already baked in), as
        produced by ``snapshot()["counters"]``.  Kept as the narrow form
        of :meth:`absorb` for callers that only carry counters.
        """
        self.absorb({"counters": counters})

    def merged_with(self, other: "MetricsRegistry") -> dict:
        """Snapshot of ``self`` overlaid with ``other``.

        Counters sum, histograms merge losslessly, ``other``'s gauges
        win.  Used by the CLI and the service's ``/metrics`` to print one
        unified view from the global registry plus a private one.
        """
        merged = MetricsRegistry()
        merged.absorb(self.snapshot())
        merged.absorb(other.snapshot())
        return merged.snapshot()


#: Process-wide default registry.  Module-level engine code (matching,
#: embedding, the general search) records here; per-detector state lives
#: in each detector's own registry.
_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def reset_global_metrics() -> None:
    """Reset the process-wide registry (tests, benchmark isolation)."""
    _GLOBAL.reset()
