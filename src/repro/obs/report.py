"""Aggregate trace/access JSONL files into latency and hit-rate reports.

This is the offline half of the telemetry story: the service (or a CLI
run with ``--trace``) writes JSON-lines records, and ``repro report``
turns one or more of those files into the tables an operator actually
wants — per-phase p50/p95/p99, per-detector-path breakdowns, cache hit
rates, and per-route/verdict access summaries.

Two record shapes are understood, distinguished per line:

* **span records** (``Span.to_dict``): have ``"name"`` and ``"dur_ms"``.
  Grouped by span name; ``detector.dispatch`` spans additionally break
  down by their ``attrs.path`` (linear/general/complex) and feed the
  cache hit-rate from their ``cached`` attribute.
* **access records** (the service's ``--access-log``): have
  ``"type": "access"``.  Grouped by route; verdict and outcome counts,
  queue-wait and total-latency percentiles, cache hit rate.

Unknown lines (malformed JSON, other record types) are counted, not
fatal — a report over a file that a crashed process half-wrote should
still render the parseable prefix, same contract as ``JsonlSink``.

Percentiles here are **exact** (computed from the raw per-record
durations, nearest-rank), which is what makes the test suite's
"histogram quantile within one bucket of exact" check meaningful: the
live registry answers from log buckets, this module answers from the
raw stream, and the two must agree to bucket resolution.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable

__all__ = [
    "load_records",
    "exact_percentile",
    "build_report",
    "render_report",
]


def load_records(paths: Iterable[str]) -> tuple[list[dict], list[dict], int]:
    """Read JSONL files into (span_records, access_records, skipped_count).

    Lines that fail to parse or match neither shape are skipped (counted
    in the third element) so partial files degrade gracefully.
    """
    spans: list[dict] = []
    access: list[dict] = []
    skipped = 0
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(record, dict):
                    skipped += 1
                elif record.get("type") == "access":
                    access.append(record)
                elif "name" in record and "dur_ms" in record:
                    spans.append(record)
                else:
                    skipped += 1
    return spans, access, skipped


def exact_percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile of raw values (``None`` on empty input)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _duration_stats(values: list[float]) -> dict:
    """The standard per-group latency summary used throughout the report."""
    return {
        "count": len(values),
        "total_ms": sum(values),
        "p50_ms": exact_percentile(values, 0.50),
        "p95_ms": exact_percentile(values, 0.95),
        "p99_ms": exact_percentile(values, 0.99),
        "max_ms": max(values) if values else None,
    }


def _ratio(hits: int, total: int) -> float | None:
    return hits / total if total else None


def build_report(
    spans: list[dict],
    access: list[dict],
    skipped: int = 0,
) -> dict:
    """The full aggregate as one JSON-able dict (the ``--json`` output).

    Shape::

        {"records": {"spans": N, "access": N, "skipped": N},
         "phases": {span_name: {count, total_ms, p50_ms, p95_ms, p99_ms, max_ms}},
         "detectors": {path: {... same keys ..., "verdicts": {verdict: N}}},
         "cache": {"lookups": N, "hits": N, "hit_rate": f|null},
         "routes": {route: {count, errors, degraded, cache_hit_rate,
                            p50_ms, p95_ms, p99_ms,
                            queue_wait_p95_ms, verdicts: {verdict: N}}},
         "request_ids": {"spans_with_id": N, "access_with_id": N,
                         "distinct": N}}

    Keys hold ``None``/empty subtables rather than disappearing, so
    consumers can index without existence checks.
    """
    phases: dict[str, list[float]] = {}
    detector_durations: dict[str, list[float]] = {}
    detector_verdicts: dict[str, dict[str, int]] = {}
    cache_lookups = 0
    cache_hits = 0
    request_ids: set[str] = set()
    spans_with_id = 0

    for record in spans:
        name = str(record["name"])
        duration = float(record["dur_ms"])
        phases.setdefault(name, []).append(duration)
        rid = record.get("request_id")
        if rid:
            spans_with_id += 1
            request_ids.add(str(rid))
        attrs = record.get("attrs") or {}
        if name == "detector.dispatch":
            path = str(attrs.get("path", "unknown"))
            detector_durations.setdefault(path, []).append(duration)
            verdict = attrs.get("verdict")
            if verdict is not None:
                by_verdict = detector_verdicts.setdefault(path, {})
                by_verdict[str(verdict)] = by_verdict.get(str(verdict), 0) + 1
            if "cached" in attrs:
                cache_lookups += 1
                if attrs["cached"]:
                    cache_hits += 1

    routes: dict[str, dict] = {}
    access_with_id = 0
    for record in access:
        route = str(record.get("route", "unknown"))
        bucket = routes.setdefault(
            route,
            {
                "count": 0,
                "durations": [],
                "queue_waits": [],
                "errors": 0,
                "degraded": 0,
                "cache_lookups": 0,
                "cache_hits": 0,
                "verdicts": {},
            },
        )
        bucket["count"] += 1
        total_ms = record.get("total_ms")
        if isinstance(total_ms, int | float):
            bucket["durations"].append(float(total_ms))
        queue_wait = record.get("queue_wait_ms")
        if isinstance(queue_wait, int | float):
            bucket["queue_waits"].append(float(queue_wait))
        status = record.get("status")
        if isinstance(status, int) and status >= 400:
            bucket["errors"] += 1
        if record.get("degraded"):
            bucket["degraded"] += 1
        cached = record.get("cached")
        if cached is not None:
            bucket["cache_lookups"] += 1
            if cached:
                bucket["cache_hits"] += 1
        verdict = record.get("verdict")
        if verdict is not None:
            bucket["verdicts"][str(verdict)] = (
                bucket["verdicts"].get(str(verdict), 0) + 1
            )
        rid = record.get("request_id")
        if rid:
            access_with_id += 1
            request_ids.add(str(rid))

    report_routes = {}
    for route, bucket in sorted(routes.items()):
        durations = bucket["durations"]
        report_routes[route] = {
            "count": bucket["count"],
            "errors": bucket["errors"],
            "degraded": bucket["degraded"],
            "cache_hit_rate": _ratio(
                bucket["cache_hits"], bucket["cache_lookups"]
            ),
            "p50_ms": exact_percentile(durations, 0.50),
            "p95_ms": exact_percentile(durations, 0.95),
            "p99_ms": exact_percentile(durations, 0.99),
            "queue_wait_p95_ms": exact_percentile(bucket["queue_waits"], 0.95),
            "verdicts": dict(sorted(bucket["verdicts"].items())),
        }

    return {
        "records": {
            "spans": len(spans),
            "access": len(access),
            "skipped": skipped,
        },
        "phases": {
            name: _duration_stats(values)
            for name, values in sorted(phases.items())
        },
        "detectors": {
            path: {
                **_duration_stats(values),
                "verdicts": dict(
                    sorted(detector_verdicts.get(path, {}).items())
                ),
            }
            for path, values in sorted(detector_durations.items())
        },
        "cache": {
            "lookups": cache_lookups,
            "hits": cache_hits,
            "hit_rate": _ratio(cache_hits, cache_lookups),
        },
        "routes": report_routes,
        "request_ids": {
            "spans_with_id": spans_with_id,
            "access_with_id": access_with_id,
            "distinct": len(request_ids),
        },
    }


def _fmt(value: float | None, width: int = 9) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.3f}".rjust(width)


def _fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value * 100.0:.1f}%"


def render_report(report: dict) -> str:
    """The human-readable table form of :func:`build_report`'s output."""
    lines: list[str] = []
    records = report["records"]
    lines.append(
        f"records: {records['spans']} spans, {records['access']} access"
        + (f", {records['skipped']} skipped" if records["skipped"] else "")
    )

    if report["phases"]:
        lines.append("")
        lines.append("per-phase latency (ms)")
        header = (
            f"  {'phase':<28} {'count':>7} {'p50':>9} {'p95':>9}"
            f" {'p99':>9} {'max':>9}"
        )
        lines.append(header)
        for name, stats in report["phases"].items():
            lines.append(
                f"  {name:<28} {stats['count']:>7}"
                f" {_fmt(stats['p50_ms'])} {_fmt(stats['p95_ms'])}"
                f" {_fmt(stats['p99_ms'])} {_fmt(stats['max_ms'])}"
            )

    if report["detectors"]:
        lines.append("")
        lines.append("detector paths (ms)")
        for path, stats in report["detectors"].items():
            verdicts = ", ".join(
                f"{v}={n}" for v, n in stats["verdicts"].items()
            )
            lines.append(
                f"  {path:<28} {stats['count']:>7}"
                f" {_fmt(stats['p50_ms'])} {_fmt(stats['p95_ms'])}"
                f" {_fmt(stats['p99_ms'])} {_fmt(stats['max_ms'])}"
                + (f"  [{verdicts}]" if verdicts else "")
            )

    cache = report["cache"]
    if cache["lookups"]:
        lines.append("")
        lines.append(
            f"cache: {cache['hits']}/{cache['lookups']} hits"
            f" ({_fmt_rate(cache['hit_rate'])})"
        )

    if report["routes"]:
        lines.append("")
        lines.append("routes (ms)")
        for route, stats in report["routes"].items():
            verdicts = ", ".join(
                f"{v}={n}" for v, n in stats["verdicts"].items()
            )
            lines.append(
                f"  {route:<28} {stats['count']:>7}"
                f" {_fmt(stats['p50_ms'])} {_fmt(stats['p95_ms'])}"
                f" {_fmt(stats['p99_ms'])}"
                f"  errors={stats['errors']} degraded={stats['degraded']}"
                f" cache={_fmt_rate(stats['cache_hit_rate'])}"
                + (f"  [{verdicts}]" if verdicts else "")
            )

    ids = report["request_ids"]
    if ids["distinct"]:
        lines.append("")
        lines.append(
            f"request ids: {ids['distinct']} distinct"
            f" ({ids['spans_with_id']} spans, {ids['access_with_id']} access)"
        )

    return "\n".join(lines)
