"""Span sinks — where finished tracing spans go.

A sink is anything with an ``emit(record)`` method taking the plain-dict
form of a finished span (see :meth:`repro.obs.trace.Span.to_dict`) and an
optional ``close()``.  Three implementations cover the practical cases:

* :class:`RingBufferSink` — keep the last *N* spans in memory; the default
  when tracing is enabled programmatically, and what ``--stats`` uses to
  print a per-query breakdown after a CLI run.
* :class:`JsonlSink` — append one JSON object per line to a file (the
  ``--trace FILE`` format).  JSON-lines was chosen over a single JSON
  document so a crashed or killed process still leaves a parseable prefix.
* :class:`NullSink` — swallow everything; useful to measure the
  enabled-path overhead without I/O.

Sinks must tolerate being called from multiple threads: the tracing layer
serializes emission per thread but not across threads.  ``RingBufferSink``
and ``JsonlSink`` therefore guard their mutable state with a lock — and
``JsonlSink`` additionally tolerates the *close race*: one thread calling
``disable()`` (which closes sinks) while another is mid-``__exit__`` on a
span.  Emission after close is silently dropped rather than raising from
``Span.__exit__``, where an exception would mask the traced code's own.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import IO, Protocol

__all__ = ["SpanSink", "RingBufferSink", "JsonlSink", "NullSink"]


class SpanSink(Protocol):
    """Structural type for span sinks."""

    def emit(self, record: dict) -> None:  # pragma: no cover - protocol
        ...


class NullSink:
    """Discard every span (overhead-measurement baseline)."""

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keep the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._buffer: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self._buffer.append(record)

    def spans(self) -> list[dict]:
        """The buffered spans, oldest first."""
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


class JsonlSink:
    """Append spans as JSON-lines to a path or an open text stream.

    Records are flushed per emit — traces are usually read while (or right
    after) the traced process runs, and the per-span volume is low enough
    that buffering buys nothing.
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()
        self._closed = False

    def emit(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_handle:
                self._handle.close()
