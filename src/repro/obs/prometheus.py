"""Prometheus text exposition (format 0.0.4) for registry snapshots.

The service's ``GET /metrics`` speaks JSON by default (the shape of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`), which is convenient
for this repo's own tooling but opaque to every standard scraper.  This
module renders the same snapshot into the Prometheus text format, so
``Accept: text/plain`` on ``/metrics`` yields something Prometheus,
VictoriaMetrics, or ``promtool`` can ingest directly:

* counters → one ``# TYPE <name> counter`` family per metric name, one
  sample per label set;
* gauges → likewise with ``gauge``;
* log-bucket histograms → a native Prometheus histogram: cumulative
  ``<name>_bucket{le="<upper>"}`` series per bucket boundary (plus the
  mandatory ``le="+Inf"``), ``<name>_sum`` and ``<name>_count``.  The
  ``le`` bounds are the exact log-bucket upper bounds, so PromQL's
  ``histogram_quantile`` reproduces :func:`~repro.obs.metrics.quantile_from_snapshot`
  up to the same one-bucket error.

Registry keys are the ``name{k=v,...}`` strings of
:func:`~repro.obs.metrics.metric_key`; this module parses them back into
name + labels and sanitizes names into the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
alphabet (dots become underscores: ``conflict.queries_total`` →
``conflict_queries_total``).

:func:`validate_exposition` is a small line-format checker used by the
CI service-smoke job and the test suite — it verifies the grammar this
module claims to emit, without needing a real Prometheus binary.

CONTENT_TYPE is the value a compliant scrape response must carry.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import bucket_bounds

__all__ = ["CONTENT_TYPE", "render_prometheus", "validate_exposition"]

#: The exposition content type the text renderer targets.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)"
    r"( [0-9]+)?$"
)
_LABEL_PAIR = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$'
)


def _metric_name(raw: str) -> str:
    """Sanitize a repro metric name into the Prometheus alphabet."""
    name = _SANITIZE.sub("_", raw)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _parse_key(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a ``name{k=v,...}`` registry key into name + label pairs."""
    brace = key.find("{")
    if brace < 0 or not key.endswith("}"):
        return key, []
    labels = []
    inner = key[brace + 1 : -1]
    if inner:
        for part in inner.split(","):
            label, _, value = part.partition("=")
            labels.append((label, value))
    return key[:brace], labels


def _escape_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _render_labels(labels: list[tuple[str, str]]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_LABEL_SANITIZE.sub("_", k) or "_"}="{_escape_value(v)}"'
        for k, v in labels
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _group_by_name(section: dict) -> dict[str, list[tuple[list, object]]]:
    """Registry keys grouped by sanitized family name, labels parsed out."""
    families: dict[str, list[tuple[list, object]]] = {}
    for key in sorted(section):
        raw_name, labels = _parse_key(key)
        families.setdefault(_metric_name(raw_name), []).append(
            (labels, section[key])
        )
    return families


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition 0.0.4.

    ``snapshot`` is the ``{"counters", "gauges", "histograms"}`` shape of
    :meth:`MetricsRegistry.snapshot`.  Families are sorted by name so the
    output is deterministic (diffable in tests and dashboards).
    """
    lines: list[str] = []

    for name, samples in sorted(
        _group_by_name(snapshot.get("counters", {})).items()
    ):
        lines.append(f"# TYPE {name} counter")
        for labels, value in samples:
            lines.append(
                f"{name}{_render_labels(labels)} {_format_value(value)}"
            )

    for name, samples in sorted(
        _group_by_name(snapshot.get("gauges", {})).items()
    ):
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(
                f"{name}{_render_labels(labels)} {_format_value(value)}"
            )

    for name, samples in sorted(
        _group_by_name(snapshot.get("histograms", {})).items()
    ):
        lines.append(f"# TYPE {name} histogram")
        for labels, hist in samples:
            buckets = {
                int(k): int(v) for k, v in (hist.get("buckets") or {}).items()
            }
            cumulative = 0
            for index in sorted(buckets):
                cumulative += buckets[index]
                upper = bucket_bounds(index)[1]
                le_labels = labels + [("le", _format_value(upper))]
                lines.append(
                    f"{name}_bucket{_render_labels(le_labels)} {cumulative}"
                )
            count = int(hist.get("count", 0))
            inf_labels = labels + [("le", "+Inf")]
            lines.append(f"{name}_bucket{_render_labels(inf_labels)} {count}")
            lines.append(
                f"{name}_sum{_render_labels(labels)} "
                f"{_format_value(float(hist.get('sum', 0.0)))}"
            )
            lines.append(f"{name}_count{_render_labels(labels)} {count}")

    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text: str) -> list[str]:
    """Check ``text`` against the 0.0.4 line grammar; return the problems.

    An empty return means every line parsed: comments are ``# HELP`` /
    ``# TYPE`` with a valid metric name, samples are
    ``name{labels} value [timestamp]`` with well-formed escaped label
    values and a parseable float, and histogram families carry their
    mandatory ``le="+Inf"`` bucket plus ``_sum``/``_count`` series.  Used
    by CI's smoke scrape so a renderer regression fails loudly without a
    Prometheus binary in the loop.
    """
    problems: list[str] = []
    histogram_families: set[str] = set()
    seen_samples: set[str] = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {lineno}: blank line inside exposition")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if not _NAME_OK.match(parts[2]):
                problems.append(
                    f"line {lineno}: invalid metric name {parts[2]!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    problems.append(
                        f"line {lineno}: invalid TYPE line: {line!r}"
                    )
                elif parts[3] == "histogram":
                    histogram_families.add(parts[2])
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        seen_samples.add(line.split("{")[0].split(" ")[0])
        labels = match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels[1:-1]):
                if not _LABEL_PAIR.match(pair):
                    problems.append(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: unparseable value {value!r}"
                )

    for family in sorted(histogram_families):
        for suffix in ("_bucket", "_sum", "_count"):
            if family + suffix not in seen_samples:
                problems.append(
                    f"histogram {family!r} is missing its {suffix} series"
                )
        if f'le="+Inf"' not in text:
            problems.append(
                f"histogram {family!r} has no le=\"+Inf\" bucket"
            )
    return problems


def _split_label_pairs(inner: str) -> list[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in inner:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current))
    return pairs
