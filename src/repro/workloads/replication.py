"""Seeded replication traffic: random multi-writer editing scenarios.

The generator builds :class:`~repro.replication.scenario.Scenario`
objects with a *controllable certified-conflict rate*.  The document has
one shared hot section plus one private section per replica::

    <doc><hot><item>0</item></hot><p0/><p1/>...<p(N-1)/></doc>

Two edit shapes are mixed:

* **hot edits** alternate between inserting fresh subtrees at the hot
  section's *parent* path (``doc/hot``) and touching its *child* path
  (``doc/hot/item``).  A parent-insert creates new matches for a
  concurrent child op's pattern, which is exactly the shape the
  update/update engine can certify as a conflict (a commutativity
  witness exists and the heuristic finds it).
* **private edits** insert under the author's own ``p<r>`` section —
  disjoint from everything, so concurrent pairs come back unproven and
  both sides are kept.

Raising ``conflict_rate`` therefore raises the fraction of classified
pairs the session must actually *resolve*, which is the knob the
convergence tests and ``benchmarks/bench_replication.py`` sweep.

Everything is driven by one seeded :class:`random.Random`, so the same
``seed`` yields a byte-identical scenario (and, because sessions are
deterministic, a byte-identical run).
"""

from __future__ import annotations

import random

from repro.replication.scenario import Scenario, scenario_from_dict

__all__ = ["random_replication_scenario", "hot_edit", "private_edit"]

#: Labels for generated insert payloads (kept tiny: pattern size is what
#: drives decision cost, not payload size).
_PAYLOAD_LABELS = ("u", "v", "w")


def hot_edit(rng: random.Random, flavor: "str | None" = None) -> dict:
    """One contended edit spec at the shared hot section.

    ``flavor`` is ``"parent"`` (insert at ``doc/hot``) or ``"child"``
    (insert at or delete of ``doc/hot/item``); picked at random when
    omitted.  A concurrent parent/child pair is certifiable as a
    conflict; pairs on the same side usually are not — so a 50/50 mix
    makes roughly half of hot×hot concurrent pairs certified conflicts.
    """
    if flavor is None:
        flavor = rng.choice(("parent", "child"))
    label = rng.choice(_PAYLOAD_LABELS)
    if flavor == "parent":
        return {"op": "insert", "xpath": "doc/hot", "xml": f"<item><{label}/></item>"}
    if rng.random() < 0.5:
        return {"op": "delete", "xpath": "doc/hot/item"}
    return {"op": "insert", "xpath": "doc/hot/item", "xml": f"<{label}/>"}


def private_edit(rng: random.Random, author: int) -> dict:
    """One uncontended edit spec in the author's private section."""
    label = rng.choice(_PAYLOAD_LABELS)
    return {
        "op": "insert",
        "xpath": f"doc/p{author}",
        "xml": f"<{label}><{rng.choice(_PAYLOAD_LABELS)}/></{label}>",
    }


def random_replication_scenario(
    replicas: int = 4,
    edits: int = 24,
    conflict_rate: float = 0.3,
    seed: int = 0,
    *,
    resolver: str = "last-writer-wins",
    bursts: int = 4,
    partition: bool = False,
    unknown_policy: str = "keep",
    name: str | None = None,
) -> Scenario:
    """Generate a seeded multi-writer scenario.

    Args:
        replicas: session width (the bench sweeps 2/4/8).
        edits: total authored operations across all replicas.
        conflict_rate: probability an edit targets the shared hot
            section rather than the author's private one.  The realized
            certified-conflict fraction is reported by the run itself
            (``pairs_conflicting / pairs_classified``); hot/hot pairs on
            opposite parent/child flavors certify, so the realized rate
            tracks roughly half this knob's square per concurrent burst
            — callers that need a floor should measure, not assume.
        seed: RNG seed; identical seeds give identical scenarios.
        resolver: built-in resolver name recorded in the scenario.
        bursts: edits are split into this many bursts, each followed by
            a full gossip round — edits inside one burst are mutually
            concurrent, edits in different bursts usually are not.
        partition: when True, the middle burst runs under a two-group
            partition that heals afterwards, exercising decision
            replication across a split.
        unknown_policy: forwarded to the session (see
            :class:`~repro.replication.session.ReplicationSession`).
        name: scenario name (derived from the parameters when omitted).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if not 0.0 <= conflict_rate <= 1.0:
        raise ValueError("conflict_rate must be within [0, 1]")
    if bursts < 1:
        raise ValueError("bursts must be >= 1")
    rng = random.Random(seed)
    sections = "".join(f"<p{r}/>" for r in range(replicas))
    doc = f"<doc><hot><item>0</item></hot>{sections}</doc>"

    steps: list[dict] = []
    per_burst = [edits // bursts] * bursts
    for index in range(edits % bursts):
        per_burst[index] += 1
    partition_burst = bursts // 2 if partition and replicas >= 2 else None
    for burst, burst_edits in enumerate(per_burst):
        if burst == partition_burst:
            half = replicas // 2
            steps.append(
                {
                    "step": "partition",
                    "groups": [
                        list(range(half)),
                        list(range(half, replicas)),
                    ],
                }
            )
        # Alternate hot-edit flavors within a burst so concurrent hot
        # pairs actually cross the parent/child boundary that certifies.
        flavor_toggle = rng.random() < 0.5
        for _ in range(burst_edits):
            author = rng.randrange(replicas)
            if rng.random() < conflict_rate:
                flavor = "parent" if flavor_toggle else "child"
                flavor_toggle = not flavor_toggle
                op = hot_edit(rng, flavor)
            else:
                op = private_edit(rng, author)
            steps.append({"step": "edit", "replica": author, "op": op})
        if burst == partition_burst:
            steps.append({"step": "heal"})
        steps.append({"step": "sync"})
    steps.append({"step": "assert_converged"})

    return scenario_from_dict(
        {
            "name": name
            or f"random-r{replicas}-e{edits}-c{conflict_rate:g}-s{seed}",
            "replicas": replicas,
            "doc": doc,
            "resolver": resolver,
            "unknown_policy": unknown_policy,
            "seed": seed,
            "steps": steps,
        }
    )
