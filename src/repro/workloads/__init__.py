"""Workload generators used by the experiment suite."""

from repro.workloads.replication import (
    hot_edit,
    private_edit,
    random_replication_scenario,
)

from repro.workloads.generators import (
    containment_pair,
    random_branching_pattern,
    random_delete,
    random_insert,
    random_linear_pattern,
    random_program,
    random_read,
)

__all__ = [
    "random_linear_pattern",
    "random_branching_pattern",
    "random_read",
    "random_insert",
    "random_delete",
    "containment_pair",
    "random_program",
    "random_replication_scenario",
    "hot_edit",
    "private_edit",
]
