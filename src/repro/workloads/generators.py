"""Seeded workload generators for tests, experiments, and benchmarks.

Every experiment in EXPERIMENTS.md draws its inputs from these generators,
so runs are reproducible end to end from the seed recorded with each
experiment.  The families:

* linear patterns (``P^{//,*}``) with tunable length, wildcard rate, and
  descendant-edge rate — inputs to the PTIME scaling experiments;
* branching patterns (``P^{//,[],*}``) with tunable size and branch factor
  — inputs to the NP-side experiments;
* random operations (reads/inserts/deletes) built from those patterns;
* containment instance pairs with a bias toward the interesting region
  (generalization pairs that *do* contain, perturbed pairs that mostly do
  not) — inputs to the reduction-validation experiment;
* random pidgin programs — inputs to the program-analysis experiment.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.lang.ast import (
    AssignStmt,
    DeleteStmt,
    InsertStmt,
    Program,
    ReadStmt,
)
from repro.operations.ops import Delete, Insert, Read
from repro.patterns.pattern import WILDCARD, Axis, PNodeId, TreePattern
from repro.xml.random_trees import DEFAULT_ALPHABET, random_tree

__all__ = [
    "random_linear_pattern",
    "random_branching_pattern",
    "random_read",
    "random_insert",
    "random_delete",
    "containment_pair",
    "random_program",
]


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _pick_label(rng: random.Random, alphabet: Sequence[str], p_wildcard: float) -> str:
    if rng.random() < p_wildcard:
        return WILDCARD
    return rng.choice(alphabet)


def random_linear_pattern(
    length: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    p_wildcard: float = 0.2,
    p_descendant: float = 0.4,
    seed: int | random.Random | None = None,
) -> TreePattern:
    """A random pattern in ``P^{//,*}`` with ``length`` nodes.

    Each non-root node independently uses the descendant axis with
    probability ``p_descendant`` and the wildcard label with probability
    ``p_wildcard``; the output node is the leaf (by definition of the
    linear class).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = _rng(seed)
    pattern = TreePattern(_pick_label(rng, alphabet, p_wildcard))
    node = pattern.root
    for _ in range(length - 1):
        axis = Axis.DESCENDANT if rng.random() < p_descendant else Axis.CHILD
        node = pattern.add_child(node, _pick_label(rng, alphabet, p_wildcard), axis)
    pattern.set_output(node)
    return pattern


def random_branching_pattern(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    p_wildcard: float = 0.2,
    p_descendant: float = 0.4,
    max_children: int = 3,
    seed: int | random.Random | None = None,
    output: str = "leaf",
) -> TreePattern:
    """A random pattern in ``P^{//,[],*}`` with ``size`` nodes.

    Grown by uniform attachment subject to ``max_children``.  The output
    node is a random leaf (``output="leaf"``), a random non-root node
    (``"any"``), or the root (``"root"``).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = _rng(seed)
    pattern = TreePattern(_pick_label(rng, alphabet, p_wildcard))
    nodes: list[PNodeId] = [pattern.root]
    while pattern.size < size:
        candidates = [n for n in nodes if len(pattern.children(n)) < max_children]
        parent = rng.choice(candidates if candidates else nodes)
        axis = Axis.DESCENDANT if rng.random() < p_descendant else Axis.CHILD
        node = pattern.add_child(
            parent, _pick_label(rng, alphabet, p_wildcard), axis
        )
        nodes.append(node)
    if output == "root" or pattern.size == 1:
        pattern.set_output(pattern.root)
    elif output == "leaf":
        leaves = [n for n in nodes if not pattern.children(n)]
        pattern.set_output(rng.choice(leaves))
    elif output == "any":
        pattern.set_output(rng.choice(nodes[1:]))
    else:
        raise ValueError(f"unknown output policy {output!r}")
    return pattern


def random_read(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    linear: bool = True,
    seed: int | random.Random | None = None,
    **kwargs: float,
) -> Read:
    """A random read operation (linear by default)."""
    rng = _rng(seed)
    if linear:
        return Read(random_linear_pattern(size, alphabet, seed=rng, **kwargs))
    return Read(random_branching_pattern(size, alphabet, seed=rng, **kwargs))


def random_insert(
    size: int,
    subtree_size: int = 3,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    linear: bool = False,
    seed: int | random.Random | None = None,
    **kwargs: float,
) -> Insert:
    """A random insert with a random inserted tree of ``subtree_size`` nodes."""
    rng = _rng(seed)
    if linear:
        pattern = random_linear_pattern(size, alphabet, seed=rng, **kwargs)
    else:
        pattern = random_branching_pattern(size, alphabet, seed=rng, **kwargs)
    subtree = random_tree(subtree_size, alphabet, seed=rng)
    return Insert(pattern, subtree)


def random_delete(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    linear: bool = False,
    seed: int | random.Random | None = None,
    **kwargs: float,
) -> Delete:
    """A random delete (its pattern never selects the root, as required)."""
    rng = _rng(seed)
    size = max(size, 2)  # output must differ from the root
    if linear:
        pattern = random_linear_pattern(size, alphabet, seed=rng, **kwargs)
    else:
        pattern = random_branching_pattern(size, alphabet, seed=rng, **kwargs)
        if pattern.output == pattern.root:
            leaf = next(n for n in pattern.preorder() if n != pattern.root)
            pattern.set_output(leaf)
    return Delete(pattern)


def containment_pair(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    seed: int | random.Random | None = None,
    related_bias: float = 0.5,
) -> tuple[TreePattern, TreePattern]:
    """A pattern pair ``(p, p')`` for containment/reduction experiments.

    With probability ``related_bias`` the second pattern is a
    *generalization* of the first — produced by relaxing child edges to
    descendant edges, relabeling nodes to wildcards, and pruning branches —
    so ``p ⊆ p'`` holds by construction.  Otherwise both patterns are
    drawn independently, which almost always yields non-containment.  The
    mix keeps both answers well represented in experiment E5.
    """
    rng = _rng(seed)
    p = random_branching_pattern(size, alphabet, seed=rng, output="root")
    if rng.random() < related_bias:
        return p, _generalize(p, rng)
    q = random_branching_pattern(size, alphabet, seed=rng, output="root")
    return p, q


def _generalize(pattern: TreePattern, rng: random.Random) -> TreePattern:
    """A random generalization of ``pattern`` (always contains it)."""
    out = TreePattern(
        WILDCARD if rng.random() < 0.3 else pattern.label(pattern.root)
    )
    mapping = {pattern.root: out.root}
    for node in pattern.preorder():
        if node == pattern.root:
            continue
        parent = pattern.parent(node)
        assert parent is not None
        if parent not in mapping:
            continue
        # Randomly prune branches (fewer constraints = more general).
        if rng.random() < 0.25 and node != pattern.output:
            continue
        axis = pattern.axis(node)
        assert axis is not None
        if axis is Axis.CHILD and rng.random() < 0.4:
            axis = Axis.DESCENDANT  # relaxing / to // generalizes
        label = pattern.label(node)
        if rng.random() < 0.3:
            label = WILDCARD  # relaxing a label generalizes
        mapping[node] = out.add_child(mapping[parent], label, axis)
    out.set_output(out.root)
    return out


def random_program(
    statements: int,
    variables: int = 2,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    pattern_size: int = 3,
    seed: int | random.Random | None = None,
) -> Program:
    """A random straight-line pidgin program.

    Begins by assigning a random document to each variable, then mixes
    reads, inserts, and deletes over them.  Read targets are ``r0, r1, ...``
    so repeated patterns create CSE opportunities for the optimizer
    experiments.
    """
    rng = _rng(seed)
    names = [f"x{i}" for i in range(variables)]
    body: list = []
    for line, name in enumerate(names, start=1):
        body.append(
            AssignStmt(name, random_tree(8, alphabet, seed=rng), line=line)
        )
    pattern_pool = [
        random_linear_pattern(pattern_size, alphabet, seed=rng) for _ in range(4)
    ]
    read_index = 0
    for line in range(len(names) + 1, len(names) + statements + 1):
        source = rng.choice(names)
        roll = rng.random()
        if roll < 0.5:
            body.append(
                ReadStmt(
                    f"r{read_index}", source, rng.choice(pattern_pool), line=line
                )
            )
            read_index += 1
        elif roll < 0.8:
            body.append(
                InsertStmt(
                    source,
                    rng.choice(pattern_pool),
                    random_tree(2, alphabet, seed=rng),
                    line=line,
                )
            )
        else:
            pattern = random_linear_pattern(
                max(2, pattern_size), alphabet, seed=rng
            )
            body.append(DeleteStmt(source, pattern, line=line))
    return Program(body)
