"""Deterministic fault injection for the conflict engine's recovery paths.

Retry loops, quarantines, and corrupt-snapshot salvage are only trusted
if they are *exercised* — so this module lets CI (and local runs) inject
failures into well-defined points of the engine with deterministic,
seeded decisions:

* ``worker_crash`` — raise :class:`~repro.errors.InjectedFault` (or hard
  ``os._exit`` with ``mode=hard``) inside a batch-pool worker right
  before a pair is decided, driving the chunk retry / split / quarantine
  machinery;
* ``slow_decide``  — sleep before deciding a pair, driving chunk
  timeouts and deadline budgets;
* ``cache_corrupt`` — corrupt the bytes of a
  :meth:`~repro.conflicts.batch.VerdictCache.save` snapshot, driving the
  salvage path in ``VerdictCache.load``.

Three **cluster-level** rules drive the sharded service tier
(:mod:`repro.cluster`); their injection-site keys embed the shard id and
restart generation (``shard<N>|gen<G>|<route>|...``), so a drill can
target one process of one shard deterministically:

* ``shard_kill`` — ``os._exit(23)`` inside a shard process at request
  admission, simulating a SIGKILL/OOM-kill mid-request; the router must
  fail the request over and the supervisor must restart the shard.
  ``only=shard1|gen0`` kills shard 1's original process exactly once —
  the restarted generation no longer matches, so drills converge;
* ``shard_hang`` — sleep ``delay=`` seconds inside a shard before
  serving a request, driving the router's per-shard timeout + failover;
* ``probe_flap`` — fires in the *router's* health prober (keys
  ``shard<N>|probe<K>``), making a healthy shard's probe report failure,
  driving the unhealthy-marking / recovery hysteresis.

Activation is environment-driven so no production code path changes::

    REPRO_FAULTS="worker_crash:0.1,slow_decide:0.05,cache_corrupt" \
    REPRO_FAULTS_SEED=1234 python -m pytest ...

or programmatic (tests)::

    from repro.resilience import faults
    faults.install(faults.FaultInjector.parse("worker_crash:1:only=poison"))
    ...
    faults.uninstall()

Rule grammar — comma-separated rules, each ``name[:rate[:opt[:opt...]]]``:

* ``rate`` — probability in ``[0, 1]`` (default ``1``, i.e. always).
* ``only=SUBSTR`` — fire only when the injection-site key contains
  ``SUBSTR`` (keys embed the operands' canonical forms, so a distinctive
  label targets one poison operation).
* ``first`` — fire only on the first attempt (``salt == 0``); retried
  work succeeds, so whole-suite fault runs exercise the retry path while
  still converging to fault-free results.
* ``hard`` — (``worker_crash``) kill the worker process with
  ``os._exit`` instead of raising, simulating a segfault/OOM-kill.
* ``mode=truncate`` / ``mode=garbage`` — (``cache_corrupt``) cut the
  snapshot mid-entry vs. append a non-JSON suffix (the default; it loses
  no entries, so salvage recovers everything).
* ``delay=SECONDS`` — (``slow_decide``) sleep duration (default 0.05).

**Determinism.**  Whether a rule fires for a given key is a pure
function of ``(seed, fault name, key, salt)`` via SHA-256 — stable
across processes, platforms, and ``PYTHONHASHSEED``.  The ``salt``
(typically the retry attempt number) lets callers make retries
independent draws while keeping each draw reproducible.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.errors import ConflictEngineError, InjectedFault

__all__ = [
    "FaultRule",
    "FaultInjector",
    "current",
    "install",
    "uninstall",
    "match",
    "inject_worker_fault",
    "inject_shard_fault",
]

#: Environment variables consulted by :func:`current`.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"

#: Fault names with injection points wired into the engine.
KNOWN_FAULTS = (
    "worker_crash",
    "slow_decide",
    "cache_corrupt",
    "shard_kill",
    "shard_hang",
    "probe_flap",
)


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault rule (see the module docstring for the grammar)."""

    name: str
    rate: float = 1.0
    only: str | None = None
    first_attempt_only: bool = False
    mode: str | None = None
    delay_s: float = 0.05

    @classmethod
    def parse(cls, text: str) -> "FaultRule":
        parts = [part.strip() for part in text.strip().split(":")]
        if not parts or not parts[0]:
            raise ConflictEngineError(f"empty fault rule in spec: {text!r}")
        name = parts[0]
        if name not in KNOWN_FAULTS:
            raise ConflictEngineError(
                f"unknown fault {name!r} (known: {', '.join(KNOWN_FAULTS)})"
            )
        rate = 1.0
        options = parts[1:]
        if options and _is_float(options[0]):
            rate = float(options[0])
            if not 0.0 <= rate <= 1.0:
                raise ConflictEngineError(
                    f"fault {name!r}: rate {rate} outside [0, 1]"
                )
            options = options[1:]
        only: str | None = None
        first = False
        mode: str | None = None
        delay_s = 0.05
        for option in options:
            if option == "first":
                first = True
            elif option == "hard":
                mode = "hard"
            elif option.startswith("only="):
                only = option[len("only="):]
            elif option.startswith("mode="):
                mode = option[len("mode="):]
            elif option.startswith("delay="):
                delay_s = float(option[len("delay="):])
            else:
                raise ConflictEngineError(
                    f"fault {name!r}: unknown option {option!r}"
                )
        return cls(
            name=name,
            rate=rate,
            only=only,
            first_attempt_only=first,
            mode=mode,
            delay_s=delay_s,
        )

    def render(self) -> str:
        """Re-serialize to the rule grammar (``parse(render())`` round-trips)."""
        parts = [self.name]
        if self.rate != 1.0:
            parts.append(str(self.rate))
        if self.only is not None:
            parts.append(f"only={self.only}")
        if self.first_attempt_only:
            parts.append("first")
        if self.mode == "hard":
            parts.append("hard")
        elif self.mode is not None:
            parts.append(f"mode={self.mode}")
        if self.delay_s != 0.05:
            parts.append(f"delay={self.delay_s}")
        return ":".join(parts)


class FaultInjector:
    """A seeded set of fault rules with deterministic fire decisions."""

    def __init__(self, rules: dict[str, FaultRule], seed: int = 0) -> None:
        self._rules = dict(rules)
        self.seed = seed

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Parse a ``REPRO_FAULTS``-style comma-separated rule spec."""
        rules: dict[str, FaultRule] = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            rule = FaultRule.parse(chunk)
            rules[rule.name] = rule
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, environ: "os._Environ[str] | dict" = os.environ) -> "FaultInjector | None":
        """Build an injector from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``.

        Returns ``None`` when ``REPRO_FAULTS`` is unset or empty.
        """
        spec = environ.get(ENV_SPEC, "").strip()
        if not spec:
            return None
        seed = int(environ.get(ENV_SEED, "0") or "0")
        return cls.parse(spec, seed=seed)

    def rule(self, fault: str) -> FaultRule | None:
        return self._rules.get(fault)

    def spec(self) -> str:
        """The comma-separated rule spec (``parse(spec(), seed)`` round-trips).

        Lets the batch engine ship a programmatically installed injector to
        ``spawn`` pool workers, which inherit the environment but not the
        parent's in-process state.
        """
        return ",".join(
            rule.render() for _, rule in sorted(self._rules.items())
        )

    def match(self, fault: str, key: str, salt: int = 0) -> FaultRule | None:
        """The rule for ``fault`` if it fires for ``key``, else ``None``.

        Deterministic: the same ``(seed, fault, key, salt)`` always
        produces the same decision.
        """
        rule = self._rules.get(fault)
        if rule is None:
            return None
        if rule.only is not None and rule.only not in key:
            return None
        if rule.first_attempt_only and salt != 0:
            return None
        if rule.rate >= 1.0:
            return rule
        if rule.rate <= 0.0:
            return None
        digest = hashlib.sha256(
            f"{self.seed}:{fault}:{key}:{salt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return rule if fraction < rule.rate else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(rules={sorted(self._rules)}, seed={self.seed})"


# ----------------------------------------------------------------------
# Process-wide injector: lazily loaded from the environment; tests may
# install/uninstall programmatically.  Workers started with ``fork``
# inherit the parent's loaded injector; ``spawn`` workers re-read the
# (inherited) environment on first use, so both start methods inject.
# ----------------------------------------------------------------------

_INJECTOR: FaultInjector | None = None
_LOADED = False


def current() -> FaultInjector | None:
    """The active injector, loading from the environment on first call."""
    global _INJECTOR, _LOADED
    if not _LOADED:
        _INJECTOR = FaultInjector.from_env()
        _LOADED = True
    return _INJECTOR


def install(injector: FaultInjector) -> None:
    """Install ``injector`` process-wide (overrides the environment)."""
    global _INJECTOR, _LOADED
    _INJECTOR = injector
    _LOADED = True


def uninstall() -> None:
    """Drop any installed injector; the next :func:`current` re-reads env."""
    global _INJECTOR, _LOADED
    _INJECTOR = None
    _LOADED = False


def match(fault: str, key: str, salt: int = 0) -> FaultRule | None:
    """Convenience: ``current().match(...)`` with the no-injector fast path."""
    injector = current()
    if injector is None:
        return None
    rule = injector.match(fault, key, salt)
    if rule is not None:
        _count(fault)
    return rule


def inject_worker_fault(key: str, salt: int = 0) -> None:
    """The batch-pool worker's injection point, called once per pair.

    Applies ``slow_decide`` (sleep) then ``worker_crash`` (raise
    :class:`InjectedFault`, or ``os._exit(17)`` under ``mode=hard``) when
    the active injector fires for ``key``.  No-op without an injector.
    """
    injector = current()
    if injector is None:
        return
    slow = injector.match("slow_decide", key, salt)
    if slow is not None:
        _count("slow_decide")
        import time

        time.sleep(slow.delay_s)
    crash = injector.match("worker_crash", key, salt)
    if crash is not None:
        _count("worker_crash")
        if crash.mode == "hard":
            os._exit(17)
        raise InjectedFault(
            f"injected worker_crash (attempt {salt}) while deciding {key!r}"
        )


def inject_shard_fault(key: str, salt: int = 0) -> None:
    """The shard process's injection point, called once per request.

    Applies ``shard_hang`` (sleep ``delay=`` seconds — long enough to
    trip the router's per-shard timeout and drive failover) then
    ``shard_kill`` (``os._exit(23)``, the moral equivalent of a SIGKILL
    landing mid-request).  Keys are ``shard<N>|gen<G>|<route>|...``; see
    :meth:`repro.service.state.ServiceState._shard_fault_key`.  No-op
    without an injector.
    """
    injector = current()
    if injector is None:
        return
    hang = injector.match("shard_hang", key, salt)
    if hang is not None:
        _count("shard_hang")
        import time

        time.sleep(hang.delay_s)
    kill = injector.match("shard_kill", key, salt)
    if kill is not None:
        _count("shard_kill")
        os._exit(23)


def _count(fault: str) -> None:
    from repro.obs.metrics import global_metrics

    global_metrics().inc("faults.injected", fault=fault)


def _is_float(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
