"""Cooperative work budgets for the conflict engine.

The paper proves the general read-insert / read-delete decision NP-hard
(Theorems 4 and 6), so an adversarial — or merely unlucky — pair of
operations can stall the witness search for an unbounded time.  Rather
than preempting threads (impossible to do safely in pure Python) the
engine's search loops *cooperate*: they call :func:`checkpoint` at the
top of each unit of work, and when a :class:`Budget` is armed for the
current thread the checkpoint raises :class:`~repro.errors.BudgetExceeded`
the moment the wall-clock deadline passes or the step allowance runs out.

The detector catches that exception and degrades the query to a sound
``UNKNOWN`` verdict carrying a machine-readable reason (``"timeout"`` or
``"step_limit"``) — the same graceful-degradation stance the
query-update-independence literature takes when exact decision is too
costly.

Design constraints:

* **Near-zero cost when off.**  :func:`checkpoint` with no armed budget
  is one thread-local attribute read; engine hot loops may call it per
  candidate without measurable overhead (``benchmarks/bench_resilience.py``
  keeps the armed-but-never-tripping overhead under 3% on the
  ``BENCH_matrix`` workload).
* **Deadline checks are batched.**  ``time.monotonic()`` is cheap but
  not free; the step counter is checked on every checkpoint, the clock
  only every :data:`Budget.CLOCK_CHECK_INTERVAL` steps (and on the first
  few steps, so tiny deadlines still trip promptly).
* **Thread-local scoping.**  Budgets arm via :func:`budget_scope`, a
  context manager over a thread-local slot, so concurrent decisions on
  different threads never share or clobber each other's budgets.

Typical use (the detector does this internally when its config carries
``deadline_s``/``max_steps``)::

    from repro.resilience import Budget, budget_scope

    try:
        with budget_scope(Budget(deadline_s=0.5)):
            report = expensive_search()
    except BudgetExceeded as exc:
        report = degraded_report(reason=exc.reason)
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import BudgetExceeded

__all__ = [
    "Budget",
    "budget_scope",
    "current_budget",
    "checkpoint",
]


class Budget:
    """A wall-clock deadline and/or step allowance for one decision.

    Args:
        deadline_s: seconds of wall-clock time from *now* (the budget is
            armed at construction) before :meth:`check` raises with
            reason ``"timeout"``.  ``None`` disables the deadline.
        max_steps: number of checkpoints allowed before :meth:`check`
            raises with reason ``"step_limit"``.  ``None`` disables the
            step bound.

    A budget with both knobs ``None`` is legal and never trips — handy
    for code paths that want to thread a budget unconditionally.
    """

    #: How many steps pass between wall-clock reads.  The first
    #: ``CLOCK_CHECK_INTERVAL`` steps check the clock every time so that
    #: millisecond-scale deadlines trip promptly even in slow loops.
    CLOCK_CHECK_INTERVAL = 32

    __slots__ = ("deadline_s", "max_steps", "steps", "_armed_at", "_deadline_at")

    def __init__(
        self, deadline_s: float | None = None, max_steps: int | None = None
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative")
        if max_steps is not None and max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        self.deadline_s = deadline_s
        self.max_steps = max_steps
        self.steps = 0
        self._armed_at = time.monotonic()
        self._deadline_at = (
            self._armed_at + deadline_s if deadline_s is not None else None
        )

    def elapsed_s(self) -> float:
        """Wall-clock seconds since the budget was armed."""
        return time.monotonic() - self._armed_at

    def remaining_s(self) -> float | None:
        """Seconds until the deadline, or ``None`` when no deadline is set."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def exceeded(self) -> str | None:
        """The trip reason right now (non-raising), or ``None`` if in budget."""
        if self.max_steps is not None and self.steps > self.max_steps:
            return "step_limit"
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            return "timeout"
        return None

    def check(self, where: str = "") -> None:
        """Record one unit of work; raise when over budget.

        Raises:
            BudgetExceeded: with ``reason`` ``"step_limit"`` or
                ``"timeout"``; ``where`` (when given) names the loop that
                tripped, for diagnostics.
        """
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            self._trip("step_limit", where)
        if self._deadline_at is not None and (
            self.steps <= Budget.CLOCK_CHECK_INTERVAL
            or self.steps % Budget.CLOCK_CHECK_INTERVAL == 0
        ):
            if time.monotonic() > self._deadline_at:
                self._trip("timeout", where)

    def _trip(self, reason: str, where: str) -> None:
        suffix = f" in {where}" if where else ""
        if reason == "step_limit":
            message = (
                f"step budget exhausted{suffix}: "
                f"{self.steps} checkpoints > max_steps={self.max_steps}"
            )
        else:
            message = (
                f"deadline exceeded{suffix}: {self.elapsed_s():.3f}s elapsed "
                f"> deadline_s={self.deadline_s}"
            )
        raise BudgetExceeded(
            message, reason=reason, steps=self.steps, elapsed_s=self.elapsed_s()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline_s={self.deadline_s}, max_steps={self.max_steps}, "
            f"steps={self.steps})"
        )


_TLS = threading.local()


def current_budget() -> Budget | None:
    """The budget armed for this thread, or ``None``."""
    return getattr(_TLS, "budget", None)


@contextmanager
def budget_scope(budget: Budget | None) -> Iterator[Budget | None]:
    """Arm ``budget`` for the current thread for the duration of the block.

    ``None`` is accepted and leaves checkpoints disabled inside the block
    (it still *shadows* any outer budget, which is what the detector
    wants: a query configured without limits must not inherit a caller's
    tighter scope and return spurious UNKNOWNs).
    """
    previous = getattr(_TLS, "budget", None)
    _TLS.budget = budget
    try:
        yield budget
    finally:
        _TLS.budget = previous


def checkpoint(where: str = "") -> None:
    """Charge one step against the current thread's budget, if any.

    The engine's search loops call this at the top of each unit of work
    (candidate tree checked, NFA product state expanded, ...).  With no
    budget armed it is a single thread-local read.
    """
    budget = getattr(_TLS, "budget", None)
    if budget is not None:
        budget.check(where)
