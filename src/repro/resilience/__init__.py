"""Resilience layer: budgets, deadlines, and fault injection.

The paper proves the general conflict decision NP-hard, so the engine
must be able to *give up gracefully* — a pathological pair degrades to a
sound ``UNKNOWN`` verdict with a machine-readable reason instead of
hanging a worker or crashing a batch.  This package supplies the
building blocks:

* :mod:`repro.resilience.budget` — cooperative :class:`Budget`
  (wall-clock deadline + step allowance) armed per decision via
  :func:`budget_scope` and consulted by :func:`checkpoint` calls inside
  the engine's search loops;
* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  (``REPRO_FAULTS``) into worker dispatch and cache I/O, so the retry /
  quarantine / salvage paths are exercised in CI.

The typed failure vocabulary (:class:`~repro.errors.BudgetExceeded`,
:class:`~repro.errors.CacheCorrupt`, :class:`~repro.errors.CacheCorruptWarning`,
:class:`~repro.errors.InjectedFault`) lives in :mod:`repro.errors` with
the rest of the hierarchy.

See ``docs/RESILIENCE.md`` for the full degradation and fault model.
"""

from repro.errors import (
    BudgetExceeded,
    CacheCorrupt,
    CacheCorruptWarning,
    InjectedFault,
)
from repro.resilience.budget import (
    Budget,
    budget_scope,
    checkpoint,
    current_budget,
)
from repro.resilience import faults
from repro.resilience.faults import FaultInjector, FaultRule

__all__ = [
    "Budget",
    "budget_scope",
    "checkpoint",
    "current_budget",
    "BudgetExceeded",
    "CacheCorrupt",
    "CacheCorruptWarning",
    "InjectedFault",
    "FaultInjector",
    "FaultRule",
    "faults",
]
