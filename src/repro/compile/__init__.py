"""Compile-once layer: pattern interning, automaton compilation, memos.

See :mod:`repro.compile.compiler` for the architecture overview and
``docs/PERFORMANCE.md`` for knobs, metrics, and benchmarks.
"""

from repro.compile.cache import MISS, LRUCache
from repro.compile.compiler import (
    DEFAULT_CACHE_SIZE,
    KERNELS,
    CompiledArtifact,
    PatternCompiler,
    compiler_for_config,
    global_compiler,
    reset_global_compiler,
)
from repro.compile.intern import InternedPattern, PatternInterner

__all__ = [
    "MISS",
    "LRUCache",
    "DEFAULT_CACHE_SIZE",
    "KERNELS",
    "CompiledArtifact",
    "PatternCompiler",
    "compiler_for_config",
    "global_compiler",
    "reset_global_compiler",
    "InternedPattern",
    "PatternInterner",
]
