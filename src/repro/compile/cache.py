"""Bounded LRU caches with hit/miss/evict counters.

Every memo table in the compile layer is one of these: a thread-safe
ordered mapping capped at ``maxsize`` entries that evicts the least
recently used entry on overflow and reports its traffic into a
:class:`~repro.obs.metrics.MetricsRegistry` under a per-family prefix
(``<family>.hits`` / ``<family>.misses`` / ``<family>.evictions``).

Misses are reported as a distinguished sentinel (:data:`MISS`) rather
than ``None`` because ``None`` is a legitimate cached value here — "these
two patterns do not match" memoizes as ``None``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.metrics import MetricsRegistry

__all__ = ["MISS", "LRUCache"]

#: Sentinel returned by :meth:`LRUCache.get` when the key is absent.
MISS = object()


class LRUCache:
    """A bounded, thread-safe LRU mapping with metric instrumentation."""

    __slots__ = ("_data", "_lock", "_maxsize", "_registry", "_family",
                 "hits", "misses", "evictions")

    def __init__(
        self,
        maxsize: int,
        registry: MetricsRegistry | None = None,
        family: str = "compile.cache",
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"LRU maxsize must be >= 1, got {maxsize}")
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = maxsize
        self._registry = registry
        self._family = family
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def family(self) -> str:
        return self._family

    def get(self, key):  # type: ignore[no-untyped-def]
        """The cached value, or :data:`MISS` — never raises on absence."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                if self._registry is not None:
                    self._registry.inc(f"{self._family}.misses")
                return MISS
            self._data.move_to_end(key)
            self.hits += 1
            if self._registry is not None:
                self._registry.inc(f"{self._family}.hits")
            return value

    def put(self, key, value) -> None:  # type: ignore[no-untyped-def]
        """Insert (or refresh) an entry, evicting the LRU tail on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                if self._registry is not None:
                    self._registry.inc(f"{self._family}.evictions")

    def clear(self) -> None:
        """Drop every entry (traffic counters are preserved)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:  # type: ignore[no-untyped-def]
        return key in self._data

    def stats(self) -> dict[str, int]:
        """A detached ``{hits, misses, evictions, size, maxsize}`` view."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self._maxsize,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache({self._family}, {len(self._data)}/{self._maxsize}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
