"""The compile-once layer for the hot PTIME decision path.

Batch workloads repeat a small set of unique patterns across thousands
of pairs, yet the Section 4 decision procedures re-derive the same
artifacts — the update trunk ``SEQ_{ROOT(D)}^{O(D)}``, linear-pattern
NFAs, weak/strong intersection products, per-edge cut-edge scans — on
every call.  :class:`PatternCompiler` owns those artifacts:

* patterns are canonicalized and **interned** once
  (:mod:`repro.compile.intern`), giving every downstream memo a
  constant-time key;
* each unique linear pattern is compiled to its NFA exactly once per
  alphabet, and to a lazily-determinized DFA
  (:class:`repro.automata.dfa.LazyDFA`) per (alphabet, weak/strong)
  side;
* trunk extraction, spine prefixes/suffixes, matching words
  (intersection products), matching profiles, and cut-edge scans are
  memoized in bounded LRU caches (:mod:`repro.compile.cache`), with
  ``compile.<family>.{hits,misses,evictions}`` counters in the metrics
  registry.

Orthogonally to caching, the compiler selects the *automata kernel*
(``kernel="bitset"`` by default): the matching primitives run on the
bit-parallel kernel of :mod:`repro.automata.bitkernel` — per-pattern
:class:`~repro.automata.bitkernel.MaskTable` artifacts are precomputed
once into the ``compile.bitmask`` family and every product/profile
question becomes bitwise AND/OR/shift loops — while ``kernel="sets"``
retains the dict-of-sets machinery as the reference oracle.  The two
kernels are held to byte-identical verdicts, witnesses, and discharge
reasons by the kernel-differential battery (``tests/test_bitkernel.py``
and ``tests/test_differential.py``).

A compiler constructed with ``enabled=False`` is a *pass-through*: every
method computes from scratch along the uncached code path (eager NFA
products via :func:`repro.automata.matching._matching_word_impl` under
``kernel="sets"``, fresh mask tables via
:func:`repro.automata.bitkernel.matching_word_bits` under
``kernel="bitset"``), which is both the uncached reference the
benchmarks compare against and an independent implementation for the
differential test suite.

Process-global sharing: :func:`global_compiler` returns one process-wide
instance (counters land in :func:`repro.obs.global_metrics`); detectors
configured with an explicit ``compile_cache_size`` get a private
compiler wired to their private registry (see
:func:`compiler_for_config`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.automata.bitkernel import (
    BitsetAutomaton,
    MaskTable,
    bitset_matching_profile,
    joint_shortest_word_bits,
    match_bits,
    matching_word_bits,
    spine_spec,
)
from repro.automata.dfa import LazyDFA, joint_shortest_word
from repro.automata.matching import _matching_word_impl, linear_pattern_nfa
from repro.automata.nfa import NFA
from repro.compile.cache import MISS, LRUCache
from repro.compile.intern import InternedPattern, PatternInterner
from repro.obs import enabled as obs_enabled
from repro.obs import global_metrics, span
from repro.obs.metrics import MetricsRegistry
from repro.patterns.pattern import TreePattern, fresh_label
from repro.patterns.xpath import parse_xpath, to_xpath

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "KERNELS",
    "CompiledArtifact",
    "PatternCompiler",
    "global_compiler",
    "reset_global_compiler",
    "compiler_for_config",
]

#: Default entries per memo family (intern table, NFAs, DFAs, words, ...).
DEFAULT_CACHE_SIZE = 1024

#: Recognized automata kernels (see module docstring).
KERNELS = ("bitset", "sets")

#: Union of the two pattern handles the compiler accepts everywhere.
PatternLike = TreePattern | InternedPattern


@dataclass(frozen=True)
class CompiledArtifact:
    """A picklable, string-only transport of one compiled operation.

    The batch engine compiles its operand set once in the parent and
    ships these alongside :class:`repro.conflicts.batch.CanonicalOp` to
    pool workers; :meth:`PatternCompiler.seed` rebuilds the same interned
    pattern (and pre-derived trunk) on the worker side, so under both
    ``fork`` and ``spawn`` every worker starts with an identically warm
    compiler instead of re-deriving per pair.
    """

    kind: str  # "Read" | "Insert" | "Delete"
    xpath: str
    pattern_key: str
    trunk_xpath: str | None = None
    linear: bool = True
    #: Bitset-kernel mask tables (:meth:`MaskTable.to_payload`) of the
    #: decision-hot pattern side — the read pattern itself for reads, the
    #: trunk for updates.  ``None`` for branching reads or sets-kernel
    #: compilers.  Nested tuples of ints/strs, so the artifact stays
    #: picklable under both fork and spawn start methods.
    mask_payload: tuple | None = None


class PatternCompiler:
    """Interning, automaton compilation, and decision-artifact memos."""

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        registry: MetricsRegistry | None = None,
        enabled: bool = True,
        kernel: str = "bitset",
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown automata kernel {kernel!r}; expected one of {KERNELS}"
            )
        self.enabled = enabled
        self.kernel = kernel
        self.registry = registry
        if not enabled:
            return
        self._interner = PatternInterner(maxsize, registry)
        self._nfa = LRUCache(maxsize, registry, family="compile.nfa")
        self._dfa = LRUCache(maxsize, registry, family="compile.dfa")
        self._bitmask = LRUCache(maxsize, registry, family="compile.bitmask")
        self._match = LRUCache(maxsize, registry, family="compile.match")
        self._profile = LRUCache(maxsize, registry, family="compile.profile")
        self._derived = LRUCache(maxsize, registry, family="compile.derived")
        self._edge = LRUCache(maxsize, registry, family="compile.edge")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Intern-table generation (0 forever for a disabled compiler)."""
        return self._interner.generation if self.enabled else 0

    def intern(self, pattern: PatternLike) -> InternedPattern:
        """Intern ``pattern`` (enabled compilers only)."""
        return self._interner.intern(pattern)

    @staticmethod
    def as_pattern(handle: PatternLike) -> TreePattern:
        """The raw :class:`TreePattern` behind either kind of handle."""
        return handle.pattern if isinstance(handle, InternedPattern) else handle

    def handle(self, pattern: PatternLike) -> PatternLike:
        """The preferred handle: interned when enabled, raw otherwise."""
        return self.intern(pattern) if self.enabled else self.as_pattern(pattern)

    def reset(self) -> None:
        """Drop every compiled artifact and start a fresh generation.

        Outstanding :class:`InternedPattern` keys become permanently
        stale (they compare unequal to everything minted afterwards), so
        downstream caches keyed on them can never serve aliased entries.
        """
        if not self.enabled:
            return
        self._interner.reset()
        for cache in self._caches():
            cache.clear()

    def _caches(self) -> list[LRUCache]:
        return [
            self._interner.cache, self._nfa, self._dfa, self._bitmask,
            self._match, self._profile, self._derived, self._edge,
        ]

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-family ``{hits, misses, evictions, size, maxsize}``."""
        if not self.enabled:
            return {}
        return {cache.family: cache.stats() for cache in self._caches()}

    # ------------------------------------------------------------------
    # Derived patterns: trunk, spine prefixes and suffixes
    # ------------------------------------------------------------------

    def trunk(self, pattern: PatternLike) -> PatternLike:
        """``SEQ_{ROOT(p)}^{O(p)}`` — interned and memoized when enabled."""
        if not self.enabled:
            return self.as_pattern(pattern).trunk()
        p = self.intern(pattern)
        hit = self._derived.get((p, "trunk"))
        if hit is not MISS:
            return hit
        trunk = self.intern(p.pattern.trunk())
        self._derived.put((p, "trunk"), trunk)
        return trunk

    def spine_prefix(self, read: PatternLike, index: int) -> PatternLike:
        """``SEQ_ROOT(R)`` through the ``index``-th spine node."""
        if not self.enabled:
            rp = self.as_pattern(read)
            return rp.seq_root_to(rp.spine()[index])
        return self._prefixes(self.intern(read))[index]

    def spine_suffix(self, read: PatternLike, index: int) -> PatternLike:
        """``SEQ`` from the ``index``-th spine node down to the output."""
        if not self.enabled:
            rp = self.as_pattern(read)
            return rp.seq(rp.spine()[index], rp.output)
        return self._suffixes(self.intern(read))[index]

    def _prefixes(self, read: InternedPattern) -> tuple[InternedPattern, ...]:
        hit = self._derived.get((read, "prefixes"))
        if hit is not MISS:
            return hit
        rp = read.pattern
        prefixes = tuple(
            self.intern(rp.seq_root_to(node)) for node in rp.spine()
        )
        self._derived.put((read, "prefixes"), prefixes)
        return prefixes

    def _suffixes(self, read: InternedPattern) -> tuple[InternedPattern, ...]:
        hit = self._derived.get((read, "suffixes"))
        if hit is not MISS:
            return hit
        rp = read.pattern
        suffixes = tuple(
            self.intern(rp.seq(node, rp.output)) for node in rp.spine()
        )
        self._derived.put((read, "suffixes"), suffixes)
        return suffixes

    # ------------------------------------------------------------------
    # Automata
    # ------------------------------------------------------------------

    def nfa(self, pattern: PatternLike, alphabet: tuple[str, ...]) -> NFA:
        """The pattern's matching NFA over ``alphabet``, built once."""
        if not self.enabled:
            return linear_pattern_nfa(self.as_pattern(pattern), alphabet)
        p = self.intern(pattern)
        key = (p, alphabet)
        hit = self._nfa.get(key)
        if hit is not MISS:
            return hit
        nfa = linear_pattern_nfa(p.pattern, alphabet)
        self._nfa.put(key, nfa)
        return nfa

    def dfa(
        self, pattern: PatternLike, alphabet: tuple[str, ...], weak: bool
    ) -> LazyDFA:
        """The lazily-determinized matcher, per (alphabet, weak) side.

        The ``weak`` side determinizes ``L(p)·(.)*`` (the suffixed NFA of
        Definition 7's weak matching); the strong side determinizes
        ``L(p)`` itself.
        """
        if not self.enabled:
            base = linear_pattern_nfa(self.as_pattern(pattern), alphabet)
            return LazyDFA(base.with_any_suffix() if weak else base)
        p = self.intern(pattern)
        key = (p, alphabet, weak)
        hit = self._dfa.get(key)
        if hit is not MISS:
            return hit
        base = self.nfa(p, alphabet)
        if weak:
            base = base.with_any_suffix()
        dfa = LazyDFA(base)
        if obs_enabled():
            global_metrics().inc("dfa.built")
        self._dfa.put(key, dfa)
        return dfa

    def bitset_automaton(
        self, pattern: PatternLike, weak: bool
    ) -> BitsetAutomaton:
        """The pattern's bit-parallel matcher, per weak/strong side.

        Mask tables are **alphabet independent** (a linear pattern's NFA
        only has any-symbol and single-label transitions), so unlike
        :meth:`dfa` the memo key is just ``(pattern, weak)`` — one
        artifact serves every alphabet the pattern ever meets, and its
        memoized subset steps warm across queries like a
        :class:`LazyDFA`'s transitions.  The weak side reuses the cached
        strong table (one extra sink state, not a rebuild).
        """
        if not self.enabled:
            table = MaskTable.from_pattern(self.as_pattern(pattern))
            return BitsetAutomaton(table.with_any_suffix() if weak else table)
        p = self.intern(pattern)
        key = (p, weak)
        hit = self._bitmask.get(key)
        if hit is not MISS:
            return hit
        if weak:
            table = self.bitset_automaton(p, False).table.with_any_suffix()
        else:
            table = MaskTable.from_pattern(p.pattern)
        automaton = BitsetAutomaton(table)
        if obs_enabled():
            global_metrics().inc("bitkernel.tables_built")
        self._bitmask.put(key, automaton)
        return automaton

    def alphabet(
        self, left: PatternLike, right: PatternLike
    ) -> tuple[str, ...]:
        """``Σ_l ∪ Σ_{l'}`` plus one spare symbol (cf. ``matching_alphabet``)."""
        labels = self._labels(left) | self._labels(right)
        return tuple(sorted(labels | {fresh_label(labels)}))

    @staticmethod
    def _labels(handle: PatternLike) -> set[str]:
        if isinstance(handle, InternedPattern):
            return set(handle.labels)
        return handle.labels()

    # ------------------------------------------------------------------
    # Matching (Definition 7) — the intersection-product memo
    # ------------------------------------------------------------------

    def matching_word(
        self, left: PatternLike, right: PatternLike, weak: bool
    ) -> list[str] | None:
        """The shortest weak/strong matching witness word, or ``None``.

        Same contract as :func:`repro.automata.matching.matching_word`
        (which delegates here via the global compiler), including the
        gated ``matching.word`` tracing span.
        """
        if not obs_enabled():
            return self._matching_word(left, right, weak)
        lp, rp = self.as_pattern(left), self.as_pattern(right)
        with span(
            "matching.word", left_size=lp.size, right_size=rp.size, weak=weak
        ) as sp:
            word = self._matching_word(left, right, weak)
            global_metrics().inc("matching.words_computed")
            sp.set("found", word is not None)
            return word

    def _matching_word(
        self, left: PatternLike, right: PatternLike, weak: bool
    ) -> list[str] | None:
        if not self.enabled:
            lp, rp = self.as_pattern(left), self.as_pattern(right)
            if self.kernel == "bitset":
                return matching_word_bits(lp, rp, weak)
            return _matching_word_impl(lp, rp, weak)
        li, ri = self.intern(left), self.intern(right)
        key = (li, ri, weak)
        hit = self._match.get(key)
        if hit is not MISS:
            return None if hit is None else list(hit)
        alphabet = self.alphabet(li, ri)
        if self.kernel == "bitset":
            word = joint_shortest_word_bits(
                self.bitset_automaton(li, False),
                self.bitset_automaton(ri, weak),
                alphabet,
            )
        else:
            word = joint_shortest_word(
                self.dfa(li, alphabet, weak=False),
                self.dfa(ri, alphabet, weak=weak),
            )
        self._match.put(key, None if word is None else tuple(word))
        return word

    def match(self, left: PatternLike, right: PatternLike, weak: bool) -> bool:
        """Decision form of :meth:`matching_word`.

        On a *disabled* bitset-kernel compiler this short-circuits to the
        parent-free emptiness test (:func:`match_bits`) — there is no
        memo to share with later witness extraction, so skipping the BFS
        parent pointers is pure win on the uncached decision path.  Both
        forms answer identically (a word exists iff the intersection is
        non-empty).
        """
        if not self.enabled and self.kernel == "bitset":
            return match_bits(self.as_pattern(left), self.as_pattern(right), weak)
        return self.matching_word(left, right, weak) is not None

    def matching_profile(
        self, trunk: PatternLike, read: PatternLike
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Memoized weak/strong prefix profile of a (trunk, read) pair.

        Dispatches on the kernel: the queue-based reference
        (:func:`repro.conflicts.linear_dp.matching_profile`) under
        ``sets``, the packed-frontier fixpoint
        (:func:`repro.automata.bitkernel.bitset_matching_profile`) under
        ``bitset``.  Identical results, pinned by the differential suite.
        """
        if not self.enabled:
            strong, weak = self._raw_profile(
                self.as_pattern(trunk), self.as_pattern(read)
            )
            return frozenset(strong), frozenset(weak)
        ti, ri = self.intern(trunk), self.intern(read)
        key = (ti, ri)
        hit = self._profile.get(key)
        if hit is not MISS:
            return hit
        strong, weak = self._raw_profile(ti.pattern, ri.pattern)
        value = (frozenset(strong), frozenset(weak))
        self._profile.put(key, value)
        return value

    def _raw_profile(
        self, trunk: TreePattern, read: TreePattern
    ) -> tuple[set[int], set[int]]:
        if self.kernel == "bitset":
            trunk.require_linear("update trunk")
            read.require_linear("read pattern")
            return bitset_matching_profile(spine_spec(trunk), spine_spec(read))
        from repro.conflicts.linear_dp import matching_profile as raw_profile

        return raw_profile(trunk, read)

    def edge_scan(
        self,
        tag: str,
        read: PatternLike,
        trunk: PatternLike,
        compute: Callable[[], object],
    ):  # type: ignore[no-untyped-def]
        """Memoized per-(read, trunk) edge-scan result.

        The conflict algorithms store their Lemma 3 / Lemma 6 edge scans
        here keyed by spine position (node *indices*, not node ids, so
        the memo transfers between structurally identical patterns).
        ``compute`` runs on miss only.
        """
        if not self.enabled:
            return compute()
        key = (tag, self.intern(read), self.intern(trunk))
        hit = self._edge.get(key)
        if hit is not MISS:
            return hit
        value = compute()
        self._edge.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Batch interop: precompiling operand sets and shipping artifacts
    # ------------------------------------------------------------------

    def precompile(self, op) -> None:  # type: ignore[no-untyped-def]
        """Compile one operation's pattern-side artifacts up front.

        ``op`` is any :data:`repro.conflicts.batch.Operation`.  Reads get
        their spine prefixes/suffixes derived (when linear); updates get
        their trunk extracted.  Idempotent and cheap when already warm.
        """
        if not self.enabled:
            return
        interned = self.intern(op.pattern)
        if type(op).__name__ == "Read":
            if interned.is_linear:
                self._prefixes(interned)
                self._suffixes(interned)
        else:
            self.trunk(interned)

    def artifact(self, op) -> CompiledArtifact:  # type: ignore[no-untyped-def]
        """The picklable compiled transport of ``op`` (warms this compiler)."""
        return self.artifact_from(type(op).__name__, op.pattern)

    def artifact_from(self, kind: str, pattern: PatternLike) -> CompiledArtifact:
        """Build a :class:`CompiledArtifact` from a kind name and pattern.

        Under the bitset kernel the artifact also carries the mask-table
        payload of the decision-hot side (the read pattern itself, or an
        update's trunk), so pool workers start with warm ``compile.bitmask``
        entries under both fork and spawn.
        """
        pattern = self.as_pattern(pattern)
        trunk_xpath: str | None = None
        mask_payload: tuple | None = None
        if self.enabled:
            interned = self.intern(pattern)
            pattern_key = interned.key
            hot: PatternLike | None = interned if pattern.is_linear else None
            if kind != "Read":
                trunk = self.trunk(interned)
                trunk_xpath = to_xpath(self.as_pattern(trunk))
                hot = trunk
            if self.kernel == "bitset" and hot is not None:
                mask_payload = self.bitset_automaton(hot, False).table.to_payload()
        else:
            pattern_key = pattern.canonical_form()
            hot_plain: TreePattern | None = (
                pattern if pattern.is_linear else None
            )
            if kind != "Read":
                hot_plain = pattern.trunk()
                trunk_xpath = to_xpath(hot_plain)
            if self.kernel == "bitset" and hot_plain is not None:
                mask_payload = MaskTable.from_pattern(hot_plain).to_payload()
        return CompiledArtifact(
            kind=kind,
            xpath=to_xpath(pattern),
            pattern_key=pattern_key,
            trunk_xpath=trunk_xpath,
            linear=pattern.is_linear,
            mask_payload=mask_payload,
        )

    def seed(self, artifact: CompiledArtifact) -> InternedPattern | None:
        """Adopt a shipped artifact: intern its pattern, pre-derive its trunk.

        Returns the interned pattern (``None`` on a disabled compiler).
        A transport mismatch (the rebuilt pattern's canonical form
        disagreeing with the shipped key) falls back to local derivation
        rather than seeding a wrong trunk.
        """
        if not self.enabled:
            return None
        interned = self.intern(parse_xpath(artifact.xpath))
        if interned.key != artifact.pattern_key:
            return interned  # defensive: never seed from a mismatched key
        hot: InternedPattern | None = None
        if artifact.trunk_xpath is not None:
            trunk = self.intern(parse_xpath(artifact.trunk_xpath))
            self._derived.put((interned, "trunk"), trunk)
            hot = trunk
        if artifact.kind == "Read" and artifact.linear:
            self._prefixes(interned)
            self._suffixes(interned)
            hot = interned
        if (
            artifact.mask_payload is not None
            and self.kernel == "bitset"
            and hot is not None
        ):
            table = MaskTable.from_payload(artifact.mask_payload)
            expected = 1 + sum(
                2 if descendant else 1
                for _, descendant in spine_spec(hot.pattern)
            )
            # Shape mismatch (a transport bug) falls back to lazy local
            # derivation rather than seeding a wrong automaton.
            if table.size == expected:
                self._bitmask.put((hot, False), BitsetAutomaton(table))
        return interned


# ----------------------------------------------------------------------
# Process-global default instance
# ----------------------------------------------------------------------

_GLOBAL: PatternCompiler | None = None


def global_compiler() -> PatternCompiler:
    """The process-wide compiler (counters go to the global registry)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = PatternCompiler(registry=global_metrics())
    return _GLOBAL


def reset_global_compiler() -> None:
    """Reset the process-wide compiler (tests, benchmark isolation).

    Bumps its intern generation, so detector caches keyed on interned
    identity can never serve entries minted before the reset.
    """
    if _GLOBAL is not None:
        _GLOBAL.reset()


def compiler_for_config(
    compile_cache: bool,
    compile_cache_size: int | None,
    registry: MetricsRegistry | None = None,
    kernel: str = "bitset",
) -> PatternCompiler:
    """The compiler implied by the :class:`DetectorConfig` compile knobs.

    ``compile_cache=False`` (or a non-positive size) yields a disabled
    pass-through compiler; an explicit positive size yields a private
    compiler reporting into ``registry``; the default shares
    :func:`global_compiler`.  All variants honor ``kernel`` — except that
    the shared global compiler always runs the default bitset kernel, so
    a sets-kernel detector with default cache settings gets a private
    compiler instead (the reference oracle must never be silently served
    bitset artifacts).
    """
    if not compile_cache:
        return PatternCompiler(enabled=False, kernel=kernel)
    if compile_cache_size is not None:
        if compile_cache_size <= 0:
            return PatternCompiler(enabled=False, kernel=kernel)
        return PatternCompiler(
            maxsize=compile_cache_size, registry=registry, kernel=kernel
        )
    if kernel != "bitset":
        return PatternCompiler(registry=registry, kernel=kernel)
    return global_compiler()
