"""Pattern canonicalization and interning.

:class:`~repro.patterns.pattern.TreePattern` is mutable and hashes by
recomputing its canonical form, so it makes a poor memo key: every cache
lookup keyed on a raw pattern re-serializes the whole tree.  The interner
fixes that by mapping each *canonical form* to one immutable-by-contract
:class:`InternedPattern` whose identity is the triple
``(interner, generation, ident)`` — which hashes in constant time.

Identity rules (these are what make interned keys safe to embed in
longer-lived caches, e.g. the detector's verdict cache):

* **idents are monotonic within a generation** — an entry evicted from
  the intern table and later re-interned receives a *fresh* ident, so a
  stale key held by a downstream cache can never alias the new entry;
* **reset bumps the generation** — :meth:`PatternInterner.reset` starts
  a new generation (and only then restarts the ident counter), so keys
  minted before a reset compare unequal to every key minted after it;
* **identities never cross interners** — the owning interner is part of
  equality, so keys from a detector-private compiler can never collide
  with keys from the process-global one.

The interned object carries a private :meth:`~TreePattern.copy` of the
pattern (callers may mutate their original after interning) plus the
precomputed label set, spine length, and linearity flag the compile
layer consults on every decision.
"""

from __future__ import annotations

import threading

from repro.compile.cache import MISS, LRUCache
from repro.obs.metrics import MetricsRegistry
from repro.patterns.pattern import TreePattern

__all__ = ["InternedPattern", "PatternInterner"]


class InternedPattern:
    """One canonical pattern with a constant-time cache identity.

    ``pattern`` is the interner's private copy — treat it as read-only.
    Equality and hashing use ``(owner, generation, ident)`` only; the
    canonical form is available as :attr:`key` for interop with
    string-keyed caches (e.g. :class:`repro.conflicts.batch.VerdictCache`).
    """

    __slots__ = ("pattern", "key", "ident", "generation", "owner",
                 "labels", "is_linear", "spine_len")

    def __init__(
        self,
        pattern: TreePattern,
        key: str,
        ident: int,
        generation: int,
        owner: "PatternInterner",
    ) -> None:
        self.pattern = pattern
        self.key = key
        self.ident = ident
        self.generation = generation
        self.owner = owner
        self.labels: frozenset[str] = frozenset(pattern.labels())
        self.is_linear: bool = pattern.is_linear
        self.spine_len: int = len(pattern.spine())

    @property
    def size(self) -> int:
        return self.pattern.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InternedPattern):
            return NotImplemented
        return (
            self.owner is other.owner
            and self.generation == other.generation
            and self.ident == other.ident
        )

    def __hash__(self) -> int:
        return hash((id(self.owner), self.generation, self.ident))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InternedPattern(gen={self.generation}, ident={self.ident}, "
            f"key={self.key!r})"
        )


class PatternInterner:
    """A bounded table mapping canonical forms to interned patterns."""

    def __init__(
        self, maxsize: int, registry: MetricsRegistry | None = None
    ) -> None:
        self._cache = LRUCache(maxsize, registry, family="compile.intern")
        self._generation = 0
        self._next_ident = 0
        # Interning must be atomic: two threads racing the same miss would
        # otherwise both read ``_next_ident`` and mint *duplicate* idents
        # for different patterns, aliasing downstream identity-keyed memos.
        # The conflict service shares one process-global compiler across
        # its worker threads, so this is a live concern, not a theoretical
        # one.  The lock is held only on the intern/reset paths — per-query
        # traffic, never inside a matching loop.
        self._lock = threading.Lock()

    @property
    def generation(self) -> int:
        """The current generation (bumped by every :meth:`reset`)."""
        return self._generation

    @property
    def cache(self) -> LRUCache:
        return self._cache

    def intern(self, pattern: "TreePattern | InternedPattern") -> InternedPattern:
        """The interned form of ``pattern`` (idempotent on interned input).

        A pattern interned by this interner in the current generation is
        returned as-is — even after eviction, its ident stays valid
        (monotonic idents never alias).  Anything else (a raw pattern, a
        pre-reset key, another interner's key) is (re-)interned from its
        canonical form.
        """
        if isinstance(pattern, InternedPattern):
            if pattern.owner is self and pattern.generation == self._generation:
                return pattern
            pattern = pattern.pattern
        key = pattern.canonical_form()
        with self._lock:
            hit = self._cache.get(key)
            if hit is not MISS:
                return hit
            interned = InternedPattern(
                pattern.copy(), key, self._next_ident, self._generation, self
            )
            self._next_ident += 1  # monotonic: an evicted key is never reissued
            self._cache.put(key, interned)
            return interned

    def reset(self) -> None:
        """Start a fresh generation, invalidating every outstanding key."""
        with self._lock:
            self._generation += 1
            self._next_ident = 0
            self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
